//! The server: one long-lived versioned engine per registered database,
//! a shared worker pool, and one runner thread per database draining its
//! sessions' job queues.
//!
//! Concurrency model: *jobs of one database execute one at a time*;
//! parallelism comes from the engine's worker pool inside each job
//! (work-stealing over clauses × examples) and from running different
//! databases' queues on their own runner threads. Serializing per database
//! is what makes per-session counter deltas and budget/cancellation
//! overrides sound on a shared engine, and it gives mutation batches a
//! natural atomicity point: a batch is a queue item like any other, so
//! every job sees either the pre- or post-batch state.
//!
//! Scheduling is *fair across sessions*: every session owns its own FIFO
//! queue, and the runner drains the queues of one database round-robin —
//! one job per turn — instead of a single database-wide FIFO. A session
//! that floods hundreds of jobs no longer head-of-line-blocks a session
//! that submits one. Jobs of one session still execute in submission
//! order.
//!
//! Admission control bounds both layers: [`ServerConfig::max_sessions`]
//! caps concurrently open sessions server-wide (excess `session()` calls
//! fail with [`ServerError::SessionLimit`]), and
//! [`ServerConfig::max_inflight_per_database`] caps queued-plus-running
//! jobs per database (excess submissions complete with
//! [`JobError::Rejected`]). Both are observable through
//! [`Server::server_report`] and [`Server::queue_report`].

use crate::deadline::{Deadline, DeadlineWatchdog};
use crate::job::{Job, JobError, JobResult, JobShared, LearnAlgorithm};
use crate::session::Session;
use crate::stats::{QueueReport, ServerReport, ServerStats};
use castor_core::Castor;
use castor_engine::{
    CacheArena, CacheBinding, Engine, EngineConfig, EngineReport, ProgressSink, WorkerPool,
};
use castor_learners::{Foil, Golem, ProGolem, Progol};
use castor_obs::{Collect, Counter, Exposition, Histogram, Obs, ObsConfig};
use castor_relational::DatabaseInstance;
use castor_transform::VariantLens;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the pool shared by every registered engine
    /// (1 = inline evaluation).
    pub threads: usize,
    /// Engine configuration applied to every registered database (its
    /// `threads` field is overridden by the shared pool).
    pub engine: EngineConfig,
    /// Maximum concurrently open sessions across the server; further
    /// `session()` calls fail with [`ServerError::SessionLimit`] until a
    /// session handle is dropped. 0 = unlimited.
    pub max_sessions: usize,
    /// Maximum queued-plus-running jobs per database; further submissions
    /// complete with [`JobError::Rejected`] until the runner drains the
    /// queue. 0 = unlimited.
    pub max_inflight_per_database: usize,
    /// Observability configuration: the server-wide [`Obs`] handle every
    /// engine, queue runner, and the RPC front end record into
    /// (instrumentation is on by default).
    pub obs: ObsConfig,
    /// Post-mortem trace path: when set, the server arms
    /// [`Obs::dump_on_drop`] *and* installs a process panic hook, so both
    /// orderly shutdowns and crashes leave the span ring behind as
    /// Chrome-trace JSON at this path. `None` (the default) writes nothing.
    pub trace_dump_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            engine: EngineConfig::default(),
            max_sessions: 0,
            max_inflight_per_database: 0,
            obs: ObsConfig::default(),
            trace_dump_path: None,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with the given shared-pool size.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given per-database engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with the server-wide session cap (0 = unlimited).
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Returns a copy with the per-database in-flight job cap
    /// (0 = unlimited).
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight_per_database = max_inflight;
        self
    }

    /// Returns a copy with the given observability configuration
    /// (`ObsConfig::disabled()` turns every timer and span into a no-op).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Returns a copy that writes the span ring to `path` as Chrome-trace
    /// JSON on shutdown *and* on panic — a crashed server leaves a
    /// post-mortem trace behind (see [`ServerConfig::trace_dump_path`]).
    pub fn with_trace_dump_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace_dump_path = Some(path.into());
        self
    }
}

/// Errors raised by server administration calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A database name was registered twice.
    DuplicateDatabase(String),
    /// A session or report was requested for an unregistered database.
    UnknownDatabase(String),
    /// The server-wide session cap is reached; the request was turned away
    /// (counted in `sessions_rejected`).
    SessionLimit {
        /// The configured [`ServerConfig::max_sessions`].
        limit: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::DuplicateDatabase(name) => {
                write!(f, "database `{name}` is already registered")
            }
            ServerError::UnknownDatabase(name) => write!(f, "unknown database `{name}`"),
            ServerError::SessionLimit { limit } => {
                write!(f, "server session limit reached ({limit} sessions)")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-session state shared between the session handle and the runner.
#[derive(Debug)]
pub(crate) struct SessionCtx {
    /// Cancellation token; also installed on the engine while the
    /// session's jobs run.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Per-test node budget override (meaningful when
    /// `has_budget_override`).
    pub(crate) eval_budget: AtomicUsize,
    /// Whether `eval_budget` overrides the engine default.
    pub(crate) has_budget_override: AtomicBool,
    /// Engine-counter deltas attributed to this session's jobs.
    pub(crate) consumed: Mutex<EngineReport>,
}

impl SessionCtx {
    fn new() -> Self {
        SessionCtx {
            cancel: Arc::new(AtomicBool::new(false)),
            eval_budget: AtomicUsize::new(0),
            has_budget_override: AtomicBool::new(false),
            consumed: Mutex::new(EngineReport::default()),
        }
    }
}

/// One queue item: the job, its result slot, and the submitting session.
pub(crate) struct QueuedJob {
    pub(crate) job: Job,
    pub(crate) shared: Arc<JobShared>,
    pub(crate) ctx: Arc<SessionCtx>,
    /// Trace id the job's spans are recorded under (the RPC request id
    /// for wire submissions, a locally minted id otherwise).
    pub(crate) trace: u64,
    /// `Obs::now_ns` at submit time — the runner measures queue wait as
    /// pop time minus this (0 when observability is disabled).
    pub(crate) submitted_ns: u64,
    /// The job's deadline, extracted at submit time: checked at pop (an
    /// expired job is shed without running) and armed on the deadline
    /// watchdog for the duration of the run.
    pub(crate) deadline: Option<Deadline>,
    /// Learn-progress sink installed on the engine for the duration of the
    /// run (the RPC layer streams accepted covering-round clauses to v2
    /// clients through it). Ignored by non-learn jobs.
    pub(crate) progress: Option<ProgressSink>,
}

impl fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueuedJob")
            .field("job", &self.job)
            .field("trace", &self.trace)
            .field("submitted_ns", &self.submitted_ns)
            .field("deadline", &self.deadline)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// One session's pending jobs on a database queue.
#[derive(Debug, Default)]
struct SessionQueue {
    jobs: VecDeque<QueuedJob>,
    /// The session handle was dropped; the entry is removed once drained
    /// (queued jobs still run — dropping a handle does not revoke work).
    detached: bool,
}

/// The lock-guarded state of one database's scheduling.
#[derive(Debug, Default)]
struct QueueState {
    /// Per-session pending jobs.
    queues: HashMap<u64, SessionQueue>,
    /// Round-robin order over session ids with pending jobs. A session id
    /// appears at most once; the runner pops the front, takes one job, and
    /// re-appends the id while its queue stays non-empty.
    rr: VecDeque<u64>,
    /// Jobs queued or currently running (the admission gauge).
    inflight: usize,
    /// Live [`Session`] handles bound to this database.
    sessions: usize,
    /// The server was dropped; the runner exits once every session is gone
    /// and the queues are drained.
    closed: bool,
    next_session: u64,
}

/// What happened to a submission. On `Closed`/`Rejected` the job is
/// dropped here — the caller still holds the result slot and fails it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitOutcome {
    /// Queued; the runner will execute it.
    Queued,
    /// The server is gone; the caller fails the handle.
    Closed,
    /// The database's in-flight cap is reached; the caller fails the
    /// handle with [`JobError::Rejected`].
    Rejected,
}

/// One database's scheduling structure: per-session FIFO queues drained
/// round-robin by the database's runner thread, plus the in-flight
/// admission gauge.
#[derive(Debug)]
pub(crate) struct DatabaseQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// Per-database in-flight cap (0 = unlimited).
    max_inflight: usize,
    /// Queue items drained by this database's runner.
    drains: AtomicUsize,
}

impl DatabaseQueue {
    fn new(max_inflight: usize) -> Self {
        DatabaseQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            max_inflight,
            drains: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new session and returns its queue id.
    pub(crate) fn open_session(&self) -> u64 {
        let mut state = self.lock();
        let id = state.next_session;
        state.next_session += 1;
        state.sessions += 1;
        state.queues.insert(id, SessionQueue::default());
        id
    }

    /// Unbinds a session handle: its empty queue is removed immediately,
    /// a non-empty one is marked detached and removed once drained.
    pub(crate) fn close_session(&self, id: u64) {
        let mut state = self.lock();
        state.sessions = state.sessions.saturating_sub(1);
        if let Some(queue) = state.queues.get_mut(&id) {
            if queue.jobs.is_empty() {
                state.queues.remove(&id);
            } else {
                queue.detached = true;
            }
        }
        // The runner may be waiting to exit on the last session.
        self.ready.notify_all();
    }

    /// Enqueues one job for `session`, enforcing the in-flight cap.
    pub(crate) fn submit(&self, session: u64, job: QueuedJob) -> SubmitOutcome {
        let mut state = self.lock();
        if state.closed {
            return SubmitOutcome::Closed;
        }
        if self.max_inflight > 0 && state.inflight >= self.max_inflight {
            return SubmitOutcome::Rejected;
        }
        let Some(queue) = state.queues.get_mut(&session) else {
            // The session handle is gone; treat like a closed queue.
            return SubmitOutcome::Closed;
        };
        let was_empty = queue.jobs.is_empty();
        queue.jobs.push_back(job);
        if was_empty {
            state.rr.push_back(session);
        }
        state.inflight += 1;
        self.ready.notify_one();
        SubmitOutcome::Queued
    }

    /// Blocks for the next job in round-robin order, or `None` when the
    /// server is gone, every session handle is dropped, and the queues are
    /// drained — the runner's exit condition.
    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.lock();
        loop {
            if let Some(&session) = state.rr.front() {
                state.rr.pop_front();
                let queue = state
                    .queues
                    .get_mut(&session)
                    .expect("rr ids always have a queue");
                let job = queue.jobs.pop_front().expect("rr queues are non-empty");
                if !queue.jobs.is_empty() {
                    state.rr.push_back(session);
                } else if queue.detached {
                    state.queues.remove(&session);
                }
                self.drains.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            if state.closed && state.sessions == 0 {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The configured in-flight cap (0 = unlimited).
    pub(crate) fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Marks one drained job finished (decrements the in-flight gauge).
    fn job_done(&self) {
        let mut state = self.lock();
        state.inflight = state.inflight.saturating_sub(1);
    }

    /// Closes the queue: submissions fail fast and the runner exits once
    /// the sessions are gone and the queues are drained.
    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Snapshot of the queue gauges.
    pub(crate) fn report(&self) -> QueueReport {
        let state = self.lock();
        QueueReport {
            drains: self.drains.load(Ordering::Relaxed),
            inflight: state.inflight,
            open_sessions: state.sessions,
        }
    }
}

struct DatabaseEntry {
    engine: Arc<Engine>,
    queue: Arc<DatabaseQueue>,
}

/// Scrape-time bridge from [`ServerStats`] to the exposition: the atomics
/// stay the single storage site, read when `Server::metrics_text` renders.
struct ServerStatsCollector(Arc<ServerStats>);

impl Collect for ServerStatsCollector {
    fn collect(&self, exp: &mut Exposition) {
        let s = self.0.snapshot();
        exp.counter(
            "castor_sessions_accepted_total",
            "Sessions opened successfully.",
            &[],
            s.sessions_accepted as u64,
        );
        exp.counter(
            "castor_sessions_rejected_total",
            "Session requests refused by the server-wide session cap.",
            &[],
            s.sessions_rejected as u64,
        );
        exp.gauge(
            "castor_sessions_active",
            "Sessions currently open.",
            &[],
            s.sessions_active as i64,
        );
        exp.counter(
            "castor_jobs_submitted_total",
            "Jobs accepted onto a database queue.",
            &[],
            s.jobs_submitted as u64,
        );
        exp.counter(
            "castor_jobs_rejected_total",
            "Jobs refused by a database's in-flight cap.",
            &[],
            s.jobs_rejected as u64,
        );
    }
}

/// Scrape-time bridge from the shared worker pool's steal/idle counters.
struct PoolCollector(Arc<WorkerPool>);

impl Collect for PoolCollector {
    fn collect(&self, exp: &mut Exposition) {
        let stats = self.0.stats();
        exp.gauge(
            "castor_pool_workers",
            "Worker threads in the shared evaluation pool.",
            &[],
            self.0.size() as i64,
        );
        exp.counter(
            "castor_pool_steals_total",
            "Work items claimed off the shared cursor by pool workers.",
            &[],
            stats.steals(),
        );
        exp.counter(
            "castor_pool_idle_ns_total",
            "Nanoseconds pool workers spent parked waiting for a job.",
            &[],
            stats.idle_ns(),
        );
    }
}

/// Scrape-time bridge from one registered database: its engine counters
/// (labelled by database) and its queue gauges. Reads the same atomics
/// [`Server::report`] and [`Server::queue_report`] serve, so the wire
/// exposition can never disagree with the report structs.
struct DatabaseCollector {
    name: String,
    // Weak: the collector lives inside the `Obs` registry and the engine
    // holds the `Obs` handle, so a strong reference here would cycle and
    // keep the observability state (and any armed `dump_on_drop`) alive
    // after the server is gone. A dropped database simply stops exporting.
    engine: std::sync::Weak<Engine>,
    queue: Arc<DatabaseQueue>,
}

impl Collect for DatabaseCollector {
    fn collect(&self, exp: &mut Exposition) {
        let Some(engine) = self.engine.upgrade() else {
            return;
        };
        let db = [("db", self.name.as_str())];
        let e = engine.report();
        for (name, help, value) in [
            (
                "castor_engine_coverage_tests_total",
                "Coverage tests actually evaluated.",
                e.coverage_tests,
            ),
            (
                "castor_engine_cache_hits_total",
                "Tests answered from a coverage cache (memo or exhaustion tiers).",
                e.cache_hits,
            ),
            (
                "castor_engine_cross_variant_hits_total",
                "Cache hits served from a verdict proven by another schema variant.",
                e.cross_variant_hits,
            ),
            (
                "castor_engine_cross_variant_translations_total",
                "Clauses translated through a variant lens at the cache boundary.",
                e.cross_variant_translations,
            ),
            (
                "castor_engine_budget_exhausted_total",
                "Tests that ended by budget exhaustion.",
                e.budget_exhausted,
            ),
            (
                "castor_engine_plans_compiled_total",
                "Distinct clause plans compiled.",
                e.plans_compiled,
            ),
            (
                "castor_engine_plans_recosted_total",
                "Plans recompiled by feedback re-planning.",
                e.plans_recosted,
            ),
            (
                "castor_engine_batches_total",
                "Batched (shared-prefix trie) evaluations executed.",
                e.batches,
            ),
            (
                "castor_engine_mutation_batches_total",
                "Mutation batches applied to the live database.",
                e.mutation_batches,
            ),
        ] {
            exp.counter(name, help, &db, value as u64);
        }
        let q = self.queue.report();
        exp.counter(
            "castor_queue_drains_total",
            "Queue items drained by this database's runner.",
            &db,
            q.drains as u64,
        );
        exp.gauge(
            "castor_queue_inflight",
            "Jobs currently queued or running.",
            &db,
            q.inflight as i64,
        );
        exp.gauge(
            "castor_queue_open_sessions",
            "Live session handles bound to this database.",
            &db,
            q.open_sessions as i64,
        );
    }
}

/// The runner-loop metric handles, resolved once per runner thread from
/// the server's registry. The latency histograms are labelled by database
/// (`{db="..."}`), so a slow tenant shows up as its own series instead of
/// skewing a pooled one; the failure counters are server-wide.
pub(crate) struct ServiceMetrics {
    pub(crate) queue_wait_ns: Arc<Histogram>,
    pub(crate) job_run_ns: Arc<Histogram>,
    pub(crate) slow_jobs: Arc<Counter>,
    pub(crate) deadline_shed: Arc<Counter>,
    pub(crate) deadline_aborted: Arc<Counter>,
}

impl ServiceMetrics {
    pub(crate) fn new(obs: &Obs, database: &str) -> Self {
        let r = obs.registry();
        let db = [("db", database)];
        ServiceMetrics {
            queue_wait_ns: r.labeled_histogram(
                "castor_queue_wait_ns",
                "Time a job spent queued before its runner popped it.",
                &db,
            ),
            job_run_ns: r.labeled_histogram(
                "castor_job_run_ns",
                "Time a popped job spent on its runner (including cancel fast-paths).",
                &db,
            ),
            slow_jobs: r.counter(
                "castor_slow_jobs_total",
                "Jobs that ran past the slow-job watchdog threshold.",
            ),
            deadline_shed: r.counter(
                "castor_deadline_shed_total",
                "Jobs shed from a queue because their deadline expired before they ran.",
            ),
            deadline_aborted: r.counter(
                "castor_deadline_aborted_total",
                "Running jobs aborted because their deadline passed mid-run.",
            ),
        }
    }
}

/// A multi-session serving facade: long-lived engines over mutating
/// databases, per-session FIFO queues drained round-robin per database, a
/// worker pool shared by every engine, and admission control over sessions
/// and queue depth.
pub struct Server {
    pool: Arc<WorkerPool>,
    config: ServerConfig,
    databases: Mutex<HashMap<String, DatabaseEntry>>,
    /// One shared coverage-cache arena per *logical* database: every
    /// schema variant registered against the same logical name binds to
    /// the same arena, so verdicts proven on one variant serve the others
    /// (see [`Server::register_variant`]).
    arenas: Mutex<HashMap<String, Arc<CacheArena>>>,
    stats: Arc<ServerStats>,
    obs: Arc<Obs>,
    watchdog: Arc<DeadlineWatchdog>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        f.debug_struct("Server")
            .field("threads", &self.config.threads)
            .field("databases", &names)
            .finish()
    }
}

impl Server {
    /// Creates a server with no registered databases.
    pub fn new(config: ServerConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.threads));
        let stats = Arc::new(ServerStats::default());
        let obs = Arc::new(Obs::new(config.obs.clone()));
        obs.registry()
            .register_collector(Box::new(ServerStatsCollector(Arc::clone(&stats))));
        obs.registry()
            .register_collector(Box::new(PoolCollector(Arc::clone(&pool))));
        if let Some(path) = &config.trace_dump_path {
            // Drop guard: an orderly shutdown (or an unwinding panic that
            // drops the last `Obs` handle) writes the trace file.
            obs.dump_on_drop(path);
            // Panic hook: a crash that aborts before the handles unwind
            // still dumps. A `Weak` keeps the process-global hook from
            // pinning the registry alive after the server is gone.
            let hook_obs = Arc::downgrade(&obs);
            let hook_path = path.clone();
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if let Some(obs) = hook_obs.upgrade() {
                    let _ = std::fs::write(&hook_path, obs.trace_json());
                }
                previous(info);
            }));
        }
        Server {
            pool,
            config,
            databases: Mutex::new(HashMap::new()),
            arenas: Mutex::new(HashMap::new()),
            stats,
            obs,
            watchdog: DeadlineWatchdog::spawn(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server-wide observability handle (shared with every registered
    /// engine and the RPC front end).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The full metric exposition in Prometheus text format: server
    /// counters, pool steal/idle counters, per-database engine and queue
    /// counters, and the runner latency histograms — all read at scrape
    /// time from the same atomics the report structs serve.
    pub fn metrics_text(&self) -> String {
        self.obs.expose()
    }

    /// The span ring rendered as Chrome-trace JSON.
    pub fn trace_json(&self) -> String {
        self.obs.trace_json()
    }

    /// Registers a database under `name`: builds its versioned engine on
    /// the shared pool and spawns its runner thread. The instance is shared,
    /// not copied; the caller's `Arc` stays a pre-registration snapshot
    /// once mutations start (copy-on-write).
    pub fn register(
        &self,
        name: impl Into<String>,
        db: Arc<DatabaseInstance>,
    ) -> Result<(), ServerError> {
        self.register_inner(name.into(), db, None)
    }

    /// Registers a database as a *schema variant* of one logical database:
    /// every variant registered under the same `logical` name shares one
    /// coverage-cache arena, keyed by clauses' canonical-schema image, so a
    /// verdict proven on any variant is served to all the others over RPC
    /// and in-process alike. `lens` is the δτ mapping from this variant's
    /// schema into the logical database's canonical schema (see
    /// `castor_transform::CanonicalSchema::lens_for`); pass
    /// [`VariantLens::identity`] for the canonical anchor itself. Plans
    /// still compile and execute against the variant's own schema — the
    /// lens translates cache keys only.
    pub fn register_variant(
        &self,
        name: impl Into<String>,
        db: Arc<DatabaseInstance>,
        logical: impl Into<String>,
        lens: VariantLens,
    ) -> Result<(), ServerError> {
        let arena =
            {
                let mut arenas = self.arenas.lock().unwrap_or_else(|e| e.into_inner());
                Arc::clone(arenas.entry(logical.into()).or_insert_with(|| {
                    Arc::new(CacheArena::new(self.config.engine.cache_capacity))
                }))
            };
        let binding = if lens.is_identity() {
            arena.bind_canonical()
        } else {
            let map = Arc::new(lens);
            let relations = Arc::clone(&map);
            arena.bind(
                Arc::new(move |clause: &castor_logic::Clause| map.map_clause(clause)),
                Arc::new(move |dirty: &std::collections::BTreeSet<String>| {
                    relations.map_relations(dirty)
                }),
            )
        };
        self.register_inner(name.into(), db, Some(binding))
    }

    /// The shared arena of one logical database, if any variant of it has
    /// been registered (for reports and tests).
    pub fn arena(&self, logical: &str) -> Option<Arc<CacheArena>> {
        self.arenas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(logical)
            .cloned()
    }

    fn register_inner(
        &self,
        name: String,
        db: Arc<DatabaseInstance>,
        binding: Option<CacheBinding>,
    ) -> Result<(), ServerError> {
        let mut databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        if databases.contains_key(&name) {
            return Err(ServerError::DuplicateDatabase(name));
        }
        let mut engine_config = self.config.engine.clone();
        engine_config.threads = self.config.threads;
        let engine = Arc::new(match binding {
            Some(binding) => Engine::with_cache_binding(
                db,
                engine_config,
                Arc::clone(&self.pool),
                Arc::clone(&self.obs),
                Some(&name),
                binding,
            ),
            None => Engine::with_labeled_observability(
                db,
                engine_config,
                Arc::clone(&self.pool),
                Arc::clone(&self.obs),
                &name,
            ),
        });
        let queue = Arc::new(DatabaseQueue::new(self.config.max_inflight_per_database));
        self.obs
            .registry()
            .register_collector(Box::new(DatabaseCollector {
                name: name.clone(),
                engine: Arc::downgrade(&engine),
                queue: Arc::clone(&queue),
            }));
        let runner_engine = Arc::clone(&engine);
        let runner_queue = Arc::clone(&queue);
        let runner_watchdog = Arc::clone(&self.watchdog);
        let runner_db = name.clone();
        std::thread::Builder::new()
            .name(format!("castor-service-runner-{name}"))
            .spawn(move || run_queue(runner_engine, runner_queue, runner_watchdog, runner_db))
            .expect("failed to spawn runner thread");
        databases.insert(name, DatabaseEntry { engine, queue });
        Ok(())
    }

    /// The names of every registered database, sorted.
    pub fn databases(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Claims one slot under the server-wide session cap (compare-and-swap
    /// on the active gauge, so concurrent admissions never overshoot).
    fn admit_session(&self) -> bool {
        let max = self.config.max_sessions;
        if max == 0 {
            self.stats.sessions_active.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        loop {
            let active = self.stats.sessions_active.load(Ordering::Relaxed);
            if active >= max {
                return false;
            }
            if self
                .stats
                .sessions_active
                .compare_exchange(active, active + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Opens a session on a registered database, subject to the
    /// server-wide session cap. Dropping the returned [`Session`] releases
    /// its slot.
    pub fn session(&self, database: &str) -> Result<Session, ServerError> {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        let entry = databases
            .get(database)
            .ok_or_else(|| ServerError::UnknownDatabase(database.to_string()))?;
        if !self.admit_session() {
            self.stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::SessionLimit {
                limit: self.config.max_sessions,
            });
        }
        self.stats.sessions_accepted.fetch_add(1, Ordering::Relaxed);
        let id = entry.queue.open_session();
        Ok(Session::new(
            database.to_string(),
            Arc::clone(&entry.engine),
            Arc::clone(&entry.queue),
            id,
            Arc::new(SessionCtx::new()),
            Arc::clone(&self.stats),
        ))
    }

    /// The total engine counters of one database (every session's activity
    /// combined).
    pub fn report(&self, database: &str) -> Result<EngineReport, ServerError> {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        databases
            .get(database)
            .map(|entry| entry.engine.report())
            .ok_or_else(|| ServerError::UnknownDatabase(database.to_string()))
    }

    /// The serving-layer counters: session admissions/rejections and queue
    /// traffic across every database (`queue_drains` is the sum of every
    /// database's drains — each drain is counted once, by its queue).
    pub fn server_report(&self) -> ServerReport {
        let mut report = self.stats.snapshot();
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        report.queue_drains = databases
            .values()
            .map(|entry| entry.queue.report().drains)
            .sum();
        report
    }

    /// One database's queue gauges (drains, in-flight jobs, open sessions).
    pub fn queue_report(&self, database: &str) -> Result<QueueReport, ServerError> {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        databases
            .get(database)
            .map(|entry| entry.queue.report())
            .ok_or_else(|| ServerError::UnknownDatabase(database.to_string()))
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        for entry in databases.values() {
            entry.queue.close();
        }
        // Fires every outstanding deadline token on the way out, so a job
        // still draining after the server handle is gone cannot wait on a
        // watchdog that no longer runs.
        self.watchdog.shutdown();
    }
}

/// The runner loop of one database: drains the sessions' queues
/// round-robin (one job per turn). Exits when the server is dropped, every
/// session handle is gone, and the queues are drained — queued jobs are
/// always finished first, so no handle is left hanging.
///
/// Instrumentation contract (the wire-consistency invariant the
/// observability tests pin down): queue wait is recorded on *every* pop
/// and job run time around *every* popped job's processing — cancel
/// fast-paths included — so at quiescence
/// `castor_queue_wait_ns_count == castor_job_run_ns_count == queue drains`.
fn run_queue(
    engine: Arc<Engine>,
    queue: Arc<DatabaseQueue>,
    watchdog: Arc<DeadlineWatchdog>,
    database: String,
) {
    let obs = Arc::clone(engine.obs());
    let metrics = ServiceMetrics::new(&obs, &database);
    while let Some(QueuedJob {
        job,
        shared,
        ctx,
        trace,
        submitted_ns,
        deadline,
        progress,
    }) = queue.pop()
    {
        let enabled = obs.enabled();
        let run_start_ns = obs.now_ns();
        if enabled {
            let wait_ns = run_start_ns.saturating_sub(submitted_ns);
            metrics.queue_wait_ns.record_ns(wait_ns);
            obs.span_measured(
                "service.queue_wait",
                trace,
                submitted_ns,
                wait_ns,
                Vec::new(),
            );
        }
        if ctx.cancel.load(Ordering::Relaxed) {
            shared.complete(Err(JobError::Cancelled));
            if enabled {
                metrics
                    .job_run_ns
                    .record_ns(obs.now_ns().saturating_sub(run_start_ns));
            }
            queue.job_done();
            continue;
        }
        // Deadline shed: a job that expired while queued never touches the
        // engine (its eval counters stay exactly where they were). The
        // histograms still record the pop, preserving the
        // `queue_wait_count == job_run_count == drains` invariant.
        if deadline.is_some_and(|dl| dl.expired()) {
            metrics.deadline_shed.inc();
            shared.complete(Err(JobError::DeadlineExceeded));
            if enabled {
                metrics
                    .job_run_ns
                    .record_ns(obs.now_ns().saturating_sub(run_start_ns));
            }
            queue.job_done();
            continue;
        }
        // Watchdog payload, captured before `execute` consumes the job —
        // only cloned when instrumentation is live.
        let watch = enabled.then(|| (job_kind(&job), first_clause(&job)));
        // Mutations don't run the executor, so cancellation cannot corrupt
        // them; evaluation jobs cancelled mid-run are reported as such.
        let cancellable = !matches!(job, Job::Mutate(_));
        let default_budget = engine.config().eval_budget;
        if ctx.has_budget_override.load(Ordering::Relaxed) {
            engine.set_eval_budget(ctx.eval_budget.load(Ordering::Relaxed));
        }
        engine.set_cancel_token(Some(Arc::clone(&ctx.cancel)));
        // Arm the deadline: the watchdog sets the token when the deadline
        // passes, and the token aborts the executor's budget loops exactly
        // like a cancel — within one candidate tuple, with abort-tainted
        // verdicts kept out of the shared caches.
        let deadline_guard = deadline.map(|dl| {
            let token = Arc::new(AtomicBool::new(false));
            let id = watchdog.register(dl, Arc::clone(&token));
            (token, id)
        });
        if let Some((token, _)) = &deadline_guard {
            engine.set_deadline_token(Some(Arc::clone(token)));
        }
        engine.set_trace(trace);
        engine.set_progress_sink(progress);
        let before = engine.report();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&engine, job)));
        let after = engine.report();
        engine.set_trace(0);
        engine.set_progress_sink(None);
        engine.set_cancel_token(None);
        engine.set_deadline_token(None);
        engine.set_eval_budget(default_budget);
        let deadline_fired = deadline_guard.is_some_and(|(token, id)| {
            watchdog.unregister(id);
            token.load(Ordering::Relaxed)
        });
        {
            let delta = after.delta_since(&before);
            let mut consumed = ctx.consumed.lock().unwrap_or_else(|e| e.into_inner());
            *consumed = consumed.combined(&delta);
        }
        let mut result = match outcome {
            Ok(result) => result,
            Err(panic) => Err(JobError::Panicked(panic_message(panic))),
        };
        if cancellable && ctx.cancel.load(Ordering::Relaxed) {
            // The job was cancelled mid-run: its aborted searches ended as
            // budget exhaustions, which the memo cache refuses at
            // write-back while the cancellation is pending (genuine
            // exhaustions are cached keyed by the budget they were observed
            // under and served only to equal-or-smaller budgets), so no
            // cancellation-tainted verdict can leak to other sessions — the
            // partial result is simply discarded.
            result = Err(JobError::Cancelled);
        } else if deadline_fired && result.is_ok() {
            // The deadline passed mid-run: the aborted searches produced a
            // partial result (a learner returns whatever it had), which is
            // discarded for the same cache-hygiene reasons as a cancel. A
            // job that already failed keeps its more specific error.
            metrics.deadline_aborted.inc();
            result = Err(JobError::DeadlineExceeded);
        }
        if enabled {
            let run_ns = obs.now_ns().saturating_sub(run_start_ns);
            metrics.job_run_ns.record_ns(run_ns);
            if run_ns > obs.slow_job_threshold_ns() {
                metrics.slow_jobs.inc();
                let (kind, clause) = watch.unwrap_or(("unknown", None));
                let mut args = vec![
                    ("kind".to_string(), kind.to_string()),
                    ("run_ms".to_string(), (run_ns / 1_000_000).to_string()),
                ];
                if let Some(clause) = clause {
                    // The plan is queried *after* execution, so the order
                    // reported is the one the slow run actually compiled.
                    if let Some(order) = engine.plan_order(&clause) {
                        args.push(("plan_order".to_string(), order.join(" -> ")));
                    }
                    args.push(("clause".to_string(), clause.to_string()));
                }
                obs.span_measured("watchdog.slow_job", trace, run_start_ns, run_ns, args);
            }
        }
        shared.complete(result);
        queue.job_done();
    }
}

/// A static label for the watchdog's `kind` argument.
fn job_kind(job: &Job) -> &'static str {
    match job {
        Job::Coverage(_) => "coverage",
        Job::Score(_) => "score",
        Job::Learn(_) => "learn",
        Job::Mutate(_) => "mutate",
    }
}

/// The clause a slow-job report is pinned to: the first clause of an
/// evaluation batch (learn and mutation jobs have no fixed clause).
fn first_clause(job: &Job) -> Option<castor_logic::Clause> {
    match job {
        Job::Coverage(j) => j.clauses.first().cloned(),
        Job::Score(j) => j.clauses.first().cloned(),
        Job::Learn(_) | Job::Mutate(_) => None,
    }
}

/// Executes one job against the database's engine.
fn execute(engine: &Engine, job: Job) -> Result<JobResult, JobError> {
    match job {
        Job::Coverage(job) => Ok(JobResult::Covered(
            engine.covered_sets_batch(&job.clauses, &job.examples),
        )),
        Job::Score(job) => Ok(JobResult::Scores(engine.coverage_counts_batch(
            &job.clauses,
            &job.positive,
            &job.negative,
        ))),
        Job::Learn(job) => {
            let definition = match &job.algorithm {
                LearnAlgorithm::Foil(params) => {
                    Foil::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Progol(params) => {
                    Progol::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Golem(params) => {
                    Golem::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::ProGolem(params) => {
                    ProGolem::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Castor(config) => {
                    Castor::new((**config).clone())
                        .learn_in(engine, &job.task)
                        .definition
                }
            };
            Ok(JobResult::Learned(definition))
        }
        Job::Mutate(batch) => engine
            .apply(&batch)
            .map(JobResult::Mutated)
            .map_err(JobError::Mutation),
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = panic.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = panic.downcast_ref::<String>() {
        msg.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHandle;
    use castor_relational::MutationBatch;

    fn queued(ctx: &Arc<SessionCtx>) -> (QueuedJob, JobHandle) {
        let (handle, shared) = JobHandle::new(0);
        (
            QueuedJob {
                job: Job::Mutate(MutationBatch::new()),
                shared,
                ctx: Arc::clone(ctx),
                trace: 0,
                submitted_ns: 0,
                deadline: None,
                progress: None,
            },
            handle,
        )
    }

    /// The fairness contract at the queue level, fully deterministic: a
    /// flooding session's backlog is interleaved one-per-turn with the
    /// other sessions' jobs instead of draining first.
    #[test]
    fn round_robin_drains_one_job_per_session_turn() {
        let queue = DatabaseQueue::new(0);
        let flooder = queue.open_session();
        let light = queue.open_session();
        let ctx = Arc::new(SessionCtx::new());
        let mut handles = Vec::new();
        // The flooder enqueues five jobs before the light session's one.
        for _ in 0..5 {
            let (job, handle) = queued(&ctx);
            assert!(matches!(queue.submit(flooder, job), SubmitOutcome::Queued));
            handles.push(handle);
        }
        let (job, _light_handle) = queued(&ctx);
        assert!(matches!(queue.submit(light, job), SubmitOutcome::Queued));
        // Drain order: flood0, light0, flood1, flood2, ... — the light job
        // waits behind exactly one flooder job, not five.
        let mut order = Vec::new();
        for _ in 0..6 {
            queue.pop().expect("job queued");
            let state = queue.lock();
            let flooder_left = state
                .queues
                .get(&flooder)
                .map_or(0, |q: &SessionQueue| q.jobs.len());
            let light_left = state
                .queues
                .get(&light)
                .map_or(0, |q: &SessionQueue| q.jobs.len());
            drop(state);
            order.push((flooder_left, light_left));
            queue.job_done();
        }
        assert_eq!(
            order,
            vec![(4, 1), (4, 0), (3, 0), (2, 0), (1, 0), (0, 0)],
            "light session must be served on the second turn"
        );
        assert_eq!(queue.report().drains, 6);
        assert_eq!(queue.report().inflight, 0);
    }

    #[test]
    fn inflight_cap_rejects_excess_submissions() {
        let queue = DatabaseQueue::new(2);
        let session = queue.open_session();
        let ctx = Arc::new(SessionCtx::new());
        let (a, _ha) = queued(&ctx);
        let (b, _hb) = queued(&ctx);
        let (c, _hc) = queued(&ctx);
        assert!(matches!(queue.submit(session, a), SubmitOutcome::Queued));
        assert!(matches!(queue.submit(session, b), SubmitOutcome::Queued));
        assert!(matches!(queue.submit(session, c), SubmitOutcome::Rejected));
        assert_eq!(queue.report().inflight, 2);
        // Draining both makes room again (`job_done` releases the slot
        // only after execution, so a running job still counts).
        queue.pop().unwrap();
        queue.job_done();
        queue.pop().unwrap();
        assert_eq!(queue.report().inflight, 1);
        queue.job_done();
        let (d, _hd) = queued(&ctx);
        assert!(matches!(queue.submit(session, d), SubmitOutcome::Queued));
    }

    /// The post-mortem wiring end to end: a server configured with
    /// [`ServerConfig::with_trace_dump_path`] leaves its span ring behind
    /// as Chrome-trace JSON once the last observability handle drops —
    /// no explicit dump call anywhere.
    #[test]
    fn orderly_shutdown_leaves_a_trace_dump_behind() {
        use castor_logic::{Atom, Clause};
        use castor_relational::{RelationSymbol, Schema, Tuple};

        let path = std::env::temp_dir().join(format!(
            "castor-trace-dump-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let server = Server::new(
                ServerConfig::default()
                    .with_threads(1)
                    .with_trace_dump_path(&path),
            );
            let mut schema = Schema::new("demo");
            schema.add_relation(RelationSymbol::new("edge", &["a", "b"]));
            let mut db = DatabaseInstance::empty(&schema);
            db.insert("edge", Tuple::from_strs(&["x", "y"])).unwrap();
            server.register("demo", Arc::new(db)).unwrap();
            let session = server.session("demo").unwrap();
            let clause = Clause::new(
                Atom::vars("linked", &["a", "b"]),
                vec![Atom::vars("edge", &["a", "b"])],
            );
            session
                .covered_sets(vec![clause], vec![Tuple::from_strs(&["x", "y"])])
                .unwrap();
        }
        // The runner threads exit (and drop their `Obs` clones) shortly
        // after the server handle goes; the last drop writes the file.
        let mut dump = None;
        for _ in 0..200 {
            if let Ok(text) = std::fs::read_to_string(&path) {
                dump = Some(text);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let dump = dump.expect("trace dump file was never written");
        assert!(
            dump.contains("service.queue_wait"),
            "dump missing the job's spans: {dump}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detached_sessions_drain_then_disappear() {
        let queue = DatabaseQueue::new(0);
        let session = queue.open_session();
        let ctx = Arc::new(SessionCtx::new());
        let (job, _handle) = queued(&ctx);
        assert!(matches!(queue.submit(session, job), SubmitOutcome::Queued));
        queue.close_session(session);
        // The queued job survives the handle drop...
        assert_eq!(queue.report().open_sessions, 0);
        assert!(queue.pop().is_some());
        queue.job_done();
        // ...and the emptied queue entry is reclaimed.
        assert!(queue.lock().queues.is_empty());
        // New submissions against the dead session id fail closed.
        let (job, _handle) = queued(&ctx);
        assert!(matches!(queue.submit(session, job), SubmitOutcome::Closed));
    }
}
