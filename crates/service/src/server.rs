//! The server: one long-lived versioned engine per registered database,
//! a shared worker pool, and one runner thread per database draining a
//! FIFO job queue.
//!
//! Concurrency model: *jobs of one database execute one at a time, in
//! submission order*; parallelism comes from the engine's worker pool
//! inside each job (work-stealing over clauses × examples) and from
//! running different databases' queues on their own runner threads.
//! Serializing per database is what makes per-session counter deltas and
//! budget/cancellation overrides sound on a shared engine, and it gives
//! mutation batches a natural atomicity point: a batch is a queue item
//! like any other, so every job sees either the pre- or post-batch state.

use crate::job::{Job, JobError, JobResult, JobShared, LearnAlgorithm};
use crate::session::Session;
use castor_core::Castor;
use castor_engine::{Engine, EngineConfig, EngineReport, WorkerPool};
use castor_learners::{Foil, Golem, ProGolem, Progol};
use castor_relational::DatabaseInstance;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the pool shared by every registered engine
    /// (1 = inline evaluation).
    pub threads: usize,
    /// Engine configuration applied to every registered database (its
    /// `threads` field is overridden by the shared pool).
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            engine: EngineConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Returns a copy with the given shared-pool size.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the given per-database engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Errors raised by server administration calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A database name was registered twice.
    DuplicateDatabase(String),
    /// A session or report was requested for an unregistered database.
    UnknownDatabase(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::DuplicateDatabase(name) => {
                write!(f, "database `{name}` is already registered")
            }
            ServerError::UnknownDatabase(name) => write!(f, "unknown database `{name}`"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-session state shared between the session handle and the runner.
#[derive(Debug)]
pub(crate) struct SessionCtx {
    /// Cancellation token; also installed on the engine while the
    /// session's jobs run.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Per-test node budget override (meaningful when
    /// `has_budget_override`).
    pub(crate) eval_budget: AtomicUsize,
    /// Whether `eval_budget` overrides the engine default.
    pub(crate) has_budget_override: AtomicBool,
    /// Engine-counter deltas attributed to this session's jobs.
    pub(crate) consumed: Mutex<EngineReport>,
}

impl SessionCtx {
    fn new() -> Self {
        SessionCtx {
            cancel: Arc::new(AtomicBool::new(false)),
            eval_budget: AtomicUsize::new(0),
            has_budget_override: AtomicBool::new(false),
            consumed: Mutex::new(EngineReport::default()),
        }
    }
}

/// One queue item: the job, its result slot, and the submitting session.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub(crate) job: Job,
    pub(crate) shared: Arc<JobShared>,
    pub(crate) ctx: Arc<SessionCtx>,
}

struct DatabaseEntry {
    engine: Arc<Engine>,
    queue: Sender<QueuedJob>,
}

/// A multi-session serving facade: long-lived engines over mutating
/// databases, one FIFO job queue per database, a worker pool shared by
/// every engine.
pub struct Server {
    pool: Arc<WorkerPool>,
    config: ServerConfig,
    databases: Mutex<HashMap<String, DatabaseEntry>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        f.debug_struct("Server")
            .field("threads", &self.config.threads)
            .field("databases", &names)
            .finish()
    }
}

impl Server {
    /// Creates a server with no registered databases.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            pool: Arc::new(WorkerPool::new(config.threads)),
            config,
            databases: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a database under `name`: builds its versioned engine on
    /// the shared pool and spawns its runner thread. The instance is shared,
    /// not copied; the caller's `Arc` stays a pre-registration snapshot
    /// once mutations start (copy-on-write).
    pub fn register(
        &self,
        name: impl Into<String>,
        db: Arc<DatabaseInstance>,
    ) -> Result<(), ServerError> {
        let name = name.into();
        let mut databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        if databases.contains_key(&name) {
            return Err(ServerError::DuplicateDatabase(name));
        }
        let mut engine_config = self.config.engine.clone();
        engine_config.threads = self.config.threads;
        let engine = Arc::new(Engine::with_pool(db, engine_config, Arc::clone(&self.pool)));
        let (sender, receiver) = channel::<QueuedJob>();
        let runner_engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name(format!("castor-service-runner-{name}"))
            .spawn(move || run_queue(runner_engine, receiver))
            .expect("failed to spawn runner thread");
        databases.insert(
            name,
            DatabaseEntry {
                engine,
                queue: sender,
            },
        );
        Ok(())
    }

    /// The names of every registered database, sorted.
    pub fn databases(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Opens a session on a registered database.
    pub fn session(&self, database: &str) -> Result<Session, ServerError> {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        let entry = databases
            .get(database)
            .ok_or_else(|| ServerError::UnknownDatabase(database.to_string()))?;
        Ok(Session::new(
            database.to_string(),
            Arc::clone(&entry.engine),
            entry.queue.clone(),
            Arc::new(SessionCtx::new()),
        ))
    }

    /// The total engine counters of one database (every session's activity
    /// combined).
    pub fn report(&self, database: &str) -> Result<EngineReport, ServerError> {
        let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
        databases
            .get(database)
            .map(|entry| entry.engine.report())
            .ok_or_else(|| ServerError::UnknownDatabase(database.to_string()))
    }
}

/// The runner loop of one database: drains the queue in FIFO order. Exits
/// when every sender (the server entry plus all session clones) is gone —
/// queued jobs are still drained first, so no handle is left hanging.
fn run_queue(engine: Arc<Engine>, receiver: Receiver<QueuedJob>) {
    while let Ok(QueuedJob { job, shared, ctx }) = receiver.recv() {
        if ctx.cancel.load(Ordering::Relaxed) {
            shared.complete(Err(JobError::Cancelled));
            continue;
        }
        // Mutations don't run the executor, so cancellation cannot corrupt
        // them; evaluation jobs cancelled mid-run are reported as such.
        let cancellable = !matches!(job, Job::Mutate(_));
        let default_budget = engine.config().eval_budget;
        if ctx.has_budget_override.load(Ordering::Relaxed) {
            engine.set_eval_budget(ctx.eval_budget.load(Ordering::Relaxed));
        }
        engine.set_cancel_token(Some(Arc::clone(&ctx.cancel)));
        let before = engine.report();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&engine, job)));
        let after = engine.report();
        engine.set_cancel_token(None);
        engine.set_eval_budget(default_budget);
        {
            let delta = after.delta_since(&before);
            let mut consumed = ctx.consumed.lock().unwrap_or_else(|e| e.into_inner());
            *consumed = consumed.combined(&delta);
        }
        let mut result = match outcome {
            Ok(result) => result,
            Err(panic) => Err(JobError::Panicked(panic_message(panic))),
        };
        if cancellable && ctx.cancel.load(Ordering::Relaxed) {
            // The job was cancelled mid-run: its aborted searches ended as
            // budget exhaustions, which the memo cache refuses at
            // write-back while the cancellation is pending (genuine
            // exhaustions are cached keyed by the budget they were observed
            // under and served only to equal-or-smaller budgets), so no
            // cancellation-tainted verdict can leak to other sessions — the
            // partial result is simply discarded.
            result = Err(JobError::Cancelled);
        }
        shared.complete(result);
    }
}

/// Executes one job against the database's engine.
fn execute(engine: &Engine, job: Job) -> Result<JobResult, JobError> {
    match job {
        Job::Coverage(job) => Ok(JobResult::Covered(
            engine.covered_sets_batch(&job.clauses, &job.examples),
        )),
        Job::Score(job) => Ok(JobResult::Scores(engine.coverage_counts_batch(
            &job.clauses,
            &job.positive,
            &job.negative,
        ))),
        Job::Learn(job) => {
            let definition = match &job.algorithm {
                LearnAlgorithm::Foil(params) => {
                    Foil::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Progol(params) => {
                    Progol::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Golem(params) => {
                    Golem::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::ProGolem(params) => {
                    ProGolem::new().learn_with_engine(engine, &job.task, params)
                }
                LearnAlgorithm::Castor(config) => {
                    Castor::new((**config).clone())
                        .learn_in(engine, &job.task)
                        .definition
                }
            };
            Ok(JobResult::Learned(definition))
        }
        Job::Mutate(batch) => engine
            .apply(&batch)
            .map(JobResult::Mutated)
            .map_err(JobError::Mutation),
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = panic.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = panic.downcast_ref::<String>() {
        msg.clone()
    } else {
        "unknown panic".to_string()
    }
}
