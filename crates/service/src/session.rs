//! Sessions: per-client handles on a server-owned engine.
//!
//! A [`Session`] is cheap to create and owns no engine state. It carries:
//!
//! * per-session **config overrides** (currently the per-test node budget),
//!   installed on the shared engine only for the duration of the session's
//!   jobs;
//! * an isolated **counter view**: the runner snapshots the engine counters
//!   around every job and accumulates the delta here, so
//!   [`Session::report`] shows exactly the engine activity this session
//!   caused — per-session deltas sum to the server total;
//! * a **cancellation token** checked by the executor and θ-subsumption
//!   budget loops: after [`Session::cancel`], queued jobs fail fast with
//!   [`JobError::Cancelled`] and a running job's coverage tests abort
//!   within one candidate tuple. (Bottom-clause *grounding* inside a
//!   Castor [`LearnJob`] is not budget-driven, so a
//!   cancelled learn job stops at its next coverage test rather than
//!   mid-grounding.)

use crate::job::{CoverageJob, Job, JobError, JobHandle, LearnJob, ScoreJob};
use crate::server::{DatabaseQueue, SessionCtx, SubmitOutcome};
use crate::stats::ServerStats;
use crate::QueuedJob;
use castor_engine::{ClauseCounts, Engine, EngineReport, ProgressSink};
use castor_logic::{Clause, Definition};
use castor_relational::{DatabaseInstance, MutationBatch, MutationSummary, Tuple};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A client handle on one database of a [`crate::Server`]. Each session
/// owns its own FIFO queue on the database, drained round-robin against
/// the other sessions' queues; dropping the handle releases its admission
/// slot (queued jobs still run to completion).
#[derive(Debug)]
pub struct Session {
    database: String,
    engine: Arc<Engine>,
    queue: Arc<DatabaseQueue>,
    id: u64,
    ctx: Arc<SessionCtx>,
    stats: Arc<ServerStats>,
}

impl Session {
    pub(crate) fn new(
        database: String,
        engine: Arc<Engine>,
        queue: Arc<DatabaseQueue>,
        id: u64,
        ctx: Arc<SessionCtx>,
        stats: Arc<ServerStats>,
    ) -> Self {
        Session {
            database,
            engine,
            queue,
            id,
            ctx,
            stats,
        }
    }

    /// The database this session is bound to.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Overrides the per-test node budget for this session's jobs (builder
    /// style). Other sessions on the same engine keep the engine default.
    pub fn with_eval_budget(self, budget: usize) -> Self {
        self.ctx.eval_budget.store(budget, Ordering::Relaxed);
        self.ctx.has_budget_override.store(true, Ordering::Relaxed);
        self
    }

    /// A consistent snapshot of the database the session's engine currently
    /// serves (copy-on-write: later mutations never alter it).
    pub fn snapshot(&self) -> Arc<DatabaseInstance> {
        self.engine.snapshot()
    }

    /// Sets the session's cancellation token: queued jobs fail fast with
    /// [`JobError::Cancelled`] and a running job's coverage tests (database
    /// execution and θ-subsumption alike) abort within one candidate tuple
    /// of their budget loops.
    pub fn cancel(&self) {
        self.ctx.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the session has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.ctx.cancel.load(Ordering::Relaxed)
    }

    /// Lifts a previous [`Session::cancel`], so new jobs run again.
    pub fn reset_cancel(&self) {
        self.ctx.cancel.store(false, Ordering::Relaxed);
    }

    /// The engine activity this session's jobs caused so far (isolated
    /// counter deltas; see the module docs).
    pub fn report(&self) -> EngineReport {
        *self.ctx.consumed.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a job on this session's queue, returning a handle
    /// immediately. Jobs of one session run in submission order; different
    /// sessions' queues are drained round-robin. A submission over the
    /// database's in-flight cap fails fast with [`JobError::Rejected`].
    ///
    /// The job is assigned a freshly minted local trace id (readable via
    /// [`JobHandle::trace_id`]); work arriving over the wire should use
    /// [`Session::submit_traced`] with its request id instead.
    pub fn submit(&self, job: Job) -> JobHandle {
        let trace = self.engine.obs().mint_trace();
        self.submit_traced(job, trace)
    }

    /// [`Session::submit`] under a caller-chosen trace id — the RPC front
    /// end passes the frame request id verbatim, so one job's spans
    /// (client encode, queue wait, engine evaluation, reply write) share
    /// one id across processes.
    pub fn submit_traced(&self, job: Job, trace: u64) -> JobHandle {
        self.submit_traced_with_progress(job, trace, None)
    }

    /// [`Session::submit_traced`] with a learn-progress sink installed on
    /// the engine for the duration of the job: covering loops report each
    /// accepted clause through it (the v2 wire front end streams these to
    /// the client as incremental progress frames). The sink runs on the
    /// database's runner thread, so it must never block on the consumer.
    pub fn submit_traced_with_progress(
        &self,
        job: Job,
        trace: u64,
        progress: Option<ProgressSink>,
    ) -> JobHandle {
        let (handle, shared) = JobHandle::new(trace);
        let deadline = job.deadline();
        let queued = QueuedJob {
            job,
            shared: Arc::clone(&shared),
            ctx: Arc::clone(&self.ctx),
            trace,
            submitted_ns: self.engine.obs().now_ns(),
            deadline,
            progress,
        };
        match self.queue.submit(self.id, queued) {
            SubmitOutcome::Queued => {
                self.stats.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            }
            SubmitOutcome::Closed => {
                // The runner is gone (server shut down): fail the job
                // rather than leaving the handle hanging forever.
                shared.complete(Err(JobError::Cancelled));
            }
            SubmitOutcome::Rejected => {
                self.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                shared.complete(Err(JobError::Rejected {
                    limit: self.queue.max_inflight(),
                    retry_after_ms: self.retry_after_ms(),
                }));
            }
        }
        handle
    }

    /// Load-aware backoff hint attached to rejections: proportional to the
    /// queue depth at rejection time (a deeper backlog drains later), with
    /// a floor so clients never spin and a cap so they never stall.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.queue.report().inflight as u64;
        (depth * 10).clamp(10, 5_000)
    }

    /// Submits a [`CoverageJob`] and blocks for the per-clause covered sets.
    pub fn covered_sets(
        &self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
    ) -> Result<Vec<HashSet<Tuple>>, JobError> {
        let handle = self.submit(Job::Coverage(CoverageJob::new(clauses, examples)));
        Ok(handle
            .join()?
            .into_covered()
            .expect("coverage job returns covered sets"))
    }

    /// Submits a [`ScoreJob`] and blocks for the per-clause counts (fused
    /// positive/negative pass).
    pub fn score(
        &self,
        clauses: Vec<Clause>,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Result<Vec<ClauseCounts>, JobError> {
        let handle = self.submit(Job::Score(ScoreJob::new(clauses, positive, negative)));
        Ok(handle
            .join()?
            .into_scores()
            .expect("score job returns counts"))
    }

    /// Submits a [`LearnJob`] and blocks for the learned definition.
    pub fn learn(&self, job: LearnJob) -> Result<Definition, JobError> {
        let handle = self.submit(Job::Learn(Box::new(job)));
        Ok(handle
            .join()?
            .into_definition()
            .expect("learn job returns a definition"))
    }

    /// Submits a mutation batch and blocks until it is applied. The batch
    /// is serialized with the database's other jobs, so this session's
    /// later jobs observe it while unrelated sessions' in-flight jobs do
    /// not see a half-applied state.
    pub fn apply(&self, batch: MutationBatch) -> Result<MutationSummary, JobError> {
        let handle = self.submit(Job::Mutate(batch));
        Ok(handle
            .join()?
            .into_summary()
            .expect("mutation job returns a summary"))
    }
}

impl Drop for Session {
    /// Releases the session's admission slot and unbinds its queue. Jobs
    /// already queued still run to completion (their handles resolve);
    /// call [`Session::cancel`] first to discard them instead.
    fn drop(&mut self) {
        self.queue.close_session(self.id);
        self.stats.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }
}
