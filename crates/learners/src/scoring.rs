//! Coverage counting and clause scoring.
//!
//! Every learner in the paper scores candidate clauses by how many positive
//! and negative examples they cover relative to the background database.
//! Coverage of an example is body-satisfiability with the head bound to the
//! example (see `castor_logic::covers_example`).
//!
//! The hot paths route through a [`castor_engine::Engine`], which compiles
//! a join plan per clause, memoizes results per canonical clause, and runs
//! large batches on its worker pool; the direct `DatabaseInstance`-backed
//! functions remain as the uncached reference semantics.

use castor_engine::{Engine, Prior};
use castor_logic::{covers_example, Clause, Definition};
use castor_relational::{DatabaseInstance, Tuple};

/// The positive/negative coverage of one clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClauseCoverage {
    /// Number of positive examples covered.
    pub positive: usize,
    /// Number of negative examples covered.
    pub negative: usize,
}

impl ClauseCoverage {
    /// The coverage score used by the bottom-up learners: positives minus
    /// negatives.
    pub fn score(&self) -> i64 {
        self.positive as i64 - self.negative as i64
    }

    /// Precision (positives over all covered). Zero when nothing is covered.
    pub fn precision(&self) -> f64 {
        if self.positive + self.negative == 0 {
            0.0
        } else {
            self.positive as f64 / (self.positive + self.negative) as f64
        }
    }
}

/// Counts positive/negative coverage through the evaluation engine
/// (compiled plans + memoized cache + worker pool). Routed through the
/// engine's batched scoring path so single-clause re-scoring and beam
/// scoring share one code path (and one set of counters).
pub fn clause_coverage_engine(
    engine: &Engine,
    clause: &Clause,
    positive: &[Tuple],
    negative: &[Tuple],
) -> ClauseCoverage {
    clauses_coverage_engine(engine, std::slice::from_ref(clause), positive, negative)
        .pop()
        .expect("one clause in, one coverage out")
}

/// Scores a whole beam of candidate clauses in one batched engine call:
/// siblings sharing a body prefix share the prefix join (one index probe
/// feeds every candidate), and α-equivalent candidates are deduplicated.
/// This is the scoring entry point of every beam learner.
pub fn clauses_coverage_engine(
    engine: &Engine,
    clauses: &[Clause],
    positive: &[Tuple],
    negative: &[Tuple],
) -> Vec<ClauseCoverage> {
    engine
        .coverage_counts_batch(clauses, positive, negative)
        .into_iter()
        .map(|counts| ClauseCoverage {
            positive: counts.positive,
            negative: counts.negative,
        })
        .collect()
}

/// The examples from `examples` covered by the clause, tested through the
/// engine.
pub fn covered_examples_engine<'a>(
    engine: &Engine,
    clause: &Clause,
    examples: &'a [Tuple],
) -> Vec<&'a Tuple> {
    let covered = engine.covered_set(clause, examples, Prior::None);
    examples.iter().filter(|e| covered.contains(*e)).collect()
}

/// Counts how many positive and negative examples the clause covers.
pub fn clause_coverage(
    clause: &Clause,
    db: &DatabaseInstance,
    positive: &[Tuple],
    negative: &[Tuple],
) -> ClauseCoverage {
    ClauseCoverage {
        positive: positive
            .iter()
            .filter(|e| covers_example(clause, db, e))
            .count(),
        negative: negative
            .iter()
            .filter(|e| covers_example(clause, db, e))
            .count(),
    }
}

/// Precision of the clause over the given examples.
pub fn clause_precision(
    clause: &Clause,
    db: &DatabaseInstance,
    positive: &[Tuple],
    negative: &[Tuple],
) -> f64 {
    clause_coverage(clause, db, positive, negative).precision()
}

/// The examples from `examples` covered by the clause.
pub fn covered_examples<'a>(
    clause: &Clause,
    db: &DatabaseInstance,
    examples: &'a [Tuple],
) -> Vec<&'a Tuple> {
    examples
        .iter()
        .filter(|e| covers_example(clause, db, e))
        .collect()
}

/// The examples from `examples` *not* covered by any clause of the
/// definition — the remaining uncovered positives the covering loop keeps
/// working on.
pub fn uncovered_examples(
    def: &Definition,
    db: &DatabaseInstance,
    examples: &[Tuple],
) -> Vec<Tuple> {
    examples
        .iter()
        .filter(|e| !def.clauses.iter().any(|c| covers_example(c, db, e)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol")] {
            db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
        }
        db
    }

    fn clause() -> Clause {
        Clause::new(
            Atom::vars("collaborated", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )
    }

    #[test]
    fn engine_scoring_matches_direct_scoring() {
        let db = db();
        let engine = Engine::new(&db, castor_engine::EngineConfig::default());
        let pos = vec![Tuple::from_strs(&["ann", "bob"])];
        let neg = vec![
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["bob", "bob"]),
        ];
        assert_eq!(
            clause_coverage_engine(&engine, &clause(), &pos, &neg),
            clause_coverage(&clause(), &db, &pos, &neg)
        );
        let all: Vec<Tuple> = pos.iter().chain(neg.iter()).cloned().collect();
        assert_eq!(
            covered_examples_engine(&engine, &clause(), &all),
            covered_examples(&clause(), &db, &all)
        );
    }

    #[test]
    fn batched_beam_scoring_matches_direct_scoring() {
        let db = db();
        let engine = Engine::new(&db, castor_engine::EngineConfig::default());
        let pos = vec![Tuple::from_strs(&["ann", "bob"])];
        let neg = vec![
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["bob", "bob"]),
        ];
        // Siblings: shared prefix, one differing trailing literal.
        let mut longer = clause();
        longer.push(Atom::vars("publication", &["q", "x"]));
        let beam = vec![clause(), longer];
        let batched = clauses_coverage_engine(&engine, &beam, &pos, &neg);
        for (c, batched) in beam.iter().zip(batched) {
            assert_eq!(batched, clause_coverage(c, &db, &pos, &neg), "on {c}");
        }
        assert!(engine.report().batches >= 1);
    }

    #[test]
    fn coverage_counts_positives_and_negatives() {
        let db = db();
        let pos = vec![Tuple::from_strs(&["ann", "bob"])];
        let neg = vec![
            Tuple::from_strs(&["ann", "carol"]),
            Tuple::from_strs(&["bob", "bob"]), // self pair, covered
        ];
        let cov = clause_coverage(&clause(), &db, &pos, &neg);
        assert_eq!(cov.positive, 1);
        assert_eq!(cov.negative, 1);
        assert_eq!(cov.score(), 0);
        assert!((cov.precision() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_coverage_has_zero_precision() {
        assert_eq!(ClauseCoverage::default().precision(), 0.0);
    }

    #[test]
    fn uncovered_examples_shrink_as_clauses_are_added() {
        let db = db();
        let pos = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "zoe"]),
        ];
        let mut def = Definition::empty("collaborated");
        assert_eq!(uncovered_examples(&def, &db, &pos).len(), 2);
        def.push(clause());
        let remaining = uncovered_examples(&def, &db, &pos);
        assert_eq!(remaining, vec![Tuple::from_strs(&["ann", "zoe"])]);
    }

    #[test]
    fn covered_examples_returns_references() {
        let db = db();
        let examples = vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["ann", "carol"]),
        ];
        let covered = covered_examples(&clause(), &db, &examples);
        assert_eq!(covered.len(), 1);
    }
}
