//! Learner parameters θ.
//!
//! The paper models an algorithm's hypothesis space `L_{A,R,θ}` as a
//! function of its parameters. The parameters below cover every knob used in
//! the experimental section: `clauselength` for top-down learners, the
//! bottom-clause depth/recall limits for bottom-up learners, the minimum
//! precision (`minacc`/`minprec` = 0.67) and minimum positive coverage
//! (`minpos` = 2) thresholds, beam width, and the sample size `K` used by
//! Golem/ProGolem/Castor when picking examples to generalize against.

use castor_engine::EngineConfig;
use castor_logic::DEFAULT_EVAL_NODE_BUDGET;
use std::collections::BTreeSet;

/// Parameters shared by the learners in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnerParams {
    /// `(relation, position)` pairs whose values are kept as constants in
    /// bottom clauses (the equivalent of `#`-marked mode-declaration
    /// arguments). Dataset definitions provide these.
    pub constant_positions: BTreeSet<(String, usize)>,
    /// Maximum number of body literals in a clause considered by top-down
    /// learners (`clauselength` in Aleph).
    pub clause_length: usize,
    /// Maximum variable depth of bottom clauses (Section 6.1).
    pub max_depth: usize,
    /// Maximum number of iterations of bottom-clause construction (each
    /// iteration can only create literals of one additional depth level).
    pub max_iterations: usize,
    /// Minimum precision a clause must reach to be added to the hypothesis
    /// (the paper uses 2:1, i.e. 0.67, across all systems).
    pub min_precision: f64,
    /// Minimum number of positive examples a clause must cover.
    pub min_pos: usize,
    /// Beam width for beam-search learners (ProGolem, Castor, Progol).
    pub beam_width: usize,
    /// Number of positive examples sampled per generalization round (`K`).
    pub sample_size: usize,
    /// Maximum number of tuples of one relation joined with the current
    /// tuple during bottom-clause construction (the paper uses 10).
    pub max_recall_per_relation: usize,
    /// Maximum number of distinct variables in a bottom clause — Castor's
    /// schema-independent stopping condition (Section 7.1).
    pub max_distinct_variables: usize,
    /// Whether top-down learners may place constants in candidate literals.
    pub allow_constants: bool,
    /// Cap on candidate constants per attribute when `allow_constants`.
    pub max_constants_per_attribute: usize,
    /// Number of coverage-testing worker threads (Castor; Figure 2).
    pub threads: usize,
    /// Node budget per coverage test — both database evaluation and
    /// θ-subsumption against ground bottom clauses. Exhausted budgets are
    /// counted and reported by the evaluation engine instead of silently
    /// skewing coverage counts.
    pub eval_budget: usize,
}

impl Default for LearnerParams {
    fn default() -> Self {
        LearnerParams {
            constant_positions: BTreeSet::new(),
            clause_length: 4,
            max_depth: 3,
            max_iterations: 3,
            min_precision: 2.0 / 3.0,
            min_pos: 2,
            beam_width: 3,
            sample_size: 20,
            max_recall_per_relation: 10,
            max_distinct_variables: 20,
            allow_constants: true,
            max_constants_per_attribute: 8,
            threads: 1,
            eval_budget: DEFAULT_EVAL_NODE_BUDGET,
        }
    }
}

impl LearnerParams {
    /// The paper's default configuration for small datasets (UW-CSE).
    pub fn uwcse() -> Self {
        LearnerParams {
            sample_size: 20,
            beam_width: 3,
            ..LearnerParams::default()
        }
    }

    /// The paper's configuration for large datasets (HIV, IMDb): sample and
    /// beam width of 1.
    pub fn large_dataset() -> Self {
        LearnerParams {
            sample_size: 1,
            beam_width: 1,
            clause_length: 10,
            max_iterations: 2,
            max_distinct_variables: 60,
            ..LearnerParams::default()
        }
    }

    /// Returns a copy with a different `clauselength` (used when sweeping
    /// clauselength = 10 / 15 as in Table 9).
    pub fn with_clause_length(mut self, clause_length: usize) -> Self {
        self.clause_length = clause_length;
        self
    }

    /// Returns a copy with a different thread count (Figure 2 sweep).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The evaluation-engine configuration induced by these parameters
    /// (thread count and node budget).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig::default()
            .with_threads(self.threads)
            .with_eval_budget(self.eval_budget)
    }

    /// Whether a clause covering `pos` positive and `neg` negative examples
    /// meets the minimum-condition thresholds.
    pub fn meets_minimum(&self, pos: usize, neg: usize) -> bool {
        if pos < self.min_pos {
            return false;
        }
        if pos + neg == 0 {
            return false;
        }
        let precision = pos as f64 / (pos + neg) as f64;
        precision + 1e-9 >= self.min_precision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let p = LearnerParams::default();
        assert!((p.min_precision - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.min_pos, 2);
        assert_eq!(p.max_recall_per_relation, 10);
    }

    #[test]
    fn minimum_condition_enforces_precision_and_minpos() {
        let p = LearnerParams::default();
        assert!(p.meets_minimum(4, 2)); // precision 0.67
        assert!(!p.meets_minimum(1, 0)); // below minpos
        assert!(!p.meets_minimum(2, 3)); // precision 0.4
        assert!(!p.meets_minimum(0, 0));
    }

    #[test]
    fn engine_config_carries_threads_and_budget() {
        let p = LearnerParams {
            threads: 4,
            eval_budget: 1234,
            ..Default::default()
        };
        let config = p.engine_config();
        assert_eq!(config.threads, 4);
        assert_eq!(config.eval_budget, 1234);
    }

    #[test]
    fn builders_override_fields() {
        let p = LearnerParams::large_dataset()
            .with_clause_length(15)
            .with_threads(0);
        assert_eq!(p.clause_length, 15);
        assert_eq!(p.threads, 1); // clamped
        assert_eq!(p.sample_size, 1);
    }
}
