//! Learning tasks: a target relation plus labeled examples.

use castor_relational::Tuple;

/// The input to a sample-based relational learning algorithm (Definition
/// 3.1): a target relation `T`, positive examples `E+`, and negative
/// examples `E−`. The background knowledge (database instance) is passed
/// separately so the same task can be evaluated over several schema
/// variants of the same data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearningTask {
    /// Name of the target relation being learned.
    pub target: String,
    /// Arity of the target relation.
    pub target_arity: usize,
    /// Positive examples (tuples of the target relation).
    pub positive: Vec<Tuple>,
    /// Negative examples.
    pub negative: Vec<Tuple>,
}

impl LearningTask {
    /// Creates a learning task, checking that every example has the target
    /// arity.
    pub fn new(
        target: impl Into<String>,
        target_arity: usize,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Self {
        let target = target.into();
        for e in positive.iter().chain(negative.iter()) {
            assert_eq!(
                e.arity(),
                target_arity,
                "example {e} does not match target arity {target_arity}"
            );
        }
        LearningTask {
            target,
            target_arity,
            positive,
            negative,
        }
    }

    /// Number of positive examples.
    pub fn positive_count(&self) -> usize {
        self.positive.len()
    }

    /// Number of negative examples.
    pub fn negative_count(&self) -> usize {
        self.negative.len()
    }

    /// A copy of the task restricted to the given example index ranges;
    /// used by cross-validation to build folds.
    pub fn with_examples(&self, positive: Vec<Tuple>, negative: Vec<Tuple>) -> LearningTask {
        LearningTask {
            target: self.target.clone(),
            target_arity: self.target_arity,
            positive,
            negative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_examples() {
        let task = LearningTask::new(
            "advisedBy",
            2,
            vec![Tuple::from_strs(&["s1", "p1"])],
            vec![
                Tuple::from_strs(&["s1", "p2"]),
                Tuple::from_strs(&["s2", "p1"]),
            ],
        );
        assert_eq!(task.positive_count(), 1);
        assert_eq!(task.negative_count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match target arity")]
    fn arity_mismatch_is_rejected() {
        let _ = LearningTask::new("t", 2, vec![Tuple::from_strs(&["only-one"])], vec![]);
    }

    #[test]
    fn with_examples_preserves_target() {
        let task = LearningTask::new("t", 1, vec![Tuple::from_strs(&["a"])], vec![]);
        let sub = task.with_examples(vec![], vec![Tuple::from_strs(&["b"])]);
        assert_eq!(sub.target, "t");
        assert_eq!(sub.positive_count(), 0);
        assert_eq!(sub.negative_count(), 1);
    }
}
