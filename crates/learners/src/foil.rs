//! FOIL: greedy top-down relational learning (Quinlan 1990; Section 5).
//!
//! FOIL's `LearnClause` starts from the most general clause for the target
//! and repeatedly adds the single literal with the best information gain,
//! without backtracking, until the clause covers no negative example (or the
//! `clauselength` bound is hit). Because the candidate literals and the
//! greedy choice both depend on how the schema splits attributes across
//! relations, FOIL is not schema independent (Theorem 5.1, Example 1.1).

use crate::covering::{covering_loop, ClauseLearner};
use crate::params::LearnerParams;
use crate::scoring::clauses_coverage_engine;
use crate::task::LearningTask;
use castor_engine::Engine;
use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::{DatabaseInstance, Tuple, Value};

/// The FOIL learner.
#[derive(Debug, Default)]
pub struct Foil {
    fresh_counter: usize,
}

impl Foil {
    /// Creates a FOIL learner.
    pub fn new() -> Self {
        Foil::default()
    }

    /// Learns a Horn definition for the task over `db`, building a private
    /// evaluation engine from `params`.
    pub fn learn(
        &mut self,
        db: &DatabaseInstance,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let engine = Engine::new(db, params.engine_config());
        self.learn_with_engine(&engine, task, params)
    }

    fn fresh_var(&mut self) -> String {
        let name = format!("N{}", self.fresh_counter);
        self.fresh_counter += 1;
        name
    }

    /// Generates candidate literals to append to `clause`: for every
    /// relation, every placement of one or two existing variables into
    /// argument slots (remaining slots get fresh variables), plus — when
    /// constants are allowed — placements that combine one existing variable
    /// with one frequent constant.
    fn candidate_literals(
        &mut self,
        db: &DatabaseInstance,
        clause: &Clause,
        params: &LearnerParams,
    ) -> Vec<Atom> {
        let existing: Vec<String> = clause.variables().into_iter().collect();
        let mut candidates = Vec::new();
        for relation in db.schema().relations() {
            let arity = relation.arity();
            if arity == 0 {
                continue;
            }
            // One existing variable at position `pos`, fresh everywhere else.
            for pos in 0..arity {
                for var in &existing {
                    let mut terms: Vec<Term> =
                        (0..arity).map(|_| Term::var(self.fresh_var())).collect();
                    terms[pos] = Term::var(var.clone());
                    candidates.push(Atom::new(relation.name(), terms));

                    // Optionally also bind one other position to a constant.
                    if params.allow_constants {
                        let instance = db
                            .relation(relation.name())
                            .expect("schema relation has an instance");
                        for const_pos in 0..arity {
                            if const_pos == pos {
                                continue;
                            }
                            let mut values: Vec<Value> =
                                instance.active_domain_at(const_pos).into_iter().collect();
                            values.sort();
                            values.truncate(params.max_constants_per_attribute);
                            for value in values {
                                let mut terms: Vec<Term> =
                                    (0..arity).map(|_| Term::var(self.fresh_var())).collect();
                                terms[pos] = Term::var(var.clone());
                                terms[const_pos] = Term::Const(value);
                                candidates.push(Atom::new(relation.name(), terms));
                            }
                        }
                    }
                }
            }
            // Two existing variables (all ordered pairs), fresh elsewhere.
            if arity >= 2 {
                for pos_a in 0..arity {
                    for pos_b in 0..arity {
                        if pos_a == pos_b {
                            continue;
                        }
                        for var_a in &existing {
                            for var_b in &existing {
                                let mut terms: Vec<Term> =
                                    (0..arity).map(|_| Term::var(self.fresh_var())).collect();
                                terms[pos_a] = Term::var(var_a.clone());
                                terms[pos_b] = Term::var(var_b.clone());
                                candidates.push(Atom::new(relation.name(), terms));
                            }
                        }
                    }
                }
            }
        }
        candidates
    }
}

/// FOIL's information gain for extending a clause: `p1 * (log2(prec1) -
/// log2(prec0))` computed over example counts.
fn foil_gain(pos_before: usize, neg_before: usize, pos_after: usize, neg_after: usize) -> f64 {
    if pos_after == 0 {
        return f64::NEG_INFINITY;
    }
    let prec = |p: usize, n: usize| {
        let p = p as f64;
        let n = n as f64;
        (p / (p + n)).max(1e-12)
    };
    pos_after as f64 * (prec(pos_after, neg_after).log2() - prec(pos_before, neg_before).log2())
}

/// Variable names used for the head literal (targets in the benchmark
/// datasets have arity at most 3).
const HEAD_VAR_NAMES: [&str; 6] = ["x", "y", "z", "w", "v", "u"];

/// Internal adapter binding the task's target relation name and arity into
/// the clause learner so heads are built with the right relation symbol.
struct FoilWithTarget<'a> {
    inner: &'a mut Foil,
    target: String,
    target_arity: usize,
}

impl ClauseLearner for FoilWithTarget<'_> {
    fn learn_clause(
        &mut self,
        engine: &Engine,
        uncovered: &[Tuple],
        negative: &[Tuple],
        params: &LearnerParams,
    ) -> Option<Clause> {
        let db = engine.snapshot();
        let db = db.as_ref();
        let head_vars: Vec<&str> = HEAD_VAR_NAMES
            .iter()
            .take(self.target_arity)
            .copied()
            .collect();
        let mut clause = Clause::fact(Atom::vars(self.target.clone(), &head_vars));
        self.inner.fresh_counter = 0;

        let mut coverage = crate::scoring::ClauseCoverage {
            positive: uncovered.len(),
            negative: negative.len(),
        };

        while coverage.negative > 0 && clause.body_len() < params.clause_length {
            // Every candidate literal extends the same clause, so the whole
            // greedy choice is one sibling beam: score it in a single
            // batched engine call (the shared body prefix joins once).
            let candidates: Vec<Atom> = self
                .inner
                .candidate_literals(db, &clause, params)
                .into_iter()
                .filter(|literal| !clause.body.contains(literal)) // duplicates never help FOIL
                .collect();
            let extensions: Vec<Clause> = candidates
                .iter()
                .map(|literal| {
                    let mut extended = clause.clone();
                    extended.push(literal.clone());
                    extended
                })
                .collect();
            let coverages = clauses_coverage_engine(engine, &extensions, uncovered, negative);
            let mut best: Option<(f64, Atom, crate::scoring::ClauseCoverage)> = None;
            for (literal, cov) in candidates.into_iter().zip(coverages) {
                if cov.positive == 0 {
                    continue;
                }
                let gain = foil_gain(
                    coverage.positive,
                    coverage.negative,
                    cov.positive,
                    cov.negative,
                );
                let better = match &best {
                    None => true,
                    Some((best_gain, _, best_cov)) => {
                        gain > *best_gain
                            || (gain == *best_gain && cov.positive > best_cov.positive)
                            || (gain == *best_gain
                                && cov.positive == best_cov.positive
                                && cov.negative < best_cov.negative)
                    }
                };
                if better {
                    best = Some((gain, literal, cov));
                }
            }
            // Greedy, no backtracking: add the best literal even when its
            // gain is zero (it may introduce the variables a later literal
            // needs), bounded by `clauselength`.
            let Some((_, literal, cov)) = best else {
                break;
            };
            clause.push(literal);
            coverage = cov;
        }

        if coverage.positive == 0 || clause.body_len() == 0 {
            return None;
        }
        Some(clause)
    }
}

impl Foil {
    /// Learns a definition over a shared evaluation engine, binding the
    /// task's target relation name into the clause heads (the entry point
    /// used by the experiment harness, which reuses one engine — and its
    /// coverage cache — across folds and algorithms).
    pub fn learn_with_engine(
        &mut self,
        engine: &Engine,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let mut adapter = FoilWithTarget {
            target: task.target.clone(),
            target_arity: task.target_arity,
            inner: self,
        };
        covering_loop(&mut adapter, engine, task, params)
    }

    /// Backwards-compatible alias for [`Foil::learn`].
    pub fn learn_with_target(
        &mut self,
        db: &DatabaseInstance,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        self.learn(db, task, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    /// A database where the target `parent_of_student` holds for professors
    /// who share a publication with a student.
    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("professor", &["p"]))
            .add_relation(RelationSymbol::new("student", &["s"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for p in ["prof1", "prof2"] {
            db.insert("professor", Tuple::from_strs(&[p])).unwrap();
        }
        for s in ["stud1", "stud2", "stud3"] {
            db.insert("student", Tuple::from_strs(&[s])).unwrap();
        }
        for (t, person) in [
            ("a", "prof1"),
            ("a", "stud1"),
            ("b", "prof2"),
            ("b", "stud2"),
            ("c", "stud3"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, person]))
                .unwrap();
        }
        db
    }

    fn task() -> LearningTask {
        LearningTask::new(
            "advisedBy",
            2,
            vec![
                Tuple::from_strs(&["stud1", "prof1"]),
                Tuple::from_strs(&["stud2", "prof2"]),
            ],
            vec![
                Tuple::from_strs(&["stud1", "prof2"]),
                Tuple::from_strs(&["stud2", "prof1"]),
                Tuple::from_strs(&["stud3", "prof1"]),
            ],
        )
    }

    #[test]
    fn foil_learns_shared_publication_definition() {
        let db = db();
        let mut foil = Foil::new();
        let params = LearnerParams {
            clause_length: 4,
            allow_constants: false,
            ..Default::default()
        };
        let def = foil.learn_with_target(&db, &task(), &params);
        assert!(!def.is_empty(), "FOIL should learn at least one clause");
        // The learned definition must cover both positives and no negative.
        let t = task();
        for pos in &t.positive {
            assert!(def
                .clauses
                .iter()
                .any(|c| castor_logic::covers_example(c, &db, pos)));
        }
        for neg in &t.negative {
            assert!(!def
                .clauses
                .iter()
                .all(|c| castor_logic::covers_example(c, &db, neg)));
        }
    }

    #[test]
    fn clause_length_limits_hypothesis_space() {
        // With clauselength = 1 FOIL cannot express the shared-publication
        // join, so the learned definition covers negatives or nothing.
        let db = db();
        let mut foil = Foil::new();
        let params = LearnerParams {
            clause_length: 1,
            allow_constants: false,
            min_pos: 2,
            ..Default::default()
        };
        let def = foil.learn_with_target(&db, &task(), &params);
        let exact = Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        );
        // The two-literal definition is out of the restricted space.
        assert!(def.clauses.iter().all(|c| c.body_len() <= 1));
        assert!(def
            .clauses
            .iter()
            .all(|c| !castor_logic::subsumption::theta_equivalent(c, &exact)));
    }

    #[test]
    fn gain_prefers_literals_that_keep_positives() {
        assert!(foil_gain(10, 10, 10, 0) > foil_gain(10, 10, 5, 0));
        assert!(foil_gain(10, 10, 8, 1) > foil_gain(10, 10, 8, 8));
        assert_eq!(foil_gain(10, 10, 0, 0), f64::NEG_INFINITY);
    }

    #[test]
    fn candidate_generation_respects_constant_flag() {
        let db = db();
        let mut foil = Foil::new();
        let clause = Clause::fact(Atom::vars("advisedBy", &["x", "y"]));
        let with = foil.candidate_literals(
            &db,
            &clause,
            &LearnerParams {
                allow_constants: true,
                ..Default::default()
            },
        );
        let without = foil.candidate_literals(
            &db,
            &clause,
            &LearnerParams {
                allow_constants: false,
                ..Default::default()
            },
        );
        assert!(with.len() > without.len());
        assert!(without.iter().all(|a| a.constants().is_empty()));
    }
}
