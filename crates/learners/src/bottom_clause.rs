//! Standard (depth-bounded) bottom-clause construction — Section 6.1.
//!
//! The bottom-clause `⊥_{e,I}` associated with a positive example `e`
//! relative to database instance `I` is the most specific clause covering
//! `e`. The standard algorithm starts from the constants of `e`, repeatedly
//! pulls in every tuple containing a known constant, and variablizes the
//! resulting ground literals with a consistent constant→variable mapping.
//! Iterations are bounded by a depth parameter — which, as Lemma 6.3 shows,
//! makes the construction schema dependent. Castor's IND-aware variant (in
//! `castor-core`) fixes this by following inclusion dependencies and
//! bounding on distinct variables instead.

use castor_logic::{Atom, Clause, Term, VariableMap};
use castor_relational::{DatabaseInstance, Tuple, Value};
use std::collections::{BTreeSet, HashSet};

/// Configuration of the standard bottom-clause construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottomClauseConfig {
    /// Maximum number of iterations (each iteration adds literals of one
    /// more depth level).
    pub max_iterations: usize,
    /// Maximum number of tuples of one relation added for a single probe
    /// constant in one iteration (the paper caps this at 10 on IMDb).
    pub max_recall_per_relation: usize,
    /// Hard cap on body literals, as a safety net on very dense databases.
    pub max_body_literals: usize,
    /// `(relation, position)` pairs whose values stay constants during
    /// variablization — the equivalent of `#`-marked arguments in ILP mode
    /// declarations (e.g. `inPhase.phase`, `yearsInProgram.years`), which is
    /// how clauses like those of Examples 1.1 and 6.5 can mention constants.
    pub constant_positions: BTreeSet<(String, usize)>,
}

impl Default for BottomClauseConfig {
    fn default() -> Self {
        BottomClauseConfig {
            max_iterations: 3,
            max_recall_per_relation: 10,
            max_body_literals: 5_000,
            constant_positions: BTreeSet::new(),
        }
    }
}

/// Builds the *ground* bottom clause (saturation) of `example`: the head is
/// the example itself as a ground atom and the body contains the ground
/// literals of every tuple reachable from the example's constants within the
/// configured number of iterations.
pub fn ground_bottom_clause(
    db: &DatabaseInstance,
    target: &str,
    example: &Tuple,
    config: &BottomClauseConfig,
) -> Clause {
    let head = Atom::ground(target, example);
    let mut body: Vec<Atom> = Vec::new();
    let mut seen_literals: HashSet<(String, Tuple)> = HashSet::new();
    let mut known: BTreeSet<Value> = example.iter().cloned().collect();
    let mut frontier: Vec<Value> = known.iter().cloned().collect();

    for _ in 0..config.max_iterations {
        if frontier.is_empty() || body.len() >= config.max_body_literals {
            break;
        }
        let mut next_frontier: BTreeSet<Value> = BTreeSet::new();
        for constant in &frontier {
            let mut per_relation: std::collections::HashMap<&str, usize> = Default::default();
            for (relation, tuple) in db.tuples_containing(constant) {
                let count = per_relation.entry(relation).or_insert(0);
                if *count >= config.max_recall_per_relation {
                    continue;
                }
                if body.len() >= config.max_body_literals {
                    break;
                }
                let key = (relation.to_string(), tuple.clone());
                if seen_literals.contains(&key) {
                    continue;
                }
                *count += 1;
                seen_literals.insert(key);
                body.push(Atom::ground(relation, tuple));
                for v in tuple.iter() {
                    if !known.contains(v) {
                        next_frontier.insert(v.clone());
                    }
                }
            }
        }
        known.extend(next_frontier.iter().cloned());
        frontier = next_frontier.into_iter().collect();
    }
    Clause::new(head, body)
}

/// Builds the variablized bottom clause of `example`: the ground bottom
/// clause with each distinct constant consistently replaced by a fresh
/// variable.
pub fn variablized_bottom_clause(
    db: &DatabaseInstance,
    target: &str,
    example: &Tuple,
    config: &BottomClauseConfig,
) -> Clause {
    let ground = ground_bottom_clause(db, target, example, config);
    variablize_with(&ground, &config.constant_positions)
}

/// Variablizes a ground clause with a fresh, consistent constant→variable
/// mapping (the inverse step of saturation).
pub fn variablize(ground: &Clause) -> Clause {
    variablize_with(ground, &BTreeSet::new())
}

/// Variablizes a ground clause but keeps the values at the listed
/// `(relation, position)` pairs as constants.
pub fn variablize_with(ground: &Clause, constant_positions: &BTreeSet<(String, usize)>) -> Clause {
    let mut map = VariableMap::new();
    let lift = |atom: &Atom, map: &mut VariableMap, is_head: bool| Atom {
        relation: atom.relation.clone(),
        terms: atom
            .terms
            .iter()
            .enumerate()
            .map(|(pos, t)| match t {
                Term::Const(v) => {
                    let keep =
                        !is_head && constant_positions.contains(&(atom.relation.clone(), pos));
                    if keep {
                        t.clone()
                    } else {
                        Term::var(map.variable_for(v))
                    }
                }
                Term::Var(_) => t.clone(),
            })
            .collect(),
    };
    let head = lift(&ground.head, &mut map, true);
    let body = ground
        .body
        .iter()
        .map(|a| lift(a, &mut map, false))
        .collect();
    Clause::new(head, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::covers_example;
    use castor_relational::{RelationSymbol, Schema};

    /// A small UW-CSE-like instance under the Original schema.
    fn uwcse_db() -> DatabaseInstance {
        let mut schema = Schema::new("uwcse-original");
        schema
            .add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]))
            .add_relation(RelationSymbol::new("professor", &["prof"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("student", Tuple::from_strs(&["sara"])).unwrap();
        db.insert("inPhase", Tuple::from_strs(&["sara", "prelim"]))
            .unwrap();
        db.insert("yearsInProgram", Tuple::from_strs(&["sara", "3"]))
            .unwrap();
        db.insert("professor", Tuple::from_strs(&["pat"])).unwrap();
        db.insert("publication", Tuple::from_strs(&["paper1", "sara"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["paper1", "pat"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["paper1", "carol"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["paper2", "carol"]))
            .unwrap();
        db
    }

    #[test]
    fn ground_bottom_clause_contains_example_related_tuples() {
        let db = uwcse_db();
        let example = Tuple::from_strs(&["sara", "pat"]);
        let bottom =
            ground_bottom_clause(&db, "advisedBy", &example, &BottomClauseConfig::default());
        assert!(bottom.is_ground());
        let relations: BTreeSet<&str> = bottom.body.iter().map(|a| a.relation.as_str()).collect();
        assert!(relations.contains("student"));
        assert!(relations.contains("publication"));
        assert!(relations.contains("professor"));
    }

    #[test]
    fn depth_limit_restricts_reachable_literals() {
        let db = uwcse_db();
        let example = Tuple::from_strs(&["sara", "pat"]);
        let shallow = ground_bottom_clause(
            &db,
            "advisedBy",
            &example,
            &BottomClauseConfig {
                max_iterations: 1,
                ..Default::default()
            },
        );
        let deep = ground_bottom_clause(&db, "advisedBy", &example, &BottomClauseConfig::default());
        assert!(shallow.body_len() <= deep.body_len());
        // paper2 is only reachable through paper1→carol→paper2, which needs
        // three iterations; with one iteration it must be absent.
        assert!(!shallow
            .body
            .iter()
            .any(|a| a.constants().contains(&Value::str("paper2"))));
    }

    #[test]
    fn recall_limit_caps_tuples_per_relation() {
        let mut schema = Schema::new("s");
        schema.add_relation(RelationSymbol::new("likes", &["person", "thing"]));
        let mut db = DatabaseInstance::empty(&schema);
        for i in 0..50 {
            db.insert("likes", Tuple::new(vec![Value::str("ann"), Value::int(i)]))
                .unwrap();
        }
        let bottom = ground_bottom_clause(
            &db,
            "t",
            &Tuple::from_strs(&["ann"]),
            &BottomClauseConfig {
                max_recall_per_relation: 10,
                ..Default::default()
            },
        );
        assert!(bottom.body_len() <= 10 + 10); // first iteration capped at 10 per probe
    }

    #[test]
    fn variablized_bottom_clause_covers_its_own_example() {
        let db = uwcse_db();
        let example = Tuple::from_strs(&["sara", "pat"]);
        let bottom =
            variablized_bottom_clause(&db, "advisedBy", &example, &BottomClauseConfig::default());
        assert!(!bottom.is_ground());
        assert!(covers_example(&bottom, &db, &example));
    }

    #[test]
    fn variablize_maps_same_constant_to_same_variable() {
        let ground = Clause::new(
            Atom::ground("t", &Tuple::from_strs(&["a", "b"])),
            vec![
                Atom::ground("p", &Tuple::from_strs(&["a", "c"])),
                Atom::ground("q", &Tuple::from_strs(&["c", "b"])),
            ],
        );
        let lifted = variablize(&ground);
        assert!(!lifted.is_ground());
        // The variable standing for "c" must be shared between p and q.
        assert_eq!(lifted.body[0].terms[1], lifted.body[1].terms[0]);
        // Head variables are reused in the body.
        assert_eq!(lifted.head.terms[0], lifted.body[0].terms[0]);
        assert_eq!(lifted.distinct_variable_count(), 3);
    }

    #[test]
    fn empty_database_yields_bodyless_bottom_clause() {
        let schema = {
            let mut s = Schema::new("s");
            s.add_relation(RelationSymbol::new("p", &["x"]));
            s
        };
        let db = DatabaseInstance::empty(&schema);
        let bottom = ground_bottom_clause(
            &db,
            "t",
            &Tuple::from_strs(&["a"]),
            &BottomClauseConfig::default(),
        );
        assert_eq!(bottom.body_len(), 0);
    }
}
