//! ProGolem: bottom-up learning with asymmetric relative minimal
//! generalization (Muggleton et al. 2009; Section 6.4 of the paper).
//!
//! ProGolem's `LearnClause` builds the (ordered, variablized) bottom clause
//! of a seed example and then beam-searches over repeated applications of
//! the **armg** operator (Algorithm 3): to make the clause cover another
//! positive example, drop its *blocking atoms* — the first body literal at
//! which the prefix clause stops covering the example — and every literal
//! that loses head-connection as a result. Because armg drops whole
//! literals, and the granularity of literals depends on how the schema
//! splits attributes across relations, ProGolem is not schema independent
//! (Example 6.5, Theorem 6.6). Castor repairs exactly this step with
//! IND-awareness.

use crate::bottom_clause::{variablized_bottom_clause, BottomClauseConfig};
use crate::covering::{covering_loop, ClauseLearner};
use crate::params::LearnerParams;
use crate::scoring::{clause_coverage_engine, clauses_coverage_engine};
use crate::task::LearningTask;
use castor_engine::Engine;
use castor_logic::{minimize_clause, Clause, Definition};
use castor_relational::{DatabaseInstance, Tuple};

/// The ProGolem learner.
#[derive(Debug, Default)]
pub struct ProGolem;

impl ProGolem {
    /// Creates a ProGolem learner.
    pub fn new() -> Self {
        ProGolem
    }

    /// Learns a Horn definition for the task over `db`, building a private
    /// evaluation engine from `params`.
    pub fn learn(
        &mut self,
        db: &DatabaseInstance,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let engine = Engine::new(db, params.engine_config());
        self.learn_with_engine(&engine, task, params)
    }

    /// Learns a definition over a shared evaluation engine.
    pub fn learn_with_engine(
        &mut self,
        engine: &Engine,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let mut adapter = ProGolemClauseLearner {
            target: task.target.clone(),
        };
        covering_loop(&mut adapter, engine, task, params)
    }
}

/// The asymmetric relative minimal generalization of `clause` towards
/// example `e'` (Algorithm 3): repeatedly remove the blocking atom and any
/// literal left unconnected to the head, until the clause covers `e'`.
/// Returns `None` if even the empty-bodied clause fails to cover `e'`
/// (which can only happen if the head constants conflict). Prefix coverage
/// tests run through the engine, so the repeated prefixes of one armg call
/// — and of armg calls on overlapping clauses — hit the memo cache.
pub fn armg(clause: &Clause, engine: &Engine, example: &Tuple) -> Option<Clause> {
    let mut current = clause.clone();
    loop {
        if engine.covers(&current, example) {
            return Some(current);
        }
        let Some(blocking) = blocking_atom_index(&current, engine, example) else {
            // No blocking atom means even the empty prefix fails: give up.
            return None;
        };
        current.body.remove(blocking);
        current.remove_unconnected();
    }
}

/// The index of the blocking atom of `clause` with respect to `example`: the
/// least `i` such that the prefix clause `T ← L1, ..., L_{i+1}` does not
/// cover the example. Returns `None` when the head itself cannot match.
pub fn blocking_atom_index(clause: &Clause, engine: &Engine, example: &Tuple) -> Option<usize> {
    // Check the empty prefix first: if the head cannot bind to the example
    // there is no blocking atom to remove.
    let empty_prefix = Clause::fact(clause.head.clone());
    if !engine.covers(&empty_prefix, example) {
        return None;
    }
    for i in 0..clause.body.len() {
        let prefix = Clause::new(clause.head.clone(), clause.body[..=i].to_vec());
        if !engine.covers(&prefix, example) {
            return Some(i);
        }
    }
    None
}

struct ProGolemClauseLearner {
    target: String,
}

impl ClauseLearner for ProGolemClauseLearner {
    fn learn_clause(
        &mut self,
        engine: &Engine,
        uncovered: &[Tuple],
        negative: &[Tuple],
        params: &LearnerParams,
    ) -> Option<Clause> {
        let db = engine.snapshot();
        let db = db.as_ref();
        let seed = uncovered.first()?;
        let config = BottomClauseConfig {
            max_iterations: params.max_iterations,
            max_recall_per_relation: params.max_recall_per_relation,
            constant_positions: params.constant_positions.clone(),
            ..Default::default()
        };
        let bottom = variablized_bottom_clause(db, &self.target, seed, &config);
        if bottom.body.is_empty() {
            return None;
        }

        let score_of = |c: &Clause| clause_coverage_engine(engine, c, uncovered, negative).score();
        let mut beam: Vec<(Clause, i64)> = vec![(bottom.clone(), score_of(&bottom))];
        let mut best = beam[0].clone();

        loop {
            // Sample of positives to generalize towards (deterministic
            // prefix, like our Golem implementation). The round's armg
            // products are gathered first and scored as one batch — armg
            // drops literals, so generalizations of one beam round share
            // long body prefixes.
            let sample: Vec<&Tuple> = uncovered.iter().take(params.sample_size.max(1)).collect();
            let mut generalizations: Vec<Clause> = Vec::new();
            for (clause, _) in &beam {
                for example in &sample {
                    if engine.covers(clause, example) {
                        continue;
                    }
                    let Some(generalized) = armg(clause, engine, example) else {
                        continue;
                    };
                    if generalized.body.is_empty() {
                        continue;
                    }
                    generalizations.push(generalized);
                }
            }
            let coverages = clauses_coverage_engine(engine, &generalizations, uncovered, negative);
            let mut candidates: Vec<(Clause, i64)> = generalizations
                .into_iter()
                .zip(coverages)
                .map(|(generalized, cov)| (generalized, cov.score()))
                .filter(|&(_, score)| score > best.1)
                .collect();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by_key(|(_, score)| std::cmp::Reverse(*score));
            candidates.truncate(params.beam_width.max(1));
            if candidates[0].1 > best.1 {
                best = candidates[0].clone();
            }
            beam = candidates;
        }

        let cov = clause_coverage_engine(engine, &best.0, uncovered, negative);
        if cov.positive == 0 {
            return None;
        }
        Some(minimize_clause(&best.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::{covers_example, Atom};
    use castor_relational::{RelationSymbol, Schema};

    fn engine_for(db: &DatabaseInstance) -> Engine {
        // Exercise the zero-copy construction path (shared instance).
        Engine::from_arc(
            std::sync::Arc::new(db.clone()),
            LearnerParams::default().engine_config(),
        )
    }

    /// Example 6.5: hardWorking over the Original UW-CSE schema.
    fn uwcse_original_db() -> DatabaseInstance {
        let mut schema = Schema::new("uwcse-original");
        schema
            .add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (s, phase, years) in [
            ("ann", "prelim", "3"),
            ("bob", "prelim", "3"),
            ("carl", "post", "7"),
        ] {
            db.insert("student", Tuple::from_strs(&[s])).unwrap();
            db.insert("inPhase", Tuple::from_strs(&[s, phase])).unwrap();
            db.insert("yearsInProgram", Tuple::from_strs(&[s, years]))
                .unwrap();
        }
        db
    }

    #[test]
    fn armg_drops_blocking_atom_and_keeps_rest() {
        let db = uwcse_original_db();
        // hardWorking(x) ← student(x), inPhase(x,prelim), yearsInProgram(x,3)
        let clause = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::new(
                    "inPhase",
                    vec![
                        castor_logic::Term::var("x"),
                        castor_logic::Term::constant("prelim"),
                    ],
                ),
                Atom::new(
                    "yearsInProgram",
                    vec![
                        castor_logic::Term::var("x"),
                        castor_logic::Term::constant("3"),
                    ],
                ),
            ],
        );
        // carl is in phase post with 7 years: both constant literals block.
        let engine = engine_for(&db);
        let generalized = armg(&clause, &engine, &Tuple::from_strs(&["carl"])).unwrap();
        assert!(covers_example(
            &generalized,
            &db,
            &Tuple::from_strs(&["carl"])
        ));
        // student(x) survives — the schema-dependence example relies on this.
        assert!(generalized.body.iter().any(|a| a.relation == "student"));
        assert!(generalized
            .body
            .iter()
            .all(|a| a.relation != "inPhase" || a.constants().is_empty()));
    }

    #[test]
    fn blocking_atom_is_first_failing_prefix() {
        let db = uwcse_original_db();
        let clause = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::new(
                    "inPhase",
                    vec![
                        castor_logic::Term::var("x"),
                        castor_logic::Term::constant("post"),
                    ],
                ),
            ],
        );
        let engine = engine_for(&db);
        // For ann, student(x) holds but inPhase(x,post) fails → index 1.
        assert_eq!(
            blocking_atom_index(&clause, &engine, &Tuple::from_strs(&["ann"])),
            Some(1)
        );
        // For carl, both hold → no blocking atom.
        assert_eq!(
            blocking_atom_index(&clause, &engine, &Tuple::from_strs(&["carl"])),
            None
        );
    }

    #[test]
    fn armg_returns_original_clause_when_example_already_covered() {
        let db = uwcse_original_db();
        let clause = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![Atom::vars("student", &["x"])],
        );
        let engine = engine_for(&db);
        let out = armg(&clause, &engine, &Tuple::from_strs(&["ann"])).unwrap();
        assert_eq!(out, clause);
    }

    #[test]
    fn progolem_learns_on_small_task() {
        let db = uwcse_original_db();
        let task = LearningTask::new(
            "hardWorking",
            1,
            vec![Tuple::from_strs(&["ann"]), Tuple::from_strs(&["bob"])],
            vec![Tuple::from_strs(&["carl"])],
        );
        let params = LearnerParams {
            sample_size: 2,
            beam_width: 3,
            min_pos: 2,
            constant_positions: [
                ("inPhase".to_string(), 1),
                ("yearsInProgram".to_string(), 1),
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        let def = ProGolem::new().learn(&db, &task, &params);
        assert!(!def.is_empty());
        for pos in &task.positive {
            assert!(def.clauses.iter().any(|c| covers_example(c, &db, pos)));
        }
        for neg in &task.negative {
            assert!(def.clauses.iter().all(|c| !covers_example(c, &db, neg)));
        }
    }
}
