//! Query-based learning (Section 8 of the paper).
//!
//! Query-based algorithms learn exact definitions by interrogating an
//! oracle instead of consuming a fixed sample: **equivalence queries** (EQ)
//! present a hypothesis and receive either "correct" or a counterexample,
//! and **membership queries** (MQ) ask whether a particular example is
//! positive. The paper analyzes the A2 algorithm (Khardon 1999), implemented
//! in the LogAn-H system, and shows that (de)composition changes its query
//! complexity: Theorem 8.1 exhibits schemas where the lower bound under one
//! schema exceeds the upper bound under the other, and Figure 3 measures the
//! effect empirically — MQ counts grow with the number of variables and
//! with how decomposed the schema is, while EQ counts stay flat.
//!
//! [`Oracle`] answers both query types automatically from a known target
//! definition (the "automatic user mode" of LogAn-H used in the paper's
//! experiments); [`LogAnH`] is the A2-style learner that drives it and
//! reports [`QueryStats`].

mod logan;
mod oracle;

pub use logan::{LogAnH, QueryStats};
pub use oracle::{EquivalenceAnswer, Oracle};
