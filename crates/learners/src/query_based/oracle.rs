//! The automatic oracle used by the query-based learning experiments.
//!
//! The oracle knows the target Horn definition. It answers membership
//! queries by evaluating the target over the canonical database of the
//! queried clause body, and answers equivalence queries by instantiating
//! each target clause with fresh constants and checking whether the
//! hypothesis derives the corresponding head (returning the instantiation
//! as a counterexample when it does not). This mirrors LogAn-H's
//! "interactive algorithm with automatic user mode" (Section 9.4).

use castor_logic::{covers_example, Atom, Clause, Definition, Term};
use castor_relational::{DatabaseInstance, RelationSymbol, Schema, Value};
use std::collections::BTreeMap;

/// The oracle's answer to an equivalence query.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceAnswer {
    /// The hypothesis is (extensionally) equivalent to the target.
    Correct,
    /// A ground counterexample: a saturation (ground head + ground body
    /// facts) that the target derives but the hypothesis does not.
    CounterExample(Clause),
}

/// An oracle that knows the target definition over a given schema.
#[derive(Debug, Clone)]
pub struct Oracle {
    schema: Schema,
    target: Definition,
    /// Counter used to mint fresh constants for clause instantiations.
    instantiation_counter: u64,
}

impl Oracle {
    /// Creates an oracle for the target definition over `schema`.
    pub fn new(schema: Schema, target: Definition) -> Self {
        Oracle {
            schema,
            target,
            instantiation_counter: 0,
        }
    }

    /// The target definition (used by experiments to report its size).
    pub fn target(&self) -> &Definition {
        &self.target
    }

    /// Instantiates a clause by mapping every variable to a fresh constant,
    /// returning the ground clause.
    pub fn instantiate(&mut self, clause: &Clause) -> Clause {
        self.instantiation_counter += 1;
        let tag = self.instantiation_counter;
        let mut mapping: BTreeMap<String, Value> = BTreeMap::new();
        let ground_atom = |atom: &Atom, mapping: &mut BTreeMap<String, Value>| Atom {
            relation: atom.relation.clone(),
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => t.clone(),
                    Term::Var(name) => {
                        let value = mapping
                            .entry(name.clone())
                            .or_insert_with(|| Value::str(format!("c{tag}_{name}")))
                            .clone();
                        Term::Const(value)
                    }
                })
                .collect(),
        };
        let head = ground_atom(&clause.head, &mut mapping);
        let body = clause
            .body
            .iter()
            .map(|a| ground_atom(a, &mut mapping))
            .collect();
        Clause::new(head, body)
    }

    /// Builds the canonical database instance of a ground clause body: one
    /// tuple per body literal. Relations not declared in the schema are
    /// added on the fly (the random target heads of Figure 3 are new
    /// relations).
    pub fn canonical_database(&self, ground: &Clause) -> DatabaseInstance {
        let mut schema = self.schema.clone();
        for atom in &ground.body {
            if !schema.contains_relation(&atom.relation) {
                let attrs: Vec<String> = (0..atom.arity()).map(|i| format!("a{i}")).collect();
                schema.add_relation(RelationSymbol::new(atom.relation.clone(), &attrs));
            }
        }
        let mut db = DatabaseInstance::empty(&schema);
        for atom in &ground.body {
            let tuple = atom
                .to_tuple()
                .expect("canonical database needs ground atoms");
            db.insert(&atom.relation, tuple)
                .expect("arity checked above");
        }
        db
    }

    /// Membership query: does the target derive `head_example` from the
    /// ground facts in `body`? (`body` is the body of a ground clause.)
    pub fn membership(&self, ground: &Clause) -> bool {
        let db = self.canonical_database(ground);
        let Some(example) = ground.head.to_tuple() else {
            return false;
        };
        self.target
            .clauses
            .iter()
            .any(|c| covers_example(c, &db, &example))
    }

    /// Equivalence query: checks whether `hypothesis` derives the head of a
    /// fresh instantiation of every target clause. Returns the first failing
    /// instantiation as a counterexample.
    pub fn equivalence(&mut self, hypothesis: &Definition) -> EquivalenceAnswer {
        let clauses = self.target.clauses.clone();
        for clause in &clauses {
            let ground = self.instantiate(clause);
            let db = self.canonical_database(&ground);
            let example = ground.head.to_tuple().expect("instantiated head is ground");
            let derived = hypothesis
                .clauses
                .iter()
                .any(|c| covers_example(c, &db, &example));
            if !derived {
                return EquivalenceAnswer::CounterExample(ground);
            }
        }
        EquivalenceAnswer::Correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Tuple};

    fn schema() -> Schema {
        let mut s = Schema::new("s");
        s.add_relation(RelationSymbol::new("p", &["a", "b"]));
        s.add_relation(RelationSymbol::new("q", &["a"]));
        s
    }

    fn target() -> Definition {
        Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::vars("p", &["x", "y"]), Atom::vars("q", &["y"])],
            )],
        )
    }

    #[test]
    fn instantiation_produces_ground_clause_with_shared_constants() {
        let mut oracle = Oracle::new(schema(), target());
        let ground = oracle.instantiate(&target().clauses[0]);
        assert!(ground.is_ground());
        // The y constant is shared between the p and q literals.
        assert_eq!(ground.body[0].terms[1], ground.body[1].terms[0]);
        // Two instantiations use different constants.
        let ground2 = oracle.instantiate(&target().clauses[0]);
        assert_ne!(ground.head, ground2.head);
    }

    #[test]
    fn membership_follows_target_semantics() {
        let oracle = Oracle::new(schema(), target());
        let mut oracle_mut = oracle.clone();
        let ground = oracle_mut.instantiate(&target().clauses[0]);
        assert!(oracle.membership(&ground));
        // Dropping the q literal makes the body insufficient.
        let mut weaker = ground.clone();
        weaker.body.retain(|a| a.relation != "q");
        assert!(!oracle.membership(&weaker));
    }

    #[test]
    fn equivalence_accepts_the_target_itself() {
        let mut oracle = Oracle::new(schema(), target());
        assert_eq!(oracle.equivalence(&target()), EquivalenceAnswer::Correct);
    }

    #[test]
    fn equivalence_returns_counterexample_for_empty_hypothesis() {
        let mut oracle = Oracle::new(schema(), target());
        let empty = Definition::empty("t");
        match oracle.equivalence(&empty) {
            EquivalenceAnswer::CounterExample(ground) => {
                assert!(ground.is_ground());
                assert_eq!(ground.head.relation, "t");
            }
            EquivalenceAnswer::Correct => panic!("empty hypothesis cannot be correct"),
        }
    }

    #[test]
    fn canonical_database_adds_unknown_relations() {
        let oracle = Oracle::new(schema(), target());
        let ground = Clause::new(
            Atom::ground("t", &Tuple::from_strs(&["a"])),
            vec![Atom::ground(
                "brand_new_rel",
                &Tuple::from_strs(&["a", "b"]),
            )],
        );
        let db = oracle.canonical_database(&ground);
        assert_eq!(db.relation("brand_new_rel").unwrap().len(), 1);
    }
}
