//! The A2-style query-based learner (LogAn-H).
//!
//! The learner maintains a sequence `S` of ground counterexamples. Each
//! round it variablizes `S` into a hypothesis and asks an equivalence query;
//! on a counterexample it (1) *minimizes* the counterexample by dropping
//! body literals whose removal keeps the example positive — one membership
//! query per literal — and (2) tries to *pair* it with an existing element
//! of `S` through the lgg, accepting the merge only if a membership query
//! confirms the merged clause is still implied by the target. This is the
//! structure of Khardon's A2 algorithm as implemented in LogAn-H; the MQ
//! count therefore scales with counterexample size (literal count), which is
//! exactly what makes decomposed schemas — whose counterexamples have more,
//! smaller literals — cost more queries (Figure 3).

use super::oracle::{EquivalenceAnswer, Oracle};
use crate::bottom_clause::variablize;
use castor_logic::{lgg_clauses, minimize_clause, Clause, Definition};

/// Query counts reported by a learning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Number of equivalence queries asked.
    pub equivalence_queries: usize,
    /// Number of membership queries asked.
    pub membership_queries: usize,
    /// Number of rounds (counterexamples processed).
    pub rounds: usize,
}

/// The A2-style learner.
#[derive(Debug, Clone)]
pub struct LogAnH {
    /// Safety bound on the number of equivalence queries, so malformed
    /// targets can never loop forever.
    pub max_rounds: usize,
}

impl Default for LogAnH {
    fn default() -> Self {
        LogAnH { max_rounds: 200 }
    }
}

impl LogAnH {
    /// Creates a learner with the default round bound.
    pub fn new() -> Self {
        LogAnH::default()
    }

    /// Learns the target definition known to `oracle`, returning the learned
    /// hypothesis and the query counts.
    pub fn learn(&self, oracle: &mut Oracle, target_name: &str) -> (Definition, QueryStats) {
        let mut stats = QueryStats::default();
        let mut sequence: Vec<Clause> = Vec::new();

        for _ in 0..self.max_rounds {
            let hypothesis = self.hypothesis_from(&sequence, target_name);
            stats.equivalence_queries += 1;
            match oracle.equivalence(&hypothesis) {
                EquivalenceAnswer::Correct => return (hypothesis, stats),
                EquivalenceAnswer::CounterExample(ground) => {
                    stats.rounds += 1;
                    let minimized = self.minimize_counterexample(oracle, &ground, &mut stats);
                    self.incorporate(oracle, minimized, &mut sequence, &mut stats);
                }
            }
        }
        (self.hypothesis_from(&sequence, target_name), stats)
    }

    /// Drops body literals whose removal keeps the counterexample positive
    /// (one membership query per literal).
    fn minimize_counterexample(
        &self,
        oracle: &Oracle,
        ground: &Clause,
        stats: &mut QueryStats,
    ) -> Clause {
        let mut current = ground.clone();
        let mut i = 0;
        while i < current.body.len() {
            let mut candidate = current.clone();
            candidate.body.remove(i);
            stats.membership_queries += 1;
            if oracle.membership(&candidate) {
                current = candidate;
            } else {
                i += 1;
            }
        }
        current
    }

    /// Tries to merge the minimized counterexample into an existing sequence
    /// element via the lgg; otherwise appends it.
    fn incorporate(
        &self,
        oracle: &Oracle,
        example: Clause,
        sequence: &mut Vec<Clause>,
        stats: &mut QueryStats,
    ) {
        for slot in sequence.iter_mut() {
            let Some(merged) = lgg_clauses(slot, &example) else {
                continue;
            };
            let merged = minimize_clause(&merged);
            // Validate the merge with a membership query on a fresh
            // instantiation of the merged clause.
            let mut probe_oracle = oracle.clone();
            let ground_probe = probe_oracle.instantiate(&merged);
            stats.membership_queries += 1;
            if oracle.membership(&ground_probe) {
                *slot = merged;
                return;
            }
        }
        sequence.push(example);
    }

    /// Builds the hypothesis from the sequence: each element is variablized
    /// (counterexamples are ground; merged elements may already contain
    /// variables, which `variablize` leaves untouched).
    fn hypothesis_from(&self, sequence: &[Clause], target_name: &str) -> Definition {
        let mut def = Definition::empty(target_name);
        for clause in sequence {
            let lifted = variablize(clause);
            if lifted.head.relation == target_name {
                def.push(lifted);
            }
        }
        def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new("s");
        s.add_relation(RelationSymbol::new("p", &["a", "b"]));
        s.add_relation(RelationSymbol::new("q", &["a"]));
        s.add_relation(RelationSymbol::new("r", &["a", "b"]));
        s
    }

    fn single_clause_target() -> Definition {
        Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::vars("p", &["x", "y"]), Atom::vars("q", &["y"])],
            )],
        )
    }

    fn two_clause_target() -> Definition {
        Definition::new(
            "t",
            vec![
                Clause::new(
                    Atom::vars("t", &["x"]),
                    vec![Atom::vars("p", &["x", "y"]), Atom::vars("q", &["y"])],
                ),
                Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("r", &["x", "z"])]),
            ],
        )
    }

    #[test]
    fn learns_single_clause_target_exactly() {
        let target = single_clause_target();
        let mut oracle = Oracle::new(schema(), target.clone());
        let (hypothesis, stats) = LogAnH::new().learn(&mut oracle, "t");
        assert_eq!(oracle.equivalence(&hypothesis), EquivalenceAnswer::Correct);
        assert!(stats.equivalence_queries >= 2); // one failure + one success
        assert!(stats.membership_queries >= 2); // one per body literal at least
    }

    #[test]
    fn learns_multi_clause_target() {
        let target = two_clause_target();
        let mut oracle = Oracle::new(schema(), target.clone());
        let (hypothesis, stats) = LogAnH::new().learn(&mut oracle, "t");
        assert_eq!(oracle.equivalence(&hypothesis), EquivalenceAnswer::Correct);
        assert!(hypothesis.len() >= 2);
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn membership_queries_grow_with_clause_size() {
        // A target whose single clause has more body literals forces more
        // MQs during counterexample minimization.
        let small = single_clause_target();
        let large = Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![
                    Atom::vars("p", &["x", "y"]),
                    Atom::vars("q", &["y"]),
                    Atom::vars("r", &["y", "z"]),
                    Atom::vars("p", &["z", "w"]),
                    Atom::vars("q", &["w"]),
                ],
            )],
        );
        let mut o1 = Oracle::new(schema(), small);
        let mut o2 = Oracle::new(schema(), large);
        let (_, s1) = LogAnH::new().learn(&mut o1, "t");
        let (_, s2) = LogAnH::new().learn(&mut o2, "t");
        assert!(s2.membership_queries > s1.membership_queries);
        // EQ counts stay comparable (both single-clause targets).
        assert!(s2.equivalence_queries <= s1.equivalence_queries + 2);
    }

    #[test]
    fn round_bound_prevents_infinite_loops() {
        let target = single_clause_target();
        let mut oracle = Oracle::new(schema(), target);
        let learner = LogAnH { max_rounds: 1 };
        let (_, stats) = learner.learn(&mut oracle, "t");
        assert!(stats.equivalence_queries <= 2);
    }
}
