//! Progol-style learning: bottom-clause-bounded top-down beam search.
//!
//! Progol (Muggleton 1995) — and Aleph in its default configuration, which
//! the paper calls *Aleph-Progol* — constrains the top-down search with the
//! bottom clause of a seed example: candidate clauses only contain literals
//! drawn from `⊥_e`, are at most `clauselength` literals long, and are
//! scored by coverage. The `clauselength` bound makes Progol's hypothesis
//! space schema dependent for exactly the reason given in Theorem 5.1.

use crate::bottom_clause::{variablized_bottom_clause, BottomClauseConfig};
use crate::covering::{covering_loop, ClauseLearner};
use crate::params::LearnerParams;
use crate::scoring::clauses_coverage_engine;
use crate::task::LearningTask;
use castor_engine::Engine;
use castor_logic::{minimize_clause, Atom, Clause, Definition};
use castor_relational::{DatabaseInstance, Tuple};
use std::collections::BTreeSet;

/// The Progol/Aleph-Progol learner.
#[derive(Debug, Default)]
pub struct Progol;

impl Progol {
    /// Creates a Progol learner.
    pub fn new() -> Self {
        Progol
    }

    /// Learns a Horn definition for the task over `db`, building a private
    /// evaluation engine from `params`.
    pub fn learn(
        &mut self,
        db: &DatabaseInstance,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let engine = Engine::new(db, params.engine_config());
        self.learn_with_engine(&engine, task, params)
    }

    /// Learns a definition over a shared evaluation engine.
    pub fn learn_with_engine(
        &mut self,
        engine: &Engine,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let mut adapter = ProgolClauseLearner {
            target: task.target.clone(),
        };
        covering_loop(&mut adapter, engine, task, params)
    }
}

struct ProgolClauseLearner {
    target: String,
}

impl ClauseLearner for ProgolClauseLearner {
    fn learn_clause(
        &mut self,
        engine: &Engine,
        uncovered: &[Tuple],
        negative: &[Tuple],
        params: &LearnerParams,
    ) -> Option<Clause> {
        let db = engine.snapshot();
        let db = db.as_ref();
        let seed = uncovered.first()?;
        let config = BottomClauseConfig {
            max_iterations: params.max_iterations,
            max_recall_per_relation: params.max_recall_per_relation,
            constant_positions: params.constant_positions.clone(),
            ..Default::default()
        };
        let bottom = variablized_bottom_clause(db, &self.target, seed, &config);
        let bottom = minimize_clause(&bottom);
        if bottom.body.is_empty() {
            return None;
        }

        // Beam search over subsets of the bottom clause's body, growing one
        // literal at a time, keeping clauses head-connected and at most
        // `clauselength` body literals long. Each level's candidates are
        // siblings sharing their parent's body, so the whole level is scored
        // in one batched engine call (shared prefix join).
        let root = Clause::fact(bottom.head.clone());
        let mut beam: Vec<(Clause, i64)> = vec![(root, i64::MIN)];
        let mut best: Option<(Clause, i64, usize)> = None;

        for _ in 0..params.clause_length {
            let mut extensions: Vec<Clause> = Vec::new();
            for (clause, _) in &beam {
                for literal in admissible_extensions(clause, &bottom) {
                    let mut extended = clause.clone();
                    extended.push(literal);
                    extensions.push(extended);
                }
            }
            if extensions.is_empty() {
                break;
            }
            let coverages = clauses_coverage_engine(engine, &extensions, uncovered, negative);
            let mut next: Vec<(Clause, i64)> = Vec::new();
            for (extended, cov) in extensions.into_iter().zip(coverages) {
                if cov.positive == 0 {
                    continue;
                }
                let score = cov.score();
                if params.meets_minimum(cov.positive, cov.negative) {
                    let replace = match &best {
                        None => true,
                        Some((_, best_score, best_len)) => {
                            score > *best_score
                                || (score == *best_score && extended.body_len() < *best_len)
                        }
                    };
                    if replace {
                        best = Some((extended.clone(), score, extended.body_len()));
                    }
                }
                next.push((extended, score));
            }
            if next.is_empty() {
                break;
            }
            next.sort_by_key(|(_, score)| std::cmp::Reverse(*score));
            next.truncate(params.beam_width.max(1));
            beam = next;
        }

        best.map(|(clause, _, _)| minimize_clause(&clause))
    }
}

/// Literals of the bottom clause that can extend `clause`: not already
/// present and sharing a variable with the clause (head included), so the
/// result stays head-connected.
fn admissible_extensions(clause: &Clause, bottom: &Clause) -> Vec<Atom> {
    let present: BTreeSet<&Atom> = clause.body.iter().collect();
    let mut vars = clause.head.variables();
    for a in &clause.body {
        vars.extend(a.variables());
    }
    bottom
        .body
        .iter()
        .filter(|a| !present.contains(a))
        .filter(|a| a.shares_variable_with(&vars))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("professor", &["p"]))
            .add_relation(RelationSymbol::new("student", &["s"]))
            .add_relation(RelationSymbol::new("publication", &["title", "person"]));
        let mut db = DatabaseInstance::empty(&schema);
        for p in ["prof1", "prof2"] {
            db.insert("professor", Tuple::from_strs(&[p])).unwrap();
        }
        for s in ["stud1", "stud2", "stud3"] {
            db.insert("student", Tuple::from_strs(&[s])).unwrap();
        }
        for (t, person) in [
            ("a", "prof1"),
            ("a", "stud1"),
            ("b", "prof2"),
            ("b", "stud2"),
            ("c", "stud3"),
            ("c", "prof1"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, person]))
                .unwrap();
        }
        db
    }

    fn task() -> LearningTask {
        LearningTask::new(
            "advisedBy",
            2,
            vec![
                Tuple::from_strs(&["stud1", "prof1"]),
                Tuple::from_strs(&["stud2", "prof2"]),
                Tuple::from_strs(&["stud3", "prof1"]),
            ],
            vec![
                Tuple::from_strs(&["stud1", "prof2"]),
                Tuple::from_strs(&["stud2", "prof1"]),
            ],
        )
    }

    #[test]
    fn progol_learns_covering_definition() {
        let db = db();
        let params = LearnerParams {
            clause_length: 4,
            beam_width: 5,
            min_pos: 2,
            ..Default::default()
        };
        let def = Progol::new().learn(&db, &task(), &params);
        assert!(!def.is_empty());
        let t = task();
        let covered = t
            .positive
            .iter()
            .filter(|e| {
                def.clauses
                    .iter()
                    .any(|c| castor_logic::covers_example(c, &db, e))
            })
            .count();
        assert!(covered >= 2);
        // No clause may cover both negatives (precision threshold 0.67).
        for c in &def.clauses {
            let cov = crate::scoring::clause_coverage(&c.clone(), &db, &t.positive, &t.negative);
            assert!(cov.precision() >= 0.66);
        }
    }

    #[test]
    fn clause_length_one_cannot_express_join() {
        let db = db();
        let params = LearnerParams {
            clause_length: 1,
            min_pos: 2,
            ..Default::default()
        };
        let def = Progol::new().learn(&db, &task(), &params);
        for c in &def.clauses {
            assert!(c.body_len() <= 1);
        }
    }

    #[test]
    fn admissible_extensions_stay_head_connected() {
        let bottom = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("p", &["x", "y"]),
                Atom::vars("q", &["y", "z"]),
                Atom::vars("r", &["w"]), // never connected
            ],
        );
        let root = Clause::fact(Atom::vars("t", &["x"]));
        let first = admissible_extensions(&root, &bottom);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].relation, "p");
        let mut extended = root.clone();
        extended.push(first[0].clone());
        let second = admissible_extensions(&extended, &bottom);
        assert!(second.iter().any(|a| a.relation == "q"));
        assert!(!second.iter().any(|a| a.relation == "r"));
    }

    #[test]
    fn empty_database_learns_nothing() {
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("p", &["x"]));
        let db = DatabaseInstance::empty(&schema);
        let task = LearningTask::new("t", 1, vec![Tuple::from_strs(&["a"])], vec![]);
        let def = Progol::new().learn(&db, &task, &LearnerParams::default());
        assert!(def.is_empty());
    }
}
