//! # castor-learners
//!
//! Baseline relational-learning algorithms analyzed by *Schema Independent
//! Relational Learning* (Picado et al., 2017), implemented from scratch:
//!
//! * **Top-down** learners (Section 5): [`foil::Foil`] — greedy
//!   general-to-specific search à la FOIL/Aleph-FOIL — and
//!   [`progol::Progol`] — bottom-clause-bounded top-down beam search à la
//!   Progol/Aleph-Progol. Both restrict the hypothesis space with a
//!   `clauselength` parameter, which is exactly what makes them schema
//!   dependent (Theorem 5.1).
//! * **Bottom-up** learners (Section 6): [`golem::Golem`] (rlgg-based) and
//!   [`progolem::ProGolem`] (ARMG-based), together with the standard
//!   depth-bounded bottom-clause construction of Section 6.1.
//! * **Query-based** learning (Section 8): [`query_based::LogAnH`], an
//!   A2-style learner that interacts with an automatic
//!   [`query_based::Oracle`] through equivalence and membership queries and
//!   reports its query counts (Figure 3).
//!
//! The paper's own algorithm, Castor, lives in the `castor-core` crate and
//! reuses the shared infrastructure defined here ([`task`], [`params`],
//! [`scoring`], [`covering`], [`bottom_clause`]).

pub mod bottom_clause;
pub mod covering;
pub mod foil;
pub mod golem;
pub mod params;
pub mod progol;
pub mod progolem;
pub mod query_based;
pub mod scoring;
pub mod task;

pub use bottom_clause::{ground_bottom_clause, variablized_bottom_clause, BottomClauseConfig};
pub use covering::{covering_loop, ClauseLearner};
pub use foil::Foil;
pub use golem::Golem;
pub use params::LearnerParams;
pub use progol::Progol;
pub use progolem::ProGolem;
pub use query_based::{LogAnH, Oracle, QueryStats};
pub use scoring::{
    clause_coverage, clause_coverage_engine, clause_precision, covered_examples_engine,
    ClauseCoverage,
};
pub use task::LearningTask;
