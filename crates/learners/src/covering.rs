//! The generic covering loop (Algorithm 1 of the paper).
//!
//! Every sample-based learner in the paper — top-down or bottom-up —
//! follows the same outer loop: repeatedly learn one clause, keep it if it
//! meets the minimum condition, remove the positive examples it covers, and
//! continue until no positive examples remain (or no acceptable clause can
//! be found). Only the `LearnClause` procedure differs between algorithms.
//!
//! All coverage tests go through a shared [`Engine`], so clauses re-scored
//! across iterations hit the memoized coverage cache and large example sets
//! are evaluated on the worker pool. Re-scoring routes through the engine's
//! batched scoring path (`Engine::coverage_counts_batch` via
//! [`clause_coverage_engine`]), the same code path the beam learners submit
//! whole candidate levels to.

use crate::params::LearnerParams;
use crate::scoring::{clause_coverage_engine, covered_examples_engine};
use crate::task::LearningTask;
use castor_engine::{Engine, LearnProgress};
use castor_logic::{Clause, Definition};
use castor_relational::Tuple;

/// The per-algorithm `LearnClause` procedure plugged into the covering loop.
pub trait ClauseLearner {
    /// Learns one clause from the engine's database, the remaining
    /// (uncovered) positive examples, and the negative examples. Returning
    /// `None` stops the covering loop early (no acceptable clause could be
    /// built). Coverage tests inside the procedure should go through
    /// `engine` so they share its cache and statistics.
    fn learn_clause(
        &mut self,
        engine: &Engine,
        uncovered: &[Tuple],
        negative: &[Tuple],
        params: &LearnerParams,
    ) -> Option<Clause>;
}

/// Runs the covering loop of Algorithm 1 with the given `LearnClause`
/// procedure, producing a Horn definition for the task's target.
pub fn covering_loop<L: ClauseLearner>(
    learner: &mut L,
    engine: &Engine,
    task: &LearningTask,
    params: &LearnerParams,
) -> Definition {
    let mut definition = Definition::empty(task.target.clone());
    let mut uncovered: Vec<Tuple> = task.positive.clone();
    // Guard against learners that keep returning clauses covering nothing:
    // the loop must strictly shrink `uncovered` to continue.
    while !uncovered.is_empty() {
        let Some(clause) = learner.learn_clause(engine, &uncovered, &task.negative, params) else {
            break;
        };
        let coverage = clause_coverage_engine(engine, &clause, &uncovered, &task.negative);
        if !params.meets_minimum(coverage.positive, coverage.negative) {
            break;
        }
        let newly_covered: Vec<Tuple> = covered_examples_engine(engine, &clause, &uncovered)
            .into_iter()
            .cloned()
            .collect();
        if newly_covered.is_empty() {
            break;
        }
        uncovered.retain(|e| !newly_covered.contains(e));
        engine.emit_progress(&LearnProgress {
            round: definition.len(),
            clause: clause.clone(),
            covered_positive: coverage.positive,
            covered_negative: coverage.negative,
            uncovered_remaining: uncovered.len(),
        });
        definition.push(clause);
    }
    definition
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_engine::EngineConfig;
    use castor_logic::Atom;
    use castor_relational::{DatabaseInstance, RelationSymbol, Schema};

    /// A stub learner that returns a fixed sequence of clauses.
    struct Scripted {
        clauses: Vec<Option<Clause>>,
        calls: usize,
    }

    impl ClauseLearner for Scripted {
        fn learn_clause(
            &mut self,
            _engine: &Engine,
            _uncovered: &[Tuple],
            _negative: &[Tuple],
            _params: &LearnerParams,
        ) -> Option<Clause> {
            let i = self.calls;
            self.calls += 1;
            self.clauses.get(i).cloned().flatten()
        }
    }

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("p", &["x"]));
        schema.add_relation(RelationSymbol::new("q", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        for v in ["a", "b"] {
            db.insert("p", Tuple::from_strs(&[v])).unwrap();
        }
        for v in ["c", "d"] {
            db.insert("q", Tuple::from_strs(&[v])).unwrap();
        }
        db
    }

    fn engine(db: &DatabaseInstance) -> Engine {
        Engine::new(db, EngineConfig::default())
    }

    fn task() -> LearningTask {
        LearningTask::new(
            "t",
            1,
            vec![
                Tuple::from_strs(&["a"]),
                Tuple::from_strs(&["b"]),
                Tuple::from_strs(&["c"]),
                Tuple::from_strs(&["d"]),
            ],
            vec![Tuple::from_strs(&["z"])],
        )
    }

    #[test]
    fn covering_loop_accumulates_clauses_until_all_covered() {
        let p_clause = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["x"])]);
        let q_clause = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("q", &["x"])]);
        let mut learner = Scripted {
            clauses: vec![Some(p_clause), Some(q_clause)],
            calls: 0,
        };
        let db = db();
        let def = covering_loop(
            &mut learner,
            &engine(&db),
            &task(),
            &LearnerParams::default(),
        );
        assert_eq!(def.len(), 2);
    }

    #[test]
    fn loop_stops_when_learner_returns_none() {
        let p_clause = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("p", &["x"])]);
        let mut learner = Scripted {
            clauses: vec![Some(p_clause), None],
            calls: 0,
        };
        let db = db();
        let def = covering_loop(
            &mut learner,
            &engine(&db),
            &task(),
            &LearnerParams::default(),
        );
        assert_eq!(def.len(), 1); // c and d remain uncovered
    }

    #[test]
    fn clause_below_minimum_condition_is_rejected() {
        // A clause covering only one positive fails minpos = 2.
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("only_a", &["x"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("only_a", Tuple::from_strs(&["a"])).unwrap();
        let weak = Clause::new(Atom::vars("t", &["x"]), vec![Atom::vars("only_a", &["x"])]);
        let mut learner = Scripted {
            clauses: vec![Some(weak)],
            calls: 0,
        };
        let task = LearningTask::new(
            "t",
            1,
            vec![Tuple::from_strs(&["a"]), Tuple::from_strs(&["b"])],
            vec![],
        );
        let def = covering_loop(&mut learner, &engine(&db), &task, &LearnerParams::default());
        assert!(def.is_empty());
    }

    #[test]
    fn clause_covering_nothing_terminates_loop() {
        let mut schema = Schema::new("t");
        schema.add_relation(RelationSymbol::new("empty_rel", &["x"]));
        let db = DatabaseInstance::empty(&schema);
        let useless = Clause::new(
            Atom::vars("t", &["x"]),
            vec![Atom::vars("empty_rel", &["x"])],
        );
        let mut learner = Scripted {
            clauses: vec![Some(useless.clone()), Some(useless)],
            calls: 0,
        };
        let task = LearningTask::new("t", 1, vec![Tuple::from_strs(&["a"])], vec![]);
        let def = covering_loop(&mut learner, &engine(&db), &task, &LearnerParams::default());
        assert!(def.is_empty());
    }
}
