//! Golem: bottom-up learning with relative least general generalization
//! (Muggleton & Feng 1990; Section 6.3 of the paper).
//!
//! Golem's `LearnClause` samples `K` positive examples, computes the rlgg of
//! pairs of their saturations (ground bottom clauses), keeps the candidates
//! meeting the minimum condition, and greedily folds further examples into
//! the best candidate while its score improves (Algorithm 2). The rlgg
//! operator itself is schema independent (Theorem 6.4), but the lgg of two
//! clauses can be as large as the product of their lengths, so Golem's
//! clauses — and its running time — grow exponentially with the number of
//! examples generalized, which is why it only scales to small databases.

use crate::bottom_clause::{ground_bottom_clause, BottomClauseConfig};
use crate::covering::{covering_loop, ClauseLearner};
use crate::params::LearnerParams;
use crate::scoring::{clause_coverage_engine, clauses_coverage_engine};
use crate::task::LearningTask;
use castor_engine::Engine;
use castor_logic::{lgg_clauses, minimize_clause, Clause, Definition};
use castor_relational::{DatabaseInstance, Tuple};

/// The Golem learner.
#[derive(Debug, Default)]
pub struct Golem {
    /// Cap on the body size of intermediate lgg clauses; candidates growing
    /// beyond it are abandoned (mirrors Golem's practical limits).
    pub max_lgg_body: usize,
}

impl Golem {
    /// Creates a Golem learner with the default lgg size cap.
    pub fn new() -> Self {
        Golem { max_lgg_body: 600 }
    }

    /// Learns a Horn definition for the task over `db`, building a private
    /// evaluation engine from `params`.
    pub fn learn(
        &mut self,
        db: &DatabaseInstance,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let engine = Engine::new(db, params.engine_config());
        self.learn_with_engine(&engine, task, params)
    }

    /// Learns a definition over a shared evaluation engine.
    pub fn learn_with_engine(
        &mut self,
        engine: &Engine,
        task: &LearningTask,
        params: &LearnerParams,
    ) -> Definition {
        let mut adapter = GolemClauseLearner {
            target: task.target.clone(),
            max_lgg_body: self.max_lgg_body,
        };
        covering_loop(&mut adapter, engine, task, params)
    }
}

struct GolemClauseLearner {
    target: String,
    max_lgg_body: usize,
}

impl GolemClauseLearner {
    fn saturation(&self, db: &DatabaseInstance, example: &Tuple, params: &LearnerParams) -> Clause {
        let config = BottomClauseConfig {
            max_iterations: params.max_iterations,
            max_recall_per_relation: params.max_recall_per_relation,
            ..Default::default()
        };
        ground_bottom_clause(db, &self.target, example, &config)
    }
}

impl ClauseLearner for GolemClauseLearner {
    fn learn_clause(
        &mut self,
        engine: &Engine,
        uncovered: &[Tuple],
        negative: &[Tuple],
        params: &LearnerParams,
    ) -> Option<Clause> {
        let db = engine.snapshot();
        let db = db.as_ref();
        // Sample E+_S: the first K uncovered positives (deterministic order
        // keeps the experiments reproducible; the paper samples randomly).
        let sample: Vec<&Tuple> = uncovered.iter().take(params.sample_size.max(2)).collect();
        if sample.is_empty() {
            return None;
        }
        let saturations: Vec<Clause> = sample
            .iter()
            .map(|e| self.saturation(db, e, params))
            .collect();

        // Candidate clauses: rlgg of every pair of sampled saturations that
        // meets the minimum condition — generated first, then scored as one
        // batched engine call (rlggs of overlapping pairs share prefixes,
        // and identical generalizations deduplicate inside the engine).
        let mut candidates: Vec<Clause> = Vec::new();
        for i in 0..saturations.len() {
            for j in (i + 1)..saturations.len() {
                let Some(lgg) = lgg_clauses(&saturations[i], &saturations[j]) else {
                    continue;
                };
                if lgg.body.len() > self.max_lgg_body {
                    continue;
                }
                // The lgg of two ground clauses *is* the rlgg: shared
                // constants stay constants, differing ones became variables.
                candidates.push(minimize_clause(&lgg));
            }
        }
        let coverages = clauses_coverage_engine(engine, &candidates, uncovered, negative);
        let mut best: Option<(Clause, i64)> = None;
        for (candidate, cov) in candidates.into_iter().zip(coverages) {
            if !params.meets_minimum(cov.positive, cov.negative) {
                continue;
            }
            let score = cov.score();
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((candidate, score));
            }
        }
        let (mut current, mut current_score) = best?;

        // Greedily fold further examples into the generalization while the
        // score improves.
        loop {
            let mut improved = false;
            for example in uncovered {
                if engine.covers(&current, example) {
                    continue;
                }
                let saturation = self.saturation(db, example, params);
                let Some(lgg) = lgg_clauses(&current, &saturation) else {
                    continue;
                };
                if lgg.body.len() > self.max_lgg_body {
                    continue;
                }
                let candidate = minimize_clause(&lgg);
                let cov = clause_coverage_engine(engine, &candidate, uncovered, negative);
                if !params.meets_minimum(cov.positive, cov.negative) {
                    continue;
                }
                if cov.score() > current_score {
                    current = candidate;
                    current_score = cov.score();
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema};

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("publication", &["title", "person"]))
            .add_relation(RelationSymbol::new("professor", &["p"]));
        let mut db = DatabaseInstance::empty(&schema);
        for (t, person) in [
            ("a", "prof1"),
            ("a", "stud1"),
            ("b", "prof2"),
            ("b", "stud2"),
            ("c", "prof3"),
            ("c", "stud3"),
            ("d", "stud4"),
        ] {
            db.insert("publication", Tuple::from_strs(&[t, person]))
                .unwrap();
        }
        for p in ["prof1", "prof2", "prof3"] {
            db.insert("professor", Tuple::from_strs(&[p])).unwrap();
        }
        db
    }

    fn task() -> LearningTask {
        LearningTask::new(
            "advisedBy",
            2,
            vec![
                Tuple::from_strs(&["stud1", "prof1"]),
                Tuple::from_strs(&["stud2", "prof2"]),
                Tuple::from_strs(&["stud3", "prof3"]),
            ],
            vec![
                Tuple::from_strs(&["stud1", "prof2"]),
                Tuple::from_strs(&["stud4", "prof1"]),
            ],
        )
    }

    #[test]
    fn golem_learns_generalization_covering_positives() {
        let db = db();
        let params = LearnerParams {
            sample_size: 3,
            min_pos: 2,
            ..Default::default()
        };
        let def = Golem::new().learn(&db, &task(), &params);
        assert!(!def.is_empty());
        let t = task();
        let covered = t
            .positive
            .iter()
            .filter(|e| {
                def.clauses
                    .iter()
                    .any(|c| castor_logic::covers_example(c, &db, e))
            })
            .count();
        assert_eq!(covered, 3, "rlgg generalization should cover all positives");
        for neg in &t.negative {
            let covered_neg = def
                .clauses
                .iter()
                .any(|c| castor_logic::covers_example(c, &db, neg));
            assert!(!covered_neg, "negative {neg} should not be covered");
        }
    }

    #[test]
    fn lgg_size_cap_prevents_blowup() {
        let db = db();
        let mut learner = GolemClauseLearner {
            target: "advisedBy".into(),
            max_lgg_body: 0, // nothing fits
        };
        let t = task();
        let engine = Engine::new(&db, LearnerParams::default().engine_config());
        let clause =
            learner.learn_clause(&engine, &t.positive, &t.negative, &LearnerParams::default());
        assert!(clause.is_none());
    }

    #[test]
    fn needs_at_least_two_examples_to_pair() {
        let db = db();
        let params = LearnerParams {
            min_pos: 1,
            ..Default::default()
        };
        let single = LearningTask::new(
            "advisedBy",
            2,
            vec![Tuple::from_strs(&["stud1", "prof1"])],
            vec![],
        );
        // With a single positive the pair loop still works because the sample
        // floor is 2 but only one saturation exists — no pair, no clause.
        let def = Golem::new().learn(&db, &single, &params);
        assert!(def.is_empty());
    }
}
