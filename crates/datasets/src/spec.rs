//! Dataset variant descriptors shared by the three benchmark families.

use castor_learners::LearningTask;
use castor_logic::Definition;
use castor_relational::DatabaseInstance;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One schema variant of a dataset: the database instance under that
/// schema, the learning task, and auxiliary metadata used by the learners.
#[derive(Debug, Clone)]
pub struct DatasetVariant {
    /// Variant name as used in the paper's tables (e.g. `"Original"`,
    /// `"4NF-1"`, `"Stanford"`).
    pub name: String,
    /// The database instance (background knowledge) under this variant,
    /// shared: engines built over it (`Engine::from_arc`) and
    /// cross-validation folds (`DatasetVariant::with_task`) clone the `Arc`,
    /// not the tuples and indexes.
    pub db: Arc<DatabaseInstance>,
    /// The learning task (shared examples across variants of a family).
    pub task: LearningTask,
    /// `(relation, position)` pairs whose values should stay constants in
    /// bottom clauses under this variant.
    pub constant_positions: BTreeSet<(String, usize)>,
    /// The planted ground-truth definition of the target over this variant,
    /// when one exists in exact form.
    pub ground_truth: Option<Definition>,
}

impl DatasetVariant {
    /// Returns a copy of the variant with the task replaced (used by
    /// cross-validation folds).
    pub fn with_task(&self, task: LearningTask) -> DatasetVariant {
        DatasetVariant {
            task,
            ..self.clone()
        }
    }
}

/// A family of schema variants over the same underlying data.
#[derive(Debug, Clone)]
pub struct SchemaFamily {
    /// Family name (`"UW-CSE"`, `"HIV-Large"`, `"HIV-2K4K"`, `"IMDb"`).
    pub name: String,
    /// The variants, in the order the paper's tables list them.
    pub variants: Vec<DatasetVariant>,
}

impl SchemaFamily {
    /// Looks up a variant by name.
    pub fn variant(&self, name: &str) -> Option<&DatasetVariant> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// The names of all variants.
    pub fn variant_names(&self) -> Vec<&str> {
        self.variants.iter().map(|v| v.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{RelationSymbol, Schema, Tuple};

    fn dummy_variant(name: &str) -> DatasetVariant {
        let mut schema = Schema::new("s");
        schema.add_relation(RelationSymbol::new("p", &["x"]));
        DatasetVariant {
            name: name.to_string(),
            db: Arc::new(DatabaseInstance::empty(&schema)),
            task: LearningTask::new("t", 1, vec![Tuple::from_strs(&["a"])], vec![]),
            constant_positions: BTreeSet::new(),
            ground_truth: None,
        }
    }

    #[test]
    fn family_lookup_by_name() {
        let family = SchemaFamily {
            name: "demo".into(),
            variants: vec![dummy_variant("A"), dummy_variant("B")],
        };
        assert!(family.variant("A").is_some());
        assert!(family.variant("C").is_none());
        assert_eq!(family.variant_names(), vec!["A", "B"]);
    }

    #[test]
    fn with_task_replaces_examples_only() {
        let v = dummy_variant("A");
        let new_task = LearningTask::new("t", 1, vec![], vec![Tuple::from_strs(&["b"])]);
        let replaced = v.with_task(new_task.clone());
        assert_eq!(replaced.task, new_task);
        assert_eq!(replaced.name, "A");
    }
}
