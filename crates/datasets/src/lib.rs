//! # castor-datasets
//!
//! Synthetic reconstructions of the three evaluation datasets of *Schema
//! Independent Relational Learning* (Picado et al., 2017), each available
//! under every schema variant the paper evaluates:
//!
//! * **UW-CSE** (Section 9.1, Tables 1 & 5): Original, 4NF, Denormalized-1,
//!   Denormalized-2 — target `advisedBy(stud, prof)`.
//! * **HIV** (Tables 3 & 4): Initial, 4NF-1, 4NF-2 at two scales
//!   (HIV-Large and HIV-2K4K) — target `hivActive(comp)`.
//! * **IMDb** (Tables 6–8): JMDB, Stanford, Denormalized — target
//!   `dramaDirector(director)`.
//!
//! The paper uses the real datasets; those are not redistributable here, so
//! each module generates a synthetic universe with the same schema variants,
//! the same FDs/INDs, and a planted ground-truth definition of the target,
//! then derives every variant instance from the same universe through the
//! `castor-transform` (de)compositions — which is exactly the property
//! (information equivalence across variants) the schema-independence
//! experiments rely on. Scales are reduced so the full benchmark suite runs
//! on a laptop; the *relative* ordering (HIV ≫ IMDb ≫ UW-CSE) is preserved.
//!
//! The crate also provides the random-definition generator used for the
//! query-based experiments (Figure 3), k-fold splitting, and Table 2-style
//! dataset statistics.

pub mod folds;
pub mod hiv;
pub mod imdb;
pub mod spec;
pub mod stats;
pub mod synthetic;
pub mod uwcse;

pub use folds::{cross_validation_folds, Fold};
pub use spec::{DatasetVariant, SchemaFamily};
pub use stats::{dataset_statistics, DatasetStatistics};
pub use synthetic::{random_definition, RandomDefinitionConfig};
