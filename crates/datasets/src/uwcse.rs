//! The UW-CSE benchmark family (Section 9.1, Tables 1 & 5 of the paper).
//!
//! The real UW-CSE dataset describes an academic department; the target is
//! `advisedBy(stud, prof)`. This module generates a synthetic department
//! with the same schema variants:
//!
//! * **Original** — the highly decomposed schema designed by relational
//!   learning experts (`student`, `inPhase`, `yearsInProgram`, `professor`,
//!   `hasPosition`, `publication`, `courseLevel`, `taughtBy`, `ta`);
//! * **4NF** — `student` and `professor` recomposed;
//! * **Denormalized-1** — additionally `courseLevel ⋈ taughtBy`;
//! * **Denormalized-2** — additionally `professor` folded into the course
//!   relation.
//!
//! All variants are derived from the same Original instance through
//! `castor-transform` compositions, so they are information equivalent by
//! construction. The planted advising signal is structural: an advisor and
//! their student co-author publications.

use crate::spec::{DatasetVariant, SchemaFamily};
use castor_learners::LearningTask;
use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::{
    DatabaseInstance, FunctionalDependency, InclusionDependency, RelationSymbol, Schema, Tuple,
};
use castor_transform::{TransformStep, Transformation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generation parameters for the synthetic UW-CSE universe.
#[derive(Debug, Clone)]
pub struct UwCseConfig {
    /// Number of students.
    pub students: usize,
    /// Number of professors.
    pub professors: usize,
    /// Number of courses.
    pub courses: usize,
    /// Fraction of students that have an advisor.
    pub advised_fraction: f64,
    /// Fraction of negative pairs that nevertheless co-author (label noise).
    pub noise_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UwCseConfig {
    fn default() -> Self {
        UwCseConfig {
            students: 40,
            professors: 10,
            courses: 14,
            advised_fraction: 0.8,
            noise_fraction: 0.1,
            seed: 7,
        }
    }
}

const PHASES: [&str; 3] = ["pre_quals", "post_quals", "post_generals"];
const POSITIONS: [&str; 3] = ["faculty", "affiliate", "adjunct"];
const LEVELS: [&str; 3] = ["level_300", "level_400", "level_500"];
const TERMS: [&str; 4] = ["autumn", "winter", "spring", "summer"];

/// The Original UW-CSE schema (left column of Table 1) with its INDs
/// (Table 5).
pub fn original_schema() -> Schema {
    let mut s = Schema::new("uwcse-original");
    s.add_relation(RelationSymbol::new("student", &["stud"]))
        .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
        .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]))
        .add_relation(RelationSymbol::new("professor", &["prof"]))
        .add_relation(RelationSymbol::new("hasPosition", &["prof", "position"]))
        .add_relation(RelationSymbol::new("publication", &["title", "person"]))
        .add_relation(RelationSymbol::new("courseLevel", &["crs", "level"]))
        .add_relation(RelationSymbol::new("taughtBy", &["crs", "prof", "term"]))
        .add_relation(RelationSymbol::new("ta", &["crs", "stud", "term"]));
    // INDs with equality used for the composition transformations.
    s.add_ind(InclusionDependency::equality(
        "student",
        &["stud"],
        "inPhase",
        &["stud"],
    ))
    .add_ind(InclusionDependency::equality(
        "student",
        &["stud"],
        "yearsInProgram",
        &["stud"],
    ))
    .add_ind(InclusionDependency::equality(
        "professor",
        &["prof"],
        "hasPosition",
        &["prof"],
    ))
    .add_ind(InclusionDependency::equality(
        "courseLevel",
        &["crs"],
        "taughtBy",
        &["crs"],
    ))
    .add_ind(InclusionDependency::equality(
        "taughtBy",
        &["prof"],
        "professor",
        &["prof"],
    ));
    // Regular (subset) INDs.
    s.add_ind(InclusionDependency::subset(
        "ta",
        &["stud"],
        "student",
        &["stud"],
    ))
    .add_ind(InclusionDependency::subset(
        "ta",
        &["crs"],
        "courseLevel",
        &["crs"],
    ));
    // FDs.
    s.add_fd(FunctionalDependency::new("inPhase", &["stud"], &["phase"]))
        .add_fd(FunctionalDependency::new(
            "yearsInProgram",
            &["stud"],
            &["years"],
        ))
        .add_fd(FunctionalDependency::new(
            "hasPosition",
            &["prof"],
            &["position"],
        ))
        .add_fd(FunctionalDependency::new(
            "courseLevel",
            &["crs"],
            &["level"],
        ));
    s
}

/// The composition from the Original schema to the 4NF schema.
pub fn to_4nf(original: &Schema) -> Transformation {
    Transformation::new(
        "original-to-4nf",
        vec![
            TransformStep::compose(
                original,
                &["student", "inPhase", "yearsInProgram"],
                "student",
            ),
            TransformStep::compose(original, &["professor", "hasPosition"], "professor"),
        ],
    )
}

/// The composition from the Original schema to Denormalized-1
/// (4NF + `courseLevel ⋈ taughtBy`).
pub fn to_denormalized1(original: &Schema) -> Transformation {
    let mut steps = to_4nf(original).steps().to_vec();
    steps.push(TransformStep::compose(
        original,
        &["courseLevel", "taughtBy"],
        "taughtBy",
    ));
    Transformation::new("original-to-denormalized1", steps)
}

/// The composition from the Original schema to Denormalized-2
/// (4NF + `courseLevel ⋈ taughtBy ⋈ professor`).
pub fn to_denormalized2(original: &Schema) -> Transformation {
    Transformation::new(
        "original-to-denormalized2",
        vec![
            TransformStep::compose(
                original,
                &["student", "inPhase", "yearsInProgram"],
                "student",
            ),
            TransformStep::compose(
                original,
                &["courseLevel", "taughtBy", "professor", "hasPosition"],
                "taughtBy",
            ),
        ],
    )
}

/// Generates the synthetic UW-CSE family with all four schema variants.
pub fn generate(config: &UwCseConfig) -> SchemaFamily {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = original_schema();
    let mut db = DatabaseInstance::empty(&schema);

    let students: Vec<String> = (0..config.students).map(|i| format!("s{i}")).collect();
    let professors: Vec<String> = (0..config.professors).map(|i| format!("prof{i}")).collect();
    let courses: Vec<String> = (0..config.courses).map(|i| format!("c{i}")).collect();

    for s in &students {
        db.insert("student", Tuple::from_strs(&[s])).unwrap();
        let phase = PHASES[rng.gen_range(0..PHASES.len())];
        db.insert("inPhase", Tuple::from_strs(&[s, phase])).unwrap();
        let years = rng.gen_range(1..=8).to_string();
        db.insert("yearsInProgram", Tuple::from_strs(&[s, &years]))
            .unwrap();
    }
    for p in &professors {
        db.insert("professor", Tuple::from_strs(&[p])).unwrap();
        let pos = POSITIONS[rng.gen_range(0..POSITIONS.len())];
        db.insert("hasPosition", Tuple::from_strs(&[p, pos]))
            .unwrap();
    }
    for (i, c) in courses.iter().enumerate() {
        let level = LEVELS[rng.gen_range(0..LEVELS.len())];
        db.insert("courseLevel", Tuple::from_strs(&[c, level]))
            .unwrap();
        // Round-robin guarantees every professor teaches (the equality IND
        // taughtBy[prof] = professor[prof] must hold).
        let prof = &professors[i % config.professors];
        let term = TERMS[rng.gen_range(0..TERMS.len())];
        db.insert("taughtBy", Tuple::from_strs(&[c, prof, term]))
            .unwrap();
        let ta = &students[rng.gen_range(0..students.len())];
        db.insert("ta", Tuple::from_strs(&[c, ta, term])).unwrap();
    }
    // Extra teaching assignments so some professors teach several courses.
    for c in courses.iter().take(config.courses / 2) {
        let prof = &professors[rng.gen_range(0..professors.len())];
        let term = TERMS[rng.gen_range(0..TERMS.len())];
        db.insert("taughtBy", Tuple::from_strs(&[c, prof, term]))
            .unwrap();
    }

    // Advising pairs and the co-authorship signal.
    let mut positives: Vec<Tuple> = Vec::new();
    let mut pub_counter = 0usize;
    let mut advised_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &students {
        if rng.gen_bool(config.advised_fraction) {
            let prof = professors[rng.gen_range(0..professors.len())].clone();
            advised_pairs.insert((s.clone(), prof.clone()));
            positives.push(Tuple::from_strs(&[s, &prof]));
            let n_pubs = rng.gen_range(1..=2);
            for _ in 0..n_pubs {
                let title = format!("pub{pub_counter}");
                pub_counter += 1;
                db.insert("publication", Tuple::from_strs(&[&title, s]))
                    .unwrap();
                db.insert("publication", Tuple::from_strs(&[&title, &prof]))
                    .unwrap();
            }
        }
    }
    // Solo publications (no advising signal).
    for s in students.iter().step_by(3) {
        let title = format!("pub{pub_counter}");
        pub_counter += 1;
        db.insert("publication", Tuple::from_strs(&[&title, s]))
            .unwrap();
    }

    // Negative examples: non-advising (student, professor) pairs; a fraction
    // of them co-author anyway (label noise).
    let mut negatives: Vec<Tuple> = Vec::new();
    let target_negatives = positives.len() * 2;
    let mut attempts = 0;
    while negatives.len() < target_negatives && attempts < target_negatives * 20 {
        attempts += 1;
        let s = &students[rng.gen_range(0..students.len())];
        let p = &professors[rng.gen_range(0..professors.len())];
        if advised_pairs.contains(&(s.clone(), p.clone())) {
            continue;
        }
        let pair = Tuple::from_strs(&[s, p]);
        if negatives.contains(&pair) {
            continue;
        }
        if rng.gen_bool(config.noise_fraction) {
            // Noise: make this non-advising pair co-author a publication.
            let title = format!("pub{pub_counter}");
            pub_counter += 1;
            db.insert("publication", Tuple::from_strs(&[&title, s]))
                .unwrap();
            db.insert("publication", Tuple::from_strs(&[&title, p]))
                .unwrap();
        }
        negatives.push(pair);
    }
    positives.shuffle(&mut rng);
    negatives.shuffle(&mut rng);

    let task = LearningTask::new("advisedBy", 2, positives, negatives);

    // Build the variant instances by applying the compositions.
    let original_variant = DatasetVariant {
        name: "Original".into(),
        db: std::sync::Arc::new(db.clone()),
        task: task.clone(),
        constant_positions: constant_positions_original(),
        ground_truth: Some(ground_truth_original()),
    };
    let make = |name: &str, tau: Transformation, consts, truth| {
        let transformed = tau.apply_instance(&db).expect("composition applies");
        DatasetVariant {
            name: name.into(),
            db: std::sync::Arc::new(transformed),
            task: task.clone(),
            constant_positions: consts,
            ground_truth: truth,
        }
    };
    let variants = vec![
        original_variant,
        make(
            "4NF",
            to_4nf(&schema),
            constant_positions_4nf(),
            Some(ground_truth_4nf()),
        ),
        make(
            "Denormalized-1",
            to_denormalized1(&schema),
            constant_positions_4nf(),
            Some(ground_truth_4nf()),
        ),
        make(
            "Denormalized-2",
            to_denormalized2(&schema),
            constant_positions_denorm2(),
            Some(ground_truth_denorm2()),
        ),
    ];

    SchemaFamily {
        name: "UW-CSE".into(),
        variants,
    }
}

fn constant_positions_original() -> BTreeSet<(String, usize)> {
    [
        ("inPhase".to_string(), 1),
        ("yearsInProgram".to_string(), 1),
        ("hasPosition".to_string(), 1),
        ("courseLevel".to_string(), 1),
    ]
    .into_iter()
    .collect()
}

fn constant_positions_4nf() -> BTreeSet<(String, usize)> {
    [
        ("student".to_string(), 1),
        ("student".to_string(), 2),
        ("professor".to_string(), 1),
        ("courseLevel".to_string(), 1),
        ("taughtBy".to_string(), 1),
    ]
    .into_iter()
    .collect()
}

fn constant_positions_denorm2() -> BTreeSet<(String, usize)> {
    [
        ("student".to_string(), 1),
        ("student".to_string(), 2),
        ("taughtBy".to_string(), 1),
        ("taughtBy".to_string(), 4),
    ]
    .into_iter()
    .collect()
}

/// Ground truth over the Original schema: advisor and student co-author.
pub fn ground_truth_original() -> Definition {
    Definition::new(
        "advisedBy",
        vec![Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::vars("professor", &["y"]),
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )],
    )
}

/// Ground truth over the 4NF / Denormalized-1 schemas.
pub fn ground_truth_4nf() -> Definition {
    Definition::new(
        "advisedBy",
        vec![Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("student", &["x", "ph", "yr"]),
                Atom::vars("professor", &["y", "pos"]),
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )],
    )
}

/// Ground truth over the Denormalized-2 schema (professor folded into the
/// course relation).
pub fn ground_truth_denorm2() -> Definition {
    Definition::new(
        "advisedBy",
        vec![Clause::new(
            Atom::vars("advisedBy", &["x", "y"]),
            vec![
                Atom::vars("student", &["x", "ph", "yr"]),
                Atom::new(
                    "taughtBy",
                    vec![
                        Term::var("c"),
                        Term::var("lvl"),
                        Term::var("y"),
                        Term::var("tm"),
                        Term::var("pos"),
                    ],
                ),
                Atom::vars("publication", &["p", "x"]),
                Atom::vars("publication", &["p", "y"]),
            ],
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::definition_results;

    fn small() -> SchemaFamily {
        generate(&UwCseConfig {
            students: 20,
            professors: 6,
            courses: 8,
            ..Default::default()
        })
    }

    #[test]
    fn generates_all_four_variants() {
        let family = small();
        assert_eq!(
            family.variant_names(),
            vec!["Original", "4NF", "Denormalized-1", "Denormalized-2"]
        );
    }

    #[test]
    fn original_instance_satisfies_declared_constraints() {
        let family = small();
        let original = family.variant("Original").unwrap();
        original.db.validate().expect("constraints must hold");
    }

    #[test]
    fn variants_have_expected_relation_counts() {
        // Table 2: Original 9 relations, 4NF 6, Denormalized-1 5,
        // Denormalized-2 4.
        let family = small();
        let counts: Vec<usize> = family
            .variants
            .iter()
            .map(|v| v.db.schema().relation_count())
            .collect();
        assert_eq!(counts, vec![9, 6, 5, 4]);
    }

    #[test]
    fn variants_are_information_equivalent_with_original() {
        // Composing loses no tuples: the 4NF student relation has exactly
        // one row per student.
        let family = small();
        let original = family.variant("Original").unwrap();
        let nf4 = family.variant("4NF").unwrap();
        assert_eq!(
            original.db.relation("student").unwrap().len(),
            nf4.db.relation("student").unwrap().len()
        );
        assert_eq!(
            original.db.relation("publication").unwrap().len(),
            nf4.db.relation("publication").unwrap().len()
        );
    }

    #[test]
    fn ground_truth_covers_all_positive_examples_on_every_variant() {
        let family = small();
        for variant in &family.variants {
            let truth = variant.ground_truth.as_ref().unwrap();
            let results = definition_results(truth, &variant.db);
            for pos in &variant.task.positive {
                assert!(
                    results.contains(pos),
                    "variant {}: positive {pos} not derivable from ground truth",
                    variant.name
                );
            }
        }
    }

    #[test]
    fn ground_truth_results_agree_across_variants() {
        // The planted definition is schema independent: evaluating the
        // per-variant ground truths over the corresponding instances yields
        // the same relation.
        let family = small();
        let reference = {
            let v = family.variant("Original").unwrap();
            definition_results(v.ground_truth.as_ref().unwrap(), &v.db)
        };
        for variant in &family.variants[1..] {
            let results = definition_results(variant.ground_truth.as_ref().unwrap(), &variant.db);
            assert_eq!(results, reference, "variant {} diverges", variant.name);
        }
    }

    #[test]
    fn examples_are_shared_and_disjoint() {
        let family = small();
        let task = &family.variants[0].task;
        assert!(!task.positive.is_empty());
        assert!(task.negative.len() >= task.positive.len());
        for p in &task.positive {
            assert!(!task.negative.contains(p));
        }
        for v in &family.variants[1..] {
            assert_eq!(v.task, *task);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(&UwCseConfig::default());
        let b = generate(&UwCseConfig::default());
        assert_eq!(a.variants[0].task, b.variants[0].task);
        assert_eq!(
            a.variants[0].db.total_tuples(),
            b.variants[0].db.total_tuples()
        );
    }
}
