//! Dataset statistics in the style of Table 2 of the paper.

use crate::spec::SchemaFamily;
use std::fmt;

/// Statistics of one schema variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStatistics {
    /// Dataset family name.
    pub family: String,
    /// Schema variant name.
    pub schema: String,
    /// Number of relations (`#R`).
    pub relations: usize,
    /// Number of tuples (`#T`).
    pub tuples: usize,
    /// Number of positive examples (`#P`).
    pub positives: usize,
    /// Number of negative examples (`#N`).
    pub negatives: usize,
}

impl fmt::Display for DatasetStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<16} #R={:<4} #T={:<8} #P={:<6} #N={:<6}",
            self.family, self.schema, self.relations, self.tuples, self.positives, self.negatives
        )
    }
}

/// Computes the Table 2-style statistics of every variant in a family.
pub fn dataset_statistics(family: &SchemaFamily) -> Vec<DatasetStatistics> {
    family
        .variants
        .iter()
        .map(|v| DatasetStatistics {
            family: family.name.clone(),
            schema: v.name.clone(),
            relations: v.db.schema().relation_count(),
            tuples: v.db.total_tuples(),
            positives: v.task.positive_count(),
            negatives: v.task.negative_count(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uwcse::{generate, UwCseConfig};

    #[test]
    fn statistics_cover_all_variants() {
        let family = generate(&UwCseConfig {
            students: 15,
            professors: 5,
            courses: 6,
            ..Default::default()
        });
        let stats = dataset_statistics(&family);
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.tuples > 0));
        assert!(stats.iter().all(|s| s.positives > 0));
        // Examples are shared across variants.
        assert!(stats.windows(2).all(|w| w[0].positives == w[1].positives));
        // Display renders the family name.
        assert!(stats[0].to_string().contains("UW-CSE"));
    }
}
