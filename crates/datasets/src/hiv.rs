//! The HIV (NCI AIDS antiviral screen) benchmark family (Tables 3 & 4).
//!
//! The real dataset describes 42,000 chemical compounds as atoms, bonds and
//! bond types; the target is `hivActive(comp)`. This module generates a
//! synthetic molecule collection with the same three schema variants:
//!
//! * **Initial** — `bonds(bd,atm1,atm2)` plus one relation per bond-type
//!   slot (`bType1`, `bType2`, `bType3`), unary element and property
//!   relations, and `compound(comp,atm)`;
//! * **4NF-1** — the bond relations composed into
//!   `bonds(bd,atm1,atm2,t1,t2,t3)` using the INDs with equality
//!   `bonds[bd] = bTypeX[bd]`;
//! * **4NF-2** — `bonds` decomposed into `bSource(bd,atm1)` and
//!   `bTarget(bd,atm2)`.
//!
//! The planted activity signal is structural: a compound is active when it
//! contains a carbon atom bonded to a nitrogen atom through an aromatic
//! (type-1 = `aromatic`) bond. Scales are reduced from the paper's 14M
//! tuples; the two configurations preserve the Large ≫ 2K4K ordering.

use crate::spec::{DatasetVariant, SchemaFamily};
use castor_learners::LearningTask;
use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::{DatabaseInstance, InclusionDependency, RelationSymbol, Schema, Tuple};
use castor_transform::{TransformStep, Transformation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generation parameters for the synthetic HIV dataset.
#[derive(Debug, Clone)]
pub struct HivConfig {
    /// Number of compounds.
    pub compounds: usize,
    /// Fraction of compounds carrying the activity pattern.
    pub active_fraction: f64,
    /// Fraction of examples whose label is flipped (noise).
    pub noise_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HivConfig {
    /// The configuration standing in for HIV-Large.
    pub fn large() -> Self {
        HivConfig {
            compounds: 140,
            active_fraction: 0.35,
            noise_fraction: 0.05,
            seed: 11,
        }
    }

    /// The configuration standing in for HIV-2K4K.
    pub fn hiv_2k4k() -> Self {
        HivConfig {
            compounds: 60,
            active_fraction: 0.35,
            noise_fraction: 0.05,
            seed: 13,
        }
    }
}

const ELEMENTS: [&str; 3] = ["element_c", "element_n", "element_o"];
const PROPERTIES: [&str; 3] = ["p2_0", "p2_1", "p3"];
const BOND_KINDS: [&str; 3] = ["aromatic", "single", "double"];

/// The Initial HIV schema (left column of Table 3) with the INDs of Table 4.
pub fn initial_schema() -> Schema {
    let mut s = Schema::new("hiv-initial");
    s.add_relation(RelationSymbol::new("compound", &["comp", "atm"]))
        .add_relation(RelationSymbol::new("bonds", &["bd", "atm1", "atm2"]))
        .add_relation(RelationSymbol::new("bType1", &["bd", "t1"]))
        .add_relation(RelationSymbol::new("bType2", &["bd", "t2"]))
        .add_relation(RelationSymbol::new("bType3", &["bd", "t3"]));
    for e in ELEMENTS {
        s.add_relation(RelationSymbol::new(e, &["atm"]));
    }
    for p in PROPERTIES {
        s.add_relation(RelationSymbol::new(p, &["atm"]));
    }
    for t in ["bType1", "bType2", "bType3"] {
        s.add_ind(InclusionDependency::equality("bonds", &["bd"], t, &["bd"]));
    }
    s.add_ind(InclusionDependency::subset(
        "bonds",
        &["atm1"],
        "compound",
        &["atm"],
    ))
    .add_ind(InclusionDependency::subset(
        "bonds",
        &["atm2"],
        "compound",
        &["atm"],
    ));
    for e in ELEMENTS {
        s.add_ind(InclusionDependency::subset(
            e,
            &["atm"],
            "compound",
            &["atm"],
        ));
    }
    for p in PROPERTIES {
        s.add_ind(InclusionDependency::subset(
            p,
            &["atm"],
            "compound",
            &["atm"],
        ));
    }
    s
}

/// Composition from the Initial schema to 4NF-1 (bond relations merged).
pub fn to_4nf1(initial: &Schema) -> Transformation {
    Transformation::new(
        "initial-to-4nf1",
        vec![TransformStep::compose(
            initial,
            &["bonds", "bType1", "bType2", "bType3"],
            "bonds",
        )],
    )
}

/// Decomposition from the Initial schema to 4NF-2 (`bonds` split into
/// `bSource` and `bTarget`).
pub fn to_4nf2(initial: &Schema) -> Transformation {
    Transformation::new(
        "initial-to-4nf2",
        vec![TransformStep::decompose(
            initial,
            "bonds",
            &[("bSource", &["bd", "atm1"]), ("bTarget", &["bd", "atm2"])],
        )],
    )
}

/// Generates the synthetic HIV family (Initial, 4NF-1, 4NF-2) at the scale
/// given by `config`, labelled with `family_name` ("HIV-Large" or
/// "HIV-2K4K").
pub fn generate(family_name: &str, config: &HivConfig) -> SchemaFamily {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = initial_schema();
    let mut db = DatabaseInstance::empty(&schema);

    let mut positives: Vec<Tuple> = Vec::new();
    let mut negatives: Vec<Tuple> = Vec::new();
    let mut bond_counter = 0usize;

    for ci in 0..config.compounds {
        let comp = format!("m{ci}");
        let n_atoms = rng.gen_range(4..=7);
        let atoms: Vec<String> = (0..n_atoms).map(|ai| format!("{comp}_a{ai}")).collect();
        let is_active = rng.gen_bool(config.active_fraction);

        // Assign elements; active compounds get at least one carbon and one
        // nitrogen that will be bonded aromatically.
        let mut elements: Vec<&str> = atoms
            .iter()
            .map(|_| ELEMENTS[rng.gen_range(0..ELEMENTS.len())])
            .collect();
        if is_active {
            elements[0] = "element_c";
            elements[1] = "element_n";
        } else {
            // Ensure the inactive compound cannot accidentally contain the
            // pattern: make every bond involving a carbon non-aromatic by
            // removing nitrogen entirely from inactive molecules.
            for e in elements.iter_mut() {
                if *e == "element_n" {
                    *e = "element_o";
                }
            }
        }
        for (atom, element) in atoms.iter().zip(elements.iter()) {
            db.insert("compound", Tuple::from_strs(&[&comp, atom]))
                .unwrap();
            db.insert(element, Tuple::from_strs(&[atom])).unwrap();
            if rng.gen_bool(0.4) {
                let p = PROPERTIES[rng.gen_range(0..PROPERTIES.len())];
                db.insert(p, Tuple::from_strs(&[atom])).unwrap();
            }
        }

        // Bonds along a chain plus a couple of random extra bonds.
        let add_bond = |db: &mut DatabaseInstance,
                        rng: &mut StdRng,
                        a: &str,
                        b: &str,
                        kind: Option<&str>,
                        counter: &mut usize| {
            let bd = format!("b{counter}");
            *counter += 1;
            db.insert("bonds", Tuple::from_strs(&[&bd, a, b])).unwrap();
            let t1 = kind.unwrap_or(BOND_KINDS[rng.gen_range(1..BOND_KINDS.len())]);
            db.insert("bType1", Tuple::from_strs(&[&bd, t1])).unwrap();
            let t2 = BOND_KINDS[rng.gen_range(0..BOND_KINDS.len())];
            db.insert("bType2", Tuple::from_strs(&[&bd, t2])).unwrap();
            let t3 = BOND_KINDS[rng.gen_range(0..BOND_KINDS.len())];
            db.insert("bType3", Tuple::from_strs(&[&bd, t3])).unwrap();
        };
        for w in atoms.windows(2) {
            // Chain bonds default to non-aromatic type-1 so inactive
            // compounds never exhibit the pattern.
            add_bond(&mut db, &mut rng, &w[0], &w[1], None, &mut bond_counter);
        }
        if is_active {
            add_bond(
                &mut db,
                &mut rng,
                &atoms[0],
                &atoms[1],
                Some("aromatic"),
                &mut bond_counter,
            );
        }

        // Label, with a small flip probability to model screening noise.
        let label_positive = if rng.gen_bool(config.noise_fraction) {
            !is_active
        } else {
            is_active
        };
        if label_positive {
            positives.push(Tuple::from_strs(&[&comp]));
        } else {
            negatives.push(Tuple::from_strs(&[&comp]));
        }
    }
    positives.shuffle(&mut rng);
    negatives.shuffle(&mut rng);
    let task = LearningTask::new("hivActive", 1, positives, negatives);

    let constant_initial: BTreeSet<(String, usize)> = [
        ("bType1".to_string(), 1),
        ("bType2".to_string(), 1),
        ("bType3".to_string(), 1),
    ]
    .into_iter()
    .collect();
    let constant_4nf1: BTreeSet<(String, usize)> = [
        ("bonds".to_string(), 3),
        ("bonds".to_string(), 4),
        ("bonds".to_string(), 5),
    ]
    .into_iter()
    .collect();

    let tau_4nf1 = to_4nf1(&schema);
    let tau_4nf2 = to_4nf2(&schema);
    let variants = vec![
        DatasetVariant {
            name: "Initial".into(),
            db: std::sync::Arc::new(db.clone()),
            task: task.clone(),
            constant_positions: constant_initial.clone(),
            ground_truth: Some(ground_truth_initial()),
        },
        DatasetVariant {
            name: "4NF-1".into(),
            db: std::sync::Arc::new(tau_4nf1.apply_instance(&db).expect("composition applies")),
            task: task.clone(),
            constant_positions: constant_4nf1,
            ground_truth: Some(ground_truth_4nf1()),
        },
        DatasetVariant {
            name: "4NF-2".into(),
            db: std::sync::Arc::new(tau_4nf2.apply_instance(&db).expect("decomposition applies")),
            task,
            constant_positions: constant_initial,
            ground_truth: Some(ground_truth_4nf2()),
        },
    ];

    SchemaFamily {
        name: family_name.into(),
        variants,
    }
}

/// Ground truth over the Initial schema: a carbon aromatically bonded to a
/// nitrogen.
pub fn ground_truth_initial() -> Definition {
    Definition::new(
        "hivActive",
        vec![Clause::new(
            Atom::vars("hivActive", &["x"]),
            vec![
                Atom::vars("compound", &["x", "a"]),
                Atom::vars("compound", &["x", "b"]),
                Atom::vars("element_c", &["a"]),
                Atom::vars("element_n", &["b"]),
                Atom::vars("bonds", &["d", "a", "b"]),
                Atom::new("bType1", vec![Term::var("d"), Term::constant("aromatic")]),
            ],
        )],
    )
}

/// Ground truth over the 4NF-1 schema (bond types inlined in `bonds`).
pub fn ground_truth_4nf1() -> Definition {
    Definition::new(
        "hivActive",
        vec![Clause::new(
            Atom::vars("hivActive", &["x"]),
            vec![
                Atom::vars("compound", &["x", "a"]),
                Atom::vars("compound", &["x", "b"]),
                Atom::vars("element_c", &["a"]),
                Atom::vars("element_n", &["b"]),
                Atom::new(
                    "bonds",
                    vec![
                        Term::var("d"),
                        Term::var("a"),
                        Term::var("b"),
                        Term::constant("aromatic"),
                        Term::var("t2"),
                        Term::var("t3"),
                    ],
                ),
            ],
        )],
    )
}

/// Ground truth over the 4NF-2 schema (`bonds` split into source/target).
pub fn ground_truth_4nf2() -> Definition {
    Definition::new(
        "hivActive",
        vec![Clause::new(
            Atom::vars("hivActive", &["x"]),
            vec![
                Atom::vars("compound", &["x", "a"]),
                Atom::vars("compound", &["x", "b"]),
                Atom::vars("element_c", &["a"]),
                Atom::vars("element_n", &["b"]),
                Atom::vars("bSource", &["d", "a"]),
                Atom::vars("bTarget", &["d", "b"]),
                Atom::new("bType1", vec![Term::var("d"), Term::constant("aromatic")]),
            ],
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::definition_results;

    fn tiny() -> SchemaFamily {
        generate(
            "HIV-Tiny",
            &HivConfig {
                compounds: 40,
                active_fraction: 0.4,
                noise_fraction: 0.0,
                seed: 3,
            },
        )
    }

    #[test]
    fn generates_three_variants_with_expected_schemas() {
        let family = tiny();
        assert_eq!(family.variant_names(), vec!["Initial", "4NF-1", "4NF-2"]);
        let initial = family.variant("Initial").unwrap();
        assert_eq!(initial.db.schema().relation_count(), 11);
        let nf1 = family.variant("4NF-1").unwrap();
        assert_eq!(nf1.db.schema().relation("bonds").unwrap().arity(), 6);
        assert!(!nf1.db.schema().contains_relation("bType1"));
        let nf2 = family.variant("4NF-2").unwrap();
        assert!(nf2.db.schema().contains_relation("bSource"));
        assert!(nf2.db.schema().contains_relation("bTarget"));
        assert!(!nf2.db.schema().contains_relation("bonds"));
    }

    #[test]
    fn initial_instance_satisfies_constraints() {
        let family = tiny();
        family.variant("Initial").unwrap().db.validate().unwrap();
        family.variant("4NF-2").unwrap().db.validate().unwrap();
    }

    #[test]
    fn tuple_counts_follow_the_paper_shape() {
        // Table 2: 4NF-1 has fewer tuples than Initial, 4NF-2 has more.
        let family = tiny();
        let initial = family.variant("Initial").unwrap().db.total_tuples();
        let nf1 = family.variant("4NF-1").unwrap().db.total_tuples();
        let nf2 = family.variant("4NF-2").unwrap().db.total_tuples();
        assert!(nf1 < initial, "4NF-1 composes bond-type relations");
        assert!(nf2 > initial, "4NF-2 doubles the bond representation");
    }

    #[test]
    fn ground_truth_is_noise_free_on_unflipped_labels() {
        // With zero noise the planted definition classifies every example
        // correctly on every variant.
        let family = tiny();
        for variant in &family.variants {
            let truth = variant.ground_truth.as_ref().unwrap();
            let derived = definition_results(truth, &variant.db);
            for pos in &variant.task.positive {
                assert!(derived.contains(pos), "{}: {pos} missed", variant.name);
            }
            for neg in &variant.task.negative {
                assert!(
                    !derived.contains(neg),
                    "{}: {neg} wrongly derived",
                    variant.name
                );
            }
        }
    }

    #[test]
    fn large_and_2k4k_scales_are_ordered() {
        let large = generate("HIV-Large", &HivConfig::large());
        let small = generate("HIV-2K4K", &HivConfig::hiv_2k4k());
        assert!(
            large.variant("Initial").unwrap().db.total_tuples()
                > small.variant("Initial").unwrap().db.total_tuples()
        );
        assert!(large.variants[0].task.positive_count() > small.variants[0].task.positive_count());
    }
}
