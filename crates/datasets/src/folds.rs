//! k-fold cross-validation splits.
//!
//! The paper evaluates with 5-fold cross validation on UW-CSE and 10-fold
//! on HIV and IMDb. Folds are built over the example sets only; the
//! background database is shared between training and testing, as is
//! standard in ILP evaluation.

use castor_learners::LearningTask;
use castor_relational::Tuple;

/// One train/test split.
#[derive(Debug, Clone)]
pub struct Fold {
    /// The training task.
    pub train: LearningTask,
    /// Held-out positive examples.
    pub test_positive: Vec<Tuple>,
    /// Held-out negative examples.
    pub test_negative: Vec<Tuple>,
}

/// Splits the task's examples into `k` folds (round-robin, preserving the
/// task's example order, which the dataset generators already shuffle).
pub fn cross_validation_folds(task: &LearningTask, k: usize) -> Vec<Fold> {
    let k = k.max(2);
    let mut folds = Vec::with_capacity(k);
    for fold_idx in 0..k {
        let in_test = |i: usize| i % k == fold_idx;
        let (test_pos, train_pos): (Vec<_>, Vec<_>) = task
            .positive
            .iter()
            .enumerate()
            .partition(|(i, _)| in_test(*i));
        let (test_neg, train_neg): (Vec<_>, Vec<_>) = task
            .negative
            .iter()
            .enumerate()
            .partition(|(i, _)| in_test(*i));
        let strip = |v: Vec<(usize, &Tuple)>| v.into_iter().map(|(_, t)| t.clone()).collect();
        folds.push(Fold {
            train: task.with_examples(strip(train_pos), strip(train_neg)),
            test_positive: strip(test_pos),
            test_negative: strip(test_neg),
        });
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n_pos: usize, n_neg: usize) -> LearningTask {
        LearningTask::new(
            "t",
            1,
            (0..n_pos)
                .map(|i| Tuple::from_strs(&[&format!("p{i}")]))
                .collect(),
            (0..n_neg)
                .map(|i| Tuple::from_strs(&[&format!("n{i}")]))
                .collect(),
        )
    }

    #[test]
    fn folds_partition_the_examples() {
        let t = task(10, 20);
        let folds = cross_validation_folds(&t, 5);
        assert_eq!(folds.len(), 5);
        let total_test_pos: usize = folds.iter().map(|f| f.test_positive.len()).sum();
        let total_test_neg: usize = folds.iter().map(|f| f.test_negative.len()).sum();
        assert_eq!(total_test_pos, 10);
        assert_eq!(total_test_neg, 20);
        for f in &folds {
            assert_eq!(f.train.positive_count() + f.test_positive.len(), 10);
            assert_eq!(f.train.negative_count() + f.test_negative.len(), 20);
            // Train and test are disjoint.
            for e in &f.test_positive {
                assert!(!f.train.positive.contains(e));
            }
        }
    }

    #[test]
    fn at_least_two_folds() {
        let t = task(4, 4);
        let folds = cross_validation_folds(&t, 1);
        assert_eq!(folds.len(), 2);
    }

    #[test]
    fn uneven_examples_are_distributed() {
        let t = task(7, 3);
        let folds = cross_validation_folds(&t, 3);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test_positive.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }
}
