//! The IMDb benchmark family (Tables 6–8 of the paper).
//!
//! The real dataset is the JMDB relational export of IMDb; the target is
//! `dramaDirector(director)` — directors who directed a drama produced
//! after 2000. This module generates a synthetic movie catalog with the
//! paper's three schema variants (over a representative subset of the JMDB
//! relations; the full JMDB schema has 46 relations, most of which play no
//! role in the target definition):
//!
//! * **JMDB** — entities (`movie`, `genre`, `director`, `actor`,
//!   `producer`, `prodcompany`, `color`, `country`) linked through
//!   `movies2X` relations;
//! * **Stanford** — the single-valued `movies2X` links for genre, color,
//!   production company, director and producer folded into `movie`;
//! * **Denormalized** — each `movies2X` link composed with its entity
//!   relation (e.g. `movies2director(id, directorid, name)`).
//!
//! All variants derive from the same JMDB instance via `castor-transform`
//! compositions, so they are information equivalent.

use crate::spec::{DatasetVariant, SchemaFamily};
use castor_learners::LearningTask;
use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::{DatabaseInstance, InclusionDependency, RelationSymbol, Schema, Tuple};
use castor_transform::{TransformStep, Transformation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Generation parameters for the synthetic IMDb dataset.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of movies.
    pub movies: usize,
    /// Number of directors.
    pub directors: usize,
    /// Number of actors.
    pub actors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            movies: 90,
            directors: 40,
            actors: 80,
            seed: 17,
        }
    }
}

const GENRES: [&str; 5] = ["Drama", "Comedy", "Action", "Documentary", "Horror"];
const COLORS: [&str; 2] = ["Color", "BlackAndWhite"];
const COUNTRIES: [&str; 4] = ["USA", "France", "Japan", "Brazil"];

/// The JMDB-style schema (a representative subset of Table 6).
pub fn jmdb_schema() -> Schema {
    let mut s = Schema::new("imdb-jmdb");
    s.add_relation(RelationSymbol::new("movie", &["id", "title", "year"]))
        .add_relation(RelationSymbol::new("genre", &["genreid", "genrename"]))
        .add_relation(RelationSymbol::new(
            "director",
            &["directorid", "directorname"],
        ))
        .add_relation(RelationSymbol::new(
            "producer",
            &["producerid", "producername"],
        ))
        .add_relation(RelationSymbol::new(
            "actor",
            &["actorid", "actorname", "sex"],
        ))
        .add_relation(RelationSymbol::new(
            "prodcompany",
            &["prodcompid", "companyname"],
        ))
        .add_relation(RelationSymbol::new("color", &["colorid", "colorname"]))
        .add_relation(RelationSymbol::new(
            "country",
            &["countryid", "countryname"],
        ))
        .add_relation(RelationSymbol::new("movies2genre", &["id", "genreid"]))
        .add_relation(RelationSymbol::new(
            "movies2director",
            &["id", "directorid"],
        ))
        .add_relation(RelationSymbol::new(
            "movies2producer",
            &["id", "producerid"],
        ))
        .add_relation(RelationSymbol::new(
            "movies2actor",
            &["id", "actorid", "character"],
        ))
        .add_relation(RelationSymbol::new(
            "movies2prodcomp",
            &["id", "prodcompid"],
        ))
        .add_relation(RelationSymbol::new("movies2color", &["id", "colorid"]))
        .add_relation(RelationSymbol::new("movies2country", &["id", "countryid"]));
    // INDs with equality used for the Stanford composition: the paper
    // enforces movies2X[id] = movie[id] for these five link relations.
    for x in [
        "movies2genre",
        "movies2color",
        "movies2prodcomp",
        "movies2director",
        "movies2producer",
    ] {
        s.add_ind(InclusionDependency::equality(x, &["id"], "movie", &["id"]));
    }
    // INDs with equality used for the Denormalized composition:
    // movies2Y[Yid] = Y[id].
    s.add_ind(InclusionDependency::equality(
        "movies2director",
        &["directorid"],
        "director",
        &["directorid"],
    ));
    s.add_ind(InclusionDependency::equality(
        "movies2producer",
        &["producerid"],
        "producer",
        &["producerid"],
    ));
    s.add_ind(InclusionDependency::equality(
        "movies2actor",
        &["actorid"],
        "actor",
        &["actorid"],
    ));
    s.add_ind(InclusionDependency::equality(
        "movies2genre",
        &["genreid"],
        "genre",
        &["genreid"],
    ));
    s.add_ind(InclusionDependency::equality(
        "movies2color",
        &["colorid"],
        "color",
        &["colorid"],
    ));
    s.add_ind(InclusionDependency::equality(
        "movies2prodcomp",
        &["prodcompid"],
        "prodcompany",
        &["prodcompid"],
    ));
    // Regular subset INDs (Table 8 bottom).
    s.add_ind(InclusionDependency::subset(
        "movies2country",
        &["countryid"],
        "country",
        &["countryid"],
    ))
    .add_ind(InclusionDependency::subset(
        "movies2actor",
        &["id"],
        "movie",
        &["id"],
    ))
    .add_ind(InclusionDependency::subset(
        "movies2country",
        &["id"],
        "movie",
        &["id"],
    ));
    s
}

/// Composition from JMDB to the Stanford-style schema: single-valued link
/// relations folded into `movie`.
pub fn to_stanford(jmdb: &Schema) -> Transformation {
    Transformation::new(
        "jmdb-to-stanford",
        vec![TransformStep::compose(
            jmdb,
            &[
                "movie",
                "movies2genre",
                "movies2color",
                "movies2prodcomp",
                "movies2director",
                "movies2producer",
            ],
            "movie",
        )],
    )
}

/// Composition from JMDB to the Denormalized schema: each `movies2X` link
/// composed with its entity relation.
pub fn to_denormalized(jmdb: &Schema) -> Transformation {
    Transformation::new(
        "jmdb-to-denormalized",
        vec![
            TransformStep::compose(jmdb, &["movies2director", "director"], "movies2director"),
            TransformStep::compose(jmdb, &["movies2producer", "producer"], "movies2producer"),
            TransformStep::compose(jmdb, &["movies2actor", "actor"], "movies2actor"),
        ],
    )
}

/// Generates the synthetic IMDb family with the JMDB, Stanford, and
/// Denormalized variants.
pub fn generate(config: &ImdbConfig) -> SchemaFamily {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = jmdb_schema();
    let mut db = DatabaseInstance::empty(&schema);

    // Entity tables.
    for (i, g) in GENRES.iter().enumerate() {
        db.insert("genre", Tuple::from_strs(&[&format!("g{i}"), g]))
            .unwrap();
    }
    for (i, c) in COLORS.iter().enumerate() {
        db.insert("color", Tuple::from_strs(&[&format!("col{i}"), c]))
            .unwrap();
    }
    for (i, c) in COUNTRIES.iter().enumerate() {
        db.insert("country", Tuple::from_strs(&[&format!("ctry{i}"), c]))
            .unwrap();
    }
    for i in 0..(config.movies / 10).max(2) {
        db.insert(
            "prodcompany",
            Tuple::from_strs(&[&format!("pc{i}"), &format!("Studio {i}")]),
        )
        .unwrap();
    }
    let directors: Vec<String> = (0..config.directors).map(|i| format!("d{i}")).collect();
    for d in &directors {
        db.insert("director", Tuple::from_strs(&[d, &format!("Director {d}")]))
            .unwrap();
    }
    let producers: Vec<String> = (0..config.directors / 2 + 1)
        .map(|i| format!("pr{i}"))
        .collect();
    for p in &producers {
        db.insert("producer", Tuple::from_strs(&[p, &format!("Producer {p}")]))
            .unwrap();
    }
    let actors: Vec<String> = (0..config.actors).map(|i| format!("a{i}")).collect();
    for a in &actors {
        let sex = if rng.gen_bool(0.5) { "f" } else { "m" };
        db.insert("actor", Tuple::from_strs(&[a, &format!("Actor {a}"), sex]))
            .unwrap();
    }

    // Movies and their single-valued links. Every movie gets exactly one
    // genre/color/prodcomp/director/producer so the Stanford composition is
    // lossless, matching the INDs with equality declared above.
    let mut drama_directors: BTreeSet<String> = BTreeSet::new();
    let prodcomp_count = (config.movies / 10).max(2);
    for mi in 0..config.movies {
        let id = format!("mv{mi}");
        let year = (1995 + rng.gen_range(0..25)).to_string();
        db.insert(
            "movie",
            Tuple::from_strs(&[&id, &format!("Movie {mi}"), &year]),
        )
        .unwrap();
        let genre_idx = if mi < GENRES.len() {
            mi
        } else {
            rng.gen_range(0..GENRES.len())
        };
        db.insert(
            "movies2genre",
            Tuple::from_strs(&[&id, &format!("g{genre_idx}")]),
        )
        .unwrap();
        let color_idx = if mi < COLORS.len() {
            mi
        } else {
            rng.gen_range(0..COLORS.len())
        };
        db.insert(
            "movies2color",
            Tuple::from_strs(&[&id, &format!("col{color_idx}")]),
        )
        .unwrap();
        let pc = if mi < prodcomp_count {
            mi
        } else {
            rng.gen_range(0..prodcomp_count)
        };
        db.insert(
            "movies2prodcomp",
            Tuple::from_strs(&[&id, &format!("pc{pc}")]),
        )
        .unwrap();
        // Directors and producers are assigned round-robin so every one of
        // them directs/produces at least one movie — the INDs with equality
        // movies2X[Xid] = X[id] must hold for the compositions to be
        // information preserving.
        let director = &directors[mi % directors.len()];
        db.insert("movies2director", Tuple::from_strs(&[&id, director]))
            .unwrap();
        let producer = &producers[mi % producers.len()];
        db.insert("movies2producer", Tuple::from_strs(&[&id, producer]))
            .unwrap();
        let country_idx = rng.gen_range(0..COUNTRIES.len());
        db.insert(
            "movies2country",
            Tuple::from_strs(&[&id, &format!("ctry{country_idx}")]),
        )
        .unwrap();
        // A couple of actors per movie (multi-valued link).
        for _ in 0..rng.gen_range(1..=3) {
            let actor = &actors[rng.gen_range(0..actors.len())];
            db.insert(
                "movies2actor",
                Tuple::from_strs(&[&id, actor, &format!("role_{mi}")]),
            )
            .unwrap();
        }
        if GENRES[genre_idx] == "Drama" {
            drama_directors.insert(director.clone());
        }
    }
    // Every actor must appear in at least one movie for the equality IND
    // movies2actor[actorid] = actor[actorid] to hold.
    let cast: BTreeSet<String> = db
        .relation("movies2actor")
        .unwrap()
        .iter()
        .map(|t| t.value(1).render())
        .collect();
    for (i, actor) in actors.iter().enumerate() {
        if !cast.contains(actor) {
            let movie_id = format!("mv{}", i % config.movies);
            db.insert(
                "movies2actor",
                Tuple::from_strs(&[&movie_id, actor, "background_role"]),
            )
            .unwrap();
        }
    }

    // Examples: every director is an example; dramaDirector is exact.
    let mut positives: Vec<Tuple> = Vec::new();
    let mut negatives: Vec<Tuple> = Vec::new();
    for d in &directors {
        if drama_directors.contains(d) {
            positives.push(Tuple::from_strs(&[d]));
        } else {
            negatives.push(Tuple::from_strs(&[d]));
        }
    }
    positives.shuffle(&mut rng);
    negatives.shuffle(&mut rng);
    let task = LearningTask::new("dramaDirector", 1, positives, negatives);

    let constants_jmdb: BTreeSet<(String, usize)> =
        [("genre".to_string(), 1)].into_iter().collect();
    let constants_denormalized: BTreeSet<(String, usize)> =
        [("genre".to_string(), 1)].into_iter().collect();

    let tau_stanford = to_stanford(&schema);
    let tau_denorm = to_denormalized(&schema);
    let variants = vec![
        DatasetVariant {
            name: "JMDB".into(),
            db: std::sync::Arc::new(db.clone()),
            task: task.clone(),
            constant_positions: constants_jmdb.clone(),
            ground_truth: Some(ground_truth_jmdb()),
        },
        DatasetVariant {
            name: "Stanford".into(),
            db: std::sync::Arc::new(
                tau_stanford
                    .apply_instance(&db)
                    .expect("composition applies"),
            ),
            task: task.clone(),
            constant_positions: constants_jmdb,
            ground_truth: Some(ground_truth_stanford()),
        },
        DatasetVariant {
            name: "Denormalized".into(),
            db: std::sync::Arc::new(tau_denorm.apply_instance(&db).expect("composition applies")),
            task,
            constant_positions: constants_denormalized,
            ground_truth: Some(ground_truth_denormalized()),
        },
    ];

    SchemaFamily {
        name: "IMDb".into(),
        variants,
    }
}

/// Ground truth over the JMDB schema.
pub fn ground_truth_jmdb() -> Definition {
    Definition::new(
        "dramaDirector",
        vec![Clause::new(
            Atom::vars("dramaDirector", &["d"]),
            vec![
                Atom::vars("movies2director", &["m", "d"]),
                Atom::vars("movies2genre", &["m", "g"]),
                Atom::new("genre", vec![Term::var("g"), Term::constant("Drama")]),
            ],
        )],
    )
}

/// Ground truth over the Stanford schema (links folded into `movie`).
pub fn ground_truth_stanford() -> Definition {
    Definition::new(
        "dramaDirector",
        vec![Clause::new(
            Atom::vars("dramaDirector", &["d"]),
            vec![
                Atom::vars("movie", &["m", "t", "y", "g", "c", "pc", "d", "pr"]),
                Atom::new("genre", vec![Term::var("g"), Term::constant("Drama")]),
            ],
        )],
    )
}

/// Ground truth over the Denormalized schema.
pub fn ground_truth_denormalized() -> Definition {
    Definition::new(
        "dramaDirector",
        vec![Clause::new(
            Atom::vars("dramaDirector", &["d"]),
            vec![
                Atom::vars("movies2director", &["m", "d", "n"]),
                Atom::vars("movies2genre", &["m", "g"]),
                Atom::new("genre", vec![Term::var("g"), Term::constant("Drama")]),
            ],
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::definition_results;

    fn tiny() -> SchemaFamily {
        generate(&ImdbConfig {
            movies: 40,
            directors: 15,
            actors: 20,
            seed: 5,
        })
    }

    #[test]
    fn generates_three_variants() {
        let family = tiny();
        assert_eq!(
            family.variant_names(),
            vec!["JMDB", "Stanford", "Denormalized"]
        );
    }

    #[test]
    fn stanford_movie_relation_is_widened() {
        let family = tiny();
        let stanford = family.variant("Stanford").unwrap();
        let movie = stanford.db.schema().relation("movie").unwrap();
        assert_eq!(movie.arity(), 8);
        assert!(!stanford.db.schema().contains_relation("movies2genre"));
        // The entity relations remain.
        assert!(stanford.db.schema().contains_relation("genre"));
    }

    #[test]
    fn denormalized_link_relations_carry_entity_attributes() {
        let family = tiny();
        let denorm = family.variant("Denormalized").unwrap();
        let m2d = denorm.db.schema().relation("movies2director").unwrap();
        assert_eq!(m2d.arity(), 3);
        assert!(!denorm.db.schema().contains_relation("director"));
    }

    #[test]
    fn jmdb_instance_satisfies_constraints() {
        let family = tiny();
        family.variant("JMDB").unwrap().db.validate().unwrap();
    }

    #[test]
    fn ground_truth_is_exact_on_every_variant() {
        let family = tiny();
        for variant in &family.variants {
            let truth = variant.ground_truth.as_ref().unwrap();
            let derived = definition_results(truth, &variant.db);
            for pos in &variant.task.positive {
                assert!(derived.contains(pos), "{}: {pos} missed", variant.name);
            }
            for neg in &variant.task.negative {
                assert!(
                    !derived.contains(neg),
                    "{}: {neg} wrongly derived",
                    variant.name
                );
            }
        }
    }

    #[test]
    fn variants_share_examples() {
        let family = tiny();
        let t0 = &family.variants[0].task;
        for v in &family.variants[1..] {
            assert_eq!(v.task, *t0);
        }
        assert!(!t0.positive.is_empty());
        assert!(!t0.negative.is_empty());
    }
}
