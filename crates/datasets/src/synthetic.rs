//! Random Horn-definition generator for the query-based experiments
//! (Figure 3, Section 9.4).
//!
//! The paper generates random Horn definitions over the Denormalized-2
//! UW-CSE schema — 1 to 5 clauses, 4 to 8 variables per clause, bodies made
//! of randomly chosen schema relations populated with new or already-used
//! variables, every head variable appearing in the body — and then
//! transforms them to the more decomposed schemas by vertical decomposition
//! of each clause.

use castor_logic::{Atom, Clause, Definition, Term};
use castor_relational::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random-definition generator.
#[derive(Debug, Clone)]
pub struct RandomDefinitionConfig {
    /// Number of clauses in the definition.
    pub clauses: usize,
    /// Exact number of distinct variables each clause must use.
    pub variables_per_clause: usize,
    /// Arity of the (new) target relation; the paper picks it at random
    /// between 1 and the maximum arity of the schema.
    pub target_arity: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDefinitionConfig {
    fn default() -> Self {
        RandomDefinitionConfig {
            clauses: 1,
            variables_per_clause: 5,
            target_arity: 2,
            seed: 1,
        }
    }
}

/// Generates a random Horn definition for a fresh target relation over the
/// relations of `schema`, following the protocol of Section 9.4: bodies are
/// built from randomly chosen schema relations, argument positions are
/// filled with new variables until the per-clause variable budget is
/// reached and with already-used variables afterwards, and literals are
/// added until every head variable occurs in the body.
pub fn random_definition(
    schema: &Schema,
    target_name: &str,
    config: &RandomDefinitionConfig,
) -> Definition {
    assert!(
        config.target_arity <= config.variables_per_clause,
        "target arity cannot exceed the variable budget"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let relations: Vec<_> = schema.relations().cloned().collect();
    assert!(!relations.is_empty(), "schema must declare relations");

    let mut clauses = Vec::new();
    for clause_idx in 0..config.clauses.max(1) {
        let var_name = |i: usize| format!("v{clause_idx}_{i}");
        let head_vars: Vec<String> = (0..config.target_arity).map(var_name).collect();
        let head = Atom::new(
            target_name,
            head_vars.iter().map(|v| Term::var(v.clone())).collect(),
        );

        let mut used: Vec<String> = head_vars.clone();
        let mut next_var = config.target_arity;
        let mut body: Vec<Atom> = Vec::new();

        // Keep adding literals until every head variable appears in the body
        // and the variable budget has been consumed.
        let max_literals = 4 * config.variables_per_clause;
        while body.len() < max_literals {
            let relation = &relations[rng.gen_range(0..relations.len())];
            let mut terms = Vec::with_capacity(relation.arity());
            for _ in 0..relation.arity() {
                let can_create = next_var < config.variables_per_clause;
                let create = can_create && (used.is_empty() || rng.gen_bool(0.5));
                if create {
                    let v = var_name(next_var);
                    next_var += 1;
                    used.push(v.clone());
                    terms.push(Term::var(v));
                } else {
                    let v = &used[rng.gen_range(0..used.len())];
                    terms.push(Term::var(v.clone()));
                }
            }
            body.push(Atom::new(relation.name(), terms));

            let body_vars: std::collections::BTreeSet<String> =
                body.iter().flat_map(|a| a.variables()).collect();
            let head_covered = head_vars.iter().all(|v| body_vars.contains(v));
            let budget_used = next_var >= config.variables_per_clause;
            if head_covered && budget_used {
                break;
            }
        }
        clauses.push(Clause::new(head, body));
    }
    Definition::new(target_name, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uwcse;
    use castor_logic::is_safe;

    fn denorm2_schema() -> Schema {
        let original = uwcse::original_schema();
        uwcse::to_denormalized2(&original).apply_schema(&original)
    }

    #[test]
    fn generated_definitions_are_safe() {
        let schema = denorm2_schema();
        for vars in 4..=8 {
            let def = random_definition(
                &schema,
                "target",
                &RandomDefinitionConfig {
                    clauses: 2,
                    variables_per_clause: vars,
                    target_arity: 2,
                    seed: vars as u64,
                },
            );
            assert_eq!(def.len(), 2);
            for clause in &def.clauses {
                assert!(is_safe(clause), "clause {clause} is unsafe");
            }
        }
    }

    #[test]
    fn variable_budget_is_respected() {
        let schema = denorm2_schema();
        for vars in 4..=8 {
            let def = random_definition(
                &schema,
                "target",
                &RandomDefinitionConfig {
                    clauses: 1,
                    variables_per_clause: vars,
                    target_arity: 1,
                    seed: 42 + vars as u64,
                },
            );
            assert!(def.clauses[0].distinct_variable_count() <= vars);
        }
    }

    #[test]
    fn definitions_use_schema_relations_only() {
        let schema = denorm2_schema();
        let def = random_definition(&schema, "target", &RandomDefinitionConfig::default());
        for clause in &def.clauses {
            for atom in &clause.body {
                assert!(schema.contains_relation(&atom.relation));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = denorm2_schema();
        let a = random_definition(&schema, "t", &RandomDefinitionConfig::default());
        let b = random_definition(&schema, "t", &RandomDefinitionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "target arity")]
    fn arity_larger_than_budget_is_rejected() {
        let schema = denorm2_schema();
        let _ = random_definition(
            &schema,
            "t",
            &RandomDefinitionConfig {
                target_arity: 9,
                variables_per_clause: 4,
                ..Default::default()
            },
        );
    }
}
