//! Mutation batches: the unit of change a serving layer applies to a live
//! database instance.
//!
//! A [`MutationBatch`] is an ordered list of inserts and removes across any
//! number of relations. [`DatabaseInstance::apply_batch`] applies it
//! in order (later ops see earlier ops, so an insert+remove of the same
//! tuple in one batch nets out), maintains every positional index, the
//! per-column frequency sketches behind the histogram/MCV statistics, and
//! the per-relation epoch incrementally, and reports which relations
//! actually changed — the invalidation set downstream engines use to drop
//! stale compiled plans, cached batch tries, and cached coverage results.

use crate::database::DatabaseInstance;
use crate::tuple::Tuple;
use crate::Result;
use std::collections::BTreeSet;

/// One insert or remove against a named relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationOp {
    /// Insert the tuple (duplicates are no-ops; relations are sets).
    Insert {
        /// Target relation name.
        relation: String,
        /// The tuple to insert.
        tuple: Tuple,
    },
    /// Remove the tuple (absent tuples are no-ops).
    Remove {
        /// Target relation name.
        relation: String,
        /// The tuple to remove.
        tuple: Tuple,
    },
}

impl MutationOp {
    /// The relation this op targets.
    pub fn relation(&self) -> &str {
        match self {
            MutationOp::Insert { relation, .. } | MutationOp::Remove { relation, .. } => relation,
        }
    }
}

/// An ordered batch of inserts and removes, applied atomically with respect
/// to the serving layer's job scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    ops: Vec<MutationOp>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        MutationBatch::default()
    }

    /// Appends an insert (builder style).
    pub fn insert(mut self, relation: impl Into<String>, tuple: Tuple) -> Self {
        self.ops.push(MutationOp::Insert {
            relation: relation.into(),
            tuple,
        });
        self
    }

    /// Appends a remove (builder style).
    pub fn remove(mut self, relation: impl Into<String>, tuple: Tuple) -> Self {
        self.ops.push(MutationOp::Remove {
            relation: relation.into(),
            tuple,
        });
        self
    }

    /// Appends many inserts into one relation.
    pub fn insert_all<I>(mut self, relation: &str, tuples: I) -> Self
    where
        I: IntoIterator<Item = Tuple>,
    {
        for tuple in tuples {
            self.ops.push(MutationOp::Insert {
                relation: relation.to_string(),
                tuple,
            });
        }
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[MutationOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The set of relation names the batch targets (whether or not an op
    /// ends up changing anything).
    pub fn touched_relations(&self) -> BTreeSet<String> {
        self.ops
            .iter()
            .map(|op| op.relation().to_string())
            .collect()
    }
}

/// What applying a batch actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationSummary {
    /// Tuples newly inserted (duplicates excluded).
    pub inserted: usize,
    /// Tuples actually removed (absent tuples excluded).
    pub removed: usize,
    /// Relations whose contents changed — the invalidation set for plans
    /// and caches costed against the pre-batch state.
    pub changed_relations: BTreeSet<String>,
}

impl MutationSummary {
    /// Whether the batch changed anything at all.
    pub fn changed(&self) -> bool {
        !self.changed_relations.is_empty()
    }
}

impl DatabaseInstance {
    /// Applies a mutation batch in op order, maintaining indexes and epochs
    /// incrementally. Fails fast on the first unknown relation or arity
    /// mismatch; ops before the failing one remain applied (callers that
    /// need atomicity validate the batch up front or apply to a clone).
    pub fn apply_batch(&mut self, batch: &MutationBatch) -> Result<MutationSummary> {
        let mut summary = MutationSummary::default();
        for op in batch.ops() {
            match op {
                MutationOp::Insert { relation, tuple } => {
                    if self.insert(relation, tuple.clone())? {
                        summary.inserted += 1;
                        summary.changed_relations.insert(relation.clone());
                    }
                }
                MutationOp::Remove { relation, tuple } => {
                    if self.remove(relation, tuple)? {
                        summary.removed += 1;
                        summary.changed_relations.insert(relation.clone());
                    }
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationSymbol;
    use crate::schema::Schema;

    fn db() -> DatabaseInstance {
        let mut schema = Schema::new("t");
        schema
            .add_relation(RelationSymbol::new("a", &["x"]))
            .add_relation(RelationSymbol::new("b", &["x", "y"]));
        let mut db = DatabaseInstance::empty(&schema);
        db.insert("a", Tuple::from_strs(&["1"])).unwrap();
        db.insert("b", Tuple::from_strs(&["1", "2"])).unwrap();
        db
    }

    #[test]
    fn batch_applies_in_order_and_reports_changes() {
        let mut db = db();
        let batch = MutationBatch::new()
            .insert("a", Tuple::from_strs(&["2"]))
            .insert("a", Tuple::from_strs(&["2"])) // duplicate: no-op
            .remove("b", Tuple::from_strs(&["1", "2"]))
            .remove("b", Tuple::from_strs(&["9", "9"])); // absent: no-op
        assert_eq!(batch.len(), 4);
        assert_eq!(
            batch.touched_relations(),
            ["a", "b"].iter().map(|s| s.to_string()).collect()
        );
        let summary = db.apply_batch(&batch).unwrap();
        assert_eq!(summary.inserted, 1);
        assert_eq!(summary.removed, 1);
        assert!(summary.changed());
        assert_eq!(
            summary.changed_relations,
            ["a", "b"].iter().map(|s| s.to_string()).collect()
        );
        assert_eq!(db.relation("a").unwrap().len(), 2);
        assert!(db.relation("b").unwrap().is_empty());
    }

    #[test]
    fn noop_batch_changes_nothing() {
        let mut db = db();
        let epochs = db.epochs();
        let batch = MutationBatch::new()
            .insert("a", Tuple::from_strs(&["1"]))
            .remove("b", Tuple::from_strs(&["7", "7"]));
        let summary = db.apply_batch(&batch).unwrap();
        assert!(!summary.changed());
        assert_eq!(db.epochs(), epochs);
    }

    #[test]
    fn insert_then_remove_nets_out_in_one_batch() {
        let mut db = db();
        let batch = MutationBatch::new()
            .insert("a", Tuple::from_strs(&["9"]))
            .remove("a", Tuple::from_strs(&["9"]));
        let summary = db.apply_batch(&batch).unwrap();
        assert_eq!((summary.inserted, summary.removed), (1, 1));
        assert!(!db.contains("a", &Tuple::from_strs(&["9"])));
    }

    #[test]
    fn unknown_relation_fails() {
        let mut db = db();
        let batch = MutationBatch::new().insert("missing", Tuple::from_strs(&["1"]));
        assert!(db.apply_batch(&batch).is_err());
    }

    #[test]
    fn insert_all_builder_appends_every_tuple() {
        let mut db = db();
        let batch = MutationBatch::new()
            .insert_all("a", (2..5).map(|i| Tuple::from_strs(&[&i.to_string()])));
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let summary = db.apply_batch(&batch).unwrap();
        assert_eq!(summary.inserted, 3);
    }
}
