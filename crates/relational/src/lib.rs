//! # castor-relational
//!
//! An in-memory relational database engine that serves as the substrate for
//! the Castor relational-learning system (Picado et al., *Schema Independent
//! Relational Learning*, 2017).
//!
//! The paper runs Castor on top of the in-memory RDBMS VoltDB; this crate is
//! the equivalent substrate built from scratch: relation symbols with named
//! attribute sorts, schemas with functional and inclusion dependencies,
//! database instances with per-attribute hash indexes, and the relational
//! operators (projection, selection, natural join) needed both by the
//! learning algorithms and by the schema (de)composition transformations.
//!
//! ## Quick tour
//!
//! ```
//! use castor_relational::{Schema, RelationSymbol, DatabaseInstance, Value, Tuple};
//!
//! let mut schema = Schema::new("uwcse");
//! schema.add_relation(RelationSymbol::new("student", &["stud"]));
//! schema.add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]));
//!
//! let mut db = DatabaseInstance::empty(&schema);
//! db.insert("student", Tuple::from_strs(&["alice"])).unwrap();
//! db.insert("inPhase", Tuple::from_strs(&["alice", "prelim"])).unwrap();
//!
//! assert_eq!(db.relation("student").unwrap().len(), 1);
//! let hits = db.tuples_containing(&Value::str("alice"));
//! assert_eq!(hits.len(), 2);
//! ```

pub mod attribute;
pub mod constraint;
pub mod database;
pub mod error;
pub mod instance;
pub mod mutation;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use attribute::{AttrName, Sort};
pub use constraint::{Constraint, FunctionalDependency, InclusionDependency};
pub use database::DatabaseInstance;
pub use error::RelationalError;
pub use instance::{
    ColumnStatistics, HistogramBucket, RelationInstance, RelationStatistics,
    HISTOGRAM_BUCKET_TARGET, MCV_TARGET,
};
pub use mutation::{MutationBatch, MutationOp, MutationSummary};
pub use ops::{natural_join, natural_join_all, project, select_eq};
pub use relation::RelationSymbol;
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::Value;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationalError>;
