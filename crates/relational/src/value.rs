//! Constant values stored in database tuples.
//!
//! The paper fixes a countably infinite domain of constants `D`. We model it
//! with a small enum covering the value kinds actually needed by the
//! benchmark datasets (symbolic identifiers, integers) while keeping cheap
//! clones: symbolic values are reference-counted so that tuples, indexes,
//! ground bottom-clauses and substitutions can share the same allocation.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A constant from the database domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A symbolic constant such as `"alice"` or `"post_generals"`.
    Str(Arc<str>),
    /// An integer constant such as a year-in-program or a bond type.
    Int(i64),
}

impl Value {
    /// Creates a symbolic constant.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Creates an integer constant.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the symbolic content if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Returns the integer content if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// A canonical textual rendering used for display and for deriving fresh
    /// variable names during bottom-clause construction.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Int(i) => i.to_string(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Integers sort before strings; the order is arbitrary but total.
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_ne!(Value::str("abc"), Value::str("abd"));
    }

    #[test]
    fn int_and_string_are_distinct() {
        assert_ne!(Value::int(1), Value::str("1"));
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(3),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(3),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn values_hash_consistently() {
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        set.insert(Value::str("x"));
        set.insert(Value::int(7));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn render_and_display_agree() {
        for v in [Value::str("hello"), Value::int(-42)] {
            assert_eq!(v.render(), format!("{v}"));
        }
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = "abc".into();
        assert_eq!(v, Value::str("abc"));
        let v: Value = 9i64.into();
        assert_eq!(v, Value::int(9));
        let v: Value = String::from("s").into();
        assert_eq!(v.as_str(), Some("s"));
        assert_eq!(v.as_int(), None);
        assert_eq!(Value::int(3).as_int(), Some(3));
    }
}
