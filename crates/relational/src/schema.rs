//! Schemas: a set of relation symbols plus a set of constraints.

use crate::attribute::AttrName;
use crate::constraint::{Constraint, FunctionalDependency, InclusionDependency};
use crate::error::RelationalError;
use crate::relation::RelationSymbol;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// A schema `R = (R, Σ)`: a finite set of relation symbols and a finite set
/// of constraints (Section 2.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    relations: BTreeMap<String, RelationSymbol>,
    constraints: Vec<Constraint>,
}

impl Schema {
    /// Creates an empty schema with the given name (e.g. `"uwcse-original"`).
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            relations: BTreeMap::new(),
            constraints: Vec::new(),
        }
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a relation symbol. Panics if the relation is already declared;
    /// use [`Schema::try_add_relation`] for a fallible variant.
    pub fn add_relation(&mut self, rel: RelationSymbol) -> &mut Self {
        self.try_add_relation(rel).expect("duplicate relation");
        self
    }

    /// Adds a relation symbol, failing if the name is already used.
    pub fn try_add_relation(&mut self, rel: RelationSymbol) -> Result<&mut Self> {
        if self.relations.contains_key(rel.name()) {
            return Err(RelationalError::DuplicateRelation(rel.name().to_string()));
        }
        self.relations.insert(rel.name().to_string(), rel);
        Ok(self)
    }

    /// Removes a relation symbol and every constraint mentioning it.
    /// Returns the removed symbol if it existed.
    pub fn remove_relation(&mut self, name: &str) -> Option<RelationSymbol> {
        let removed = self.relations.remove(name);
        if removed.is_some() {
            self.constraints.retain(|c| match c {
                Constraint::Fd(fd) => fd.relation != name,
                Constraint::Ind(ind) => !ind.mentions(name),
            });
        }
        removed
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: impl Into<Constraint>) -> &mut Self {
        self.constraints.push(c.into());
        self
    }

    /// Adds a functional dependency.
    pub fn add_fd(&mut self, fd: FunctionalDependency) -> &mut Self {
        self.add_constraint(Constraint::Fd(fd))
    }

    /// Adds an inclusion dependency.
    pub fn add_ind(&mut self, ind: InclusionDependency) -> &mut Self {
        self.add_constraint(Constraint::Ind(ind))
    }

    /// Looks up a relation symbol by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSymbol> {
        self.relations.get(name)
    }

    /// Looks up a relation symbol, returning an error for unknown names.
    pub fn require_relation(&self, name: &str) -> Result<&RelationSymbol> {
        self.relation(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Whether the schema declares `name`.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over relation symbols in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSymbol> {
        self.relations.values()
    }

    /// Relation names in name order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Number of relation symbols.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// All functional dependencies.
    pub fn fds(&self) -> impl Iterator<Item = &FunctionalDependency> {
        self.constraints.iter().filter_map(|c| c.as_fd())
    }

    /// All inclusion dependencies (both subset-form and with-equality).
    pub fn inds(&self) -> impl Iterator<Item = &InclusionDependency> {
        self.constraints.iter().filter_map(|c| c.as_ind())
    }

    /// All INDs with equality.
    pub fn equality_inds(&self) -> Vec<&InclusionDependency> {
        self.inds().filter(|i| i.with_equality).collect()
    }

    /// The INDs (of any form) in which `relation` participates.
    pub fn inds_of(&self, relation: &str) -> Vec<&InclusionDependency> {
        self.inds().filter(|i| i.mentions(relation)).collect()
    }

    /// The INDs with equality in which `relation` participates.
    pub fn equality_inds_of(&self, relation: &str) -> Vec<&InclusionDependency> {
        self.inds()
            .filter(|i| i.with_equality && i.mentions(relation))
            .collect()
    }

    /// Positions (within `relation`'s sort) of the attribute list `attrs`.
    pub fn attr_positions(&self, relation: &str, attrs: &[AttrName]) -> Result<Vec<usize>> {
        let rel = self.require_relation(relation)?;
        attrs
            .iter()
            .map(|a| {
                rel.attr_position(a)
                    .ok_or_else(|| RelationalError::UnknownAttribute {
                        relation: relation.to_string(),
                        attribute: a.as_str().to_string(),
                    })
            })
            .collect()
    }

    /// Validates that every constraint mentions only declared relations and
    /// attributes. Returns the first problem found.
    pub fn validate(&self) -> Result<()> {
        for c in &self.constraints {
            match c {
                Constraint::Fd(fd) => {
                    self.attr_positions(&fd.relation, &fd.lhs)?;
                    self.attr_positions(&fd.relation, &fd.rhs)?;
                }
                Constraint::Ind(ind) => {
                    self.attr_positions(&ind.lhs_relation, &ind.lhs_attrs)?;
                    self.attr_positions(&ind.rhs_relation, &ind.rhs_attrs)?;
                }
            }
        }
        Ok(())
    }

    /// Total number of attributes across all relations; a rough size measure
    /// used in reports.
    pub fn total_arity(&self) -> usize {
        self.relations.values().map(|r| r.arity()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} {{", self.name)?;
        for r in self.relations.values() {
            writeln!(f, "  {r}")?;
        }
        for c in &self.constraints {
            writeln!(f, "  constraint {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uwcse_original() -> Schema {
        let mut s = Schema::new("uwcse-original");
        s.add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_relation(RelationSymbol::new("yearsInProgram", &["stud", "years"]))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "inPhase",
                &["stud"],
            ))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "yearsInProgram",
                &["stud"],
            ));
        s
    }

    #[test]
    fn add_and_lookup_relations() {
        let s = uwcse_original();
        assert_eq!(s.relation_count(), 3);
        assert!(s.contains_relation("inPhase"));
        assert!(s.relation("professor").is_none());
        assert!(s.require_relation("nope").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = Schema::new("t");
        s.add_relation(RelationSymbol::new("r", &["a"]));
        assert_eq!(
            s.try_add_relation(RelationSymbol::new("r", &["b"]))
                .unwrap_err(),
            RelationalError::DuplicateRelation("r".into())
        );
    }

    #[test]
    fn equality_inds_filtering() {
        let mut s = uwcse_original();
        s.add_ind(InclusionDependency::subset(
            "inPhase",
            &["stud"],
            "student",
            &["stud"],
        ));
        assert_eq!(s.equality_inds().len(), 2);
        assert_eq!(s.inds_of("inPhase").len(), 2);
        assert_eq!(s.equality_inds_of("yearsInProgram").len(), 1);
    }

    #[test]
    fn validation_detects_unknown_attribute() {
        let mut s = uwcse_original();
        assert!(s.validate().is_ok());
        s.add_fd(FunctionalDependency::new(
            "student",
            &["stud"],
            &["nonexistent"],
        ));
        assert!(matches!(
            s.validate(),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn remove_relation_drops_its_constraints() {
        let mut s = uwcse_original();
        s.remove_relation("inPhase");
        assert_eq!(s.relation_count(), 2);
        assert_eq!(s.inds().count(), 1);
    }

    #[test]
    fn attr_positions_resolve_in_order() {
        let s = uwcse_original();
        let pos = s
            .attr_positions("inPhase", &[AttrName::new("phase"), AttrName::new("stud")])
            .unwrap();
        assert_eq!(pos, vec![1, 0]);
    }
}
