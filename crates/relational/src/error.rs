//! Error type for the relational engine.

use std::fmt;

/// Errors raised by schema and instance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation name was not found in the schema or instance.
    UnknownRelation(String),
    /// An attribute name was not found in a relation's sort.
    UnknownAttribute {
        /// The relation searched.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A tuple's arity does not match the relation's sort.
    ArityMismatch {
        /// The relation being inserted into.
        relation: String,
        /// The arity the relation expects.
        expected: usize,
        /// The arity of the offending tuple.
        actual: usize,
    },
    /// A constraint does not hold over an instance.
    ConstraintViolation(String),
    /// A relation was declared twice in a schema.
    DuplicateRelation(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch inserting into `{relation}`: expected {expected}, got {actual}"
            ),
            RelationalError::ConstraintViolation(msg) => write!(f, "constraint violation: {msg}"),
            RelationalError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_helpful_messages() {
        let e = RelationalError::ArityMismatch {
            relation: "student".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("student"));
        assert!(e.to_string().contains("expected 3"));
        let e = RelationalError::UnknownAttribute {
            relation: "r".into(),
            attribute: "a".into(),
        };
        assert!(e.to_string().contains("no attribute"));
    }
}
