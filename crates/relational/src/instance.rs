//! Relation instances with per-attribute hash indexes.
//!
//! Bottom-clause construction (Section 6.1 / 7.1 of the paper) repeatedly
//! asks "which tuples of relation `R` contain constant `c`?" and "which
//! tuples of `R` agree with tuple `t` on attribute set `X`?". Both queries
//! are answered from hash indexes maintained on every attribute position,
//! which is the role the in-memory RDBMS (VoltDB) plays in the paper's
//! implementation.

use crate::error::RelationalError;
use crate::relation::RelationSymbol;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{HashMap, HashSet};

/// Selectivity statistics for one relation instance, read off the hash
/// indexes in O(arity): cardinality and the number of distinct values per
/// attribute position. The evaluation engine uses these to choose join
/// orders once per clause instead of re-ranking literals at every
/// backtracking node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStatistics {
    /// Number of tuples in the instance.
    pub cardinality: usize,
    /// Number of distinct values at each attribute position.
    pub distinct_per_position: Vec<usize>,
}

impl RelationStatistics {
    /// Expected number of tuples matching an equality selection on `pos`
    /// (cardinality divided by the distinct count; the classic uniform
    /// selectivity estimate).
    pub fn expected_matches(&self, pos: usize) -> f64 {
        match self.distinct_per_position.get(pos) {
            Some(&d) if d > 0 => self.cardinality as f64 / d as f64,
            _ => self.cardinality as f64,
        }
    }
}

/// An instance of a single relation symbol: a set of tuples plus hash
/// indexes on every attribute position.
///
/// Every successful mutation ([`RelationInstance::insert`] /
/// [`RelationInstance::remove`]) maintains the indexes incrementally and
/// bumps the instance's *epoch* — a monotonic per-relation version counter
/// that lets downstream consumers (compiled clause plans, coverage caches)
/// detect that results costed or computed against an older state of this
/// relation are stale.
#[derive(Debug, Clone)]
pub struct RelationInstance {
    symbol: RelationSymbol,
    tuples: Vec<Tuple>,
    /// `indexes[pos][value]` = row ids of tuples whose `pos`-th value is `value`.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
    /// Set of tuples for O(1) duplicate elimination (set semantics).
    present: HashSet<Tuple>,
    /// Monotonic mutation counter, bumped on every successful insert/remove.
    epoch: u64,
}

impl RelationInstance {
    /// Creates an empty instance of the given relation symbol.
    pub fn empty(symbol: RelationSymbol) -> Self {
        let arity = symbol.arity();
        RelationInstance {
            symbol,
            tuples: Vec::new(),
            indexes: vec![HashMap::new(); arity],
            present: HashSet::new(),
            epoch: 0,
        }
    }

    /// The instance's mutation epoch: 0 at creation, bumped by every
    /// successful insert or remove. Clones inherit the epoch, so two
    /// snapshots of the same lineage compare meaningfully.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The relation symbol this instance belongs to.
    pub fn symbol(&self) -> &RelationSymbol {
        &self.symbol
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        self.symbol.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple. Duplicate tuples are ignored (relations are sets).
    /// Returns `true` if the tuple was newly inserted.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.symbol.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.symbol.arity(),
                actual: tuple.arity(),
            });
        }
        if self.present.contains(&tuple) {
            return Ok(false);
        }
        let row = self.tuples.len();
        for (pos, value) in tuple.iter().enumerate() {
            self.indexes[pos]
                .entry(value.clone())
                .or_default()
                .push(row);
        }
        self.present.insert(tuple.clone());
        self.tuples.push(tuple);
        self.epoch += 1;
        Ok(true)
    }

    /// Removes a tuple, maintaining every positional index incrementally
    /// (the removed row's posting entries are dropped and the last row is
    /// swapped into its slot, so removal costs O(arity × posting list)
    /// rather than a rebuild). Returns `true` if the tuple was present.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        if tuple.arity() != self.symbol.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.symbol.arity(),
                actual: tuple.arity(),
            });
        }
        if !self.present.remove(tuple) {
            return Ok(false);
        }
        let row = match tuple.iter().next() {
            // Locate the row through the first position's posting list.
            Some(first) => self.indexes[0]
                .get(first)
                .and_then(|rows| rows.iter().copied().find(|&r| self.tuples[r] == *tuple))
                .expect("present tuple must be indexed"),
            // Zero-arity relation: the single possible tuple is row 0.
            None => 0,
        };
        for (pos, value) in tuple.iter().enumerate() {
            let list = self.indexes[pos]
                .get_mut(value)
                .expect("present tuple must be indexed at every position");
            list.retain(|&r| r != row);
            if list.is_empty() {
                self.indexes[pos].remove(value);
            }
        }
        let last = self.tuples.len() - 1;
        if row != last {
            // Re-point the swapped-in last row's posting entries at `row`.
            let moved = self.tuples[last].clone();
            for (pos, value) in moved.iter().enumerate() {
                for r in self.indexes[pos]
                    .get_mut(value)
                    .expect("resident tuple must be indexed")
                {
                    if *r == last {
                        *r = row;
                    }
                }
            }
        }
        self.tuples.swap_remove(row);
        self.epoch += 1;
        Ok(true)
    }

    /// Whether the instance contains exactly this tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.present.contains(tuple)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Tuples whose value at `pos` equals `value` (index lookup).
    pub fn select_eq(&self, pos: usize, value: &Value) -> Vec<&Tuple> {
        match self.indexes.get(pos).and_then(|idx| idx.get(value)) {
            Some(rows) => rows.iter().map(|&r| &self.tuples[r]).collect(),
            None => Vec::new(),
        }
    }

    /// Tuples that agree with `key` on the attribute positions `positions`
    /// (a multi-column index lookup implemented by probing the most
    /// selective single-column index and post-filtering).
    pub fn select_on_positions(&self, positions: &[usize], key: &[Value]) -> Vec<&Tuple> {
        assert_eq!(
            positions.len(),
            key.len(),
            "key length must match positions"
        );
        if positions.is_empty() {
            return self.tuples.iter().collect();
        }
        // Probe the column whose posting list is shortest.
        let mut best: Option<(usize, &Vec<usize>)> = None;
        for (i, (&pos, value)) in positions.iter().zip(key.iter()).enumerate() {
            match self.indexes.get(pos).and_then(|idx| idx.get(value)) {
                Some(rows) => {
                    if best.is_none_or(|(_, b)| rows.len() < b.len()) {
                        best = Some((i, rows));
                    }
                }
                None => return Vec::new(),
            }
        }
        let (_, rows) = best.expect("non-empty positions");
        rows.iter()
            .map(|&r| &self.tuples[r])
            .filter(|t| {
                positions
                    .iter()
                    .zip(key.iter())
                    .all(|(&pos, v)| t.value(pos) == v)
            })
            .collect()
    }

    /// Tuples containing `value` at *any* position. Used by bottom-clause
    /// construction to pull in every tuple mentioning a constant seen so far.
    pub fn tuples_containing(&self, value: &Value) -> Vec<&Tuple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for idx in &self.indexes {
            if let Some(rows) = idx.get(value) {
                for &r in rows {
                    if seen.insert(r) {
                        out.push(&self.tuples[r]);
                    }
                }
            }
        }
        out
    }

    /// The projection `π_positions` of the instance, as a set of tuples.
    pub fn project(&self, positions: &[usize]) -> HashSet<Tuple> {
        self.tuples.iter().map(|t| t.project(positions)).collect()
    }

    /// The set of distinct values appearing at attribute position `pos`.
    pub fn active_domain_at(&self, pos: usize) -> HashSet<Value> {
        self.indexes
            .get(pos)
            .map(|idx| idx.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// The set of distinct values appearing anywhere in the instance.
    pub fn active_domain(&self) -> HashSet<Value> {
        let mut out = HashSet::new();
        for t in &self.tuples {
            out.extend(t.iter().cloned());
        }
        out
    }

    /// Snapshot of the instance's selectivity statistics, computed from the
    /// maintained indexes (no data scan).
    pub fn statistics(&self) -> RelationStatistics {
        RelationStatistics {
            cardinality: self.tuples.len(),
            distinct_per_position: self.indexes.iter().map(|idx| idx.len()).collect(),
        }
    }

    /// Checks the functional dependency `lhs → rhs` (given as attribute
    /// positions) over this instance.
    pub fn satisfies_fd(&self, lhs: &[usize], rhs: &[usize]) -> bool {
        let mut seen: HashMap<Tuple, Tuple> = HashMap::new();
        for t in &self.tuples {
            let key = t.project(lhs);
            let val = t.project(rhs);
            match seen.get(&key) {
                Some(existing) if existing != &val => return false,
                Some(_) => {}
                None => {
                    seen.insert(key, val);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta_instance() -> RelationInstance {
        let mut inst = RelationInstance::empty(RelationSymbol::new("ta", &["crs", "stud", "term"]));
        inst.insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap();
        inst.insert(Tuple::from_strs(&["c1", "bob", "t1"])).unwrap();
        inst.insert(Tuple::from_strs(&["c2", "alice", "t2"]))
            .unwrap();
        inst
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut inst = ta_instance();
        assert!(matches!(
            inst.insert(Tuple::from_strs(&["only-two", "values"])),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut inst = ta_instance();
        let added = inst
            .insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap();
        assert!(!added);
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn select_eq_uses_index() {
        let inst = ta_instance();
        let hits = inst.select_eq(1, &Value::str("alice"));
        assert_eq!(hits.len(), 2);
        assert!(inst.select_eq(1, &Value::str("carol")).is_empty());
    }

    #[test]
    fn select_on_positions_multi_column() {
        let inst = ta_instance();
        let hits = inst.select_on_positions(&[0, 1], &[Value::str("c1"), Value::str("alice")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &Tuple::from_strs(&["c1", "alice", "t1"]));
        let empty = inst.select_on_positions(&[0, 1], &[Value::str("c2"), Value::str("bob")]);
        assert!(empty.is_empty());
    }

    #[test]
    fn tuples_containing_deduplicates_rows() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("pair", &["a", "b"]));
        inst.insert(Tuple::from_strs(&["x", "x"])).unwrap();
        inst.insert(Tuple::from_strs(&["x", "y"])).unwrap();
        let hits = inst.tuples_containing(&Value::str("x"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn projection_is_a_set() {
        let inst = ta_instance();
        let proj = inst.project(&[0]);
        assert_eq!(proj.len(), 2); // c1, c2
    }

    #[test]
    fn fd_checking() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("student", &["stud", "phase"]));
        inst.insert(Tuple::from_strs(&["alice", "prelim"])).unwrap();
        inst.insert(Tuple::from_strs(&["bob", "post"])).unwrap();
        assert!(inst.satisfies_fd(&[0], &[1]));
        inst.insert(Tuple::from_strs(&["alice", "post"])).unwrap();
        assert!(!inst.satisfies_fd(&[0], &[1]));
    }

    #[test]
    fn statistics_reflect_indexes() {
        let inst = ta_instance();
        let stats = inst.statistics();
        assert_eq!(stats.cardinality, 3);
        assert_eq!(stats.distinct_per_position, vec![2, 2, 2]);
        assert!((stats.expected_matches(0) - 1.5).abs() < 1e-9);
        // Out-of-range position falls back to the full cardinality.
        assert!((stats.expected_matches(9) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn remove_maintains_indexes_incrementally() {
        let mut inst = ta_instance();
        assert!(inst
            .remove(&Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap());
        assert_eq!(inst.len(), 2);
        assert!(!inst.contains(&Tuple::from_strs(&["c1", "alice", "t1"])));
        // Index lookups survive the swap-remove row compaction.
        assert_eq!(inst.select_eq(1, &Value::str("alice")).len(), 1);
        assert_eq!(inst.select_eq(1, &Value::str("bob")).len(), 1);
        let hits = inst.select_on_positions(&[0, 1], &[Value::str("c2"), Value::str("alice")]);
        assert_eq!(hits, vec![&Tuple::from_strs(&["c2", "alice", "t2"])]);
        // Statistics (read off the indexes) reflect the removal.
        let stats = inst.statistics();
        assert_eq!(stats.cardinality, 2);
        assert_eq!(stats.distinct_per_position, vec![2, 2, 2]);
    }

    #[test]
    fn remove_absent_tuple_is_a_noop() {
        let mut inst = ta_instance();
        let epoch = inst.epoch();
        assert!(!inst
            .remove(&Tuple::from_strs(&["c9", "zoe", "t9"]))
            .unwrap());
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.epoch(), epoch);
        assert!(matches!(
            inst.remove(&Tuple::from_strs(&["wrong", "arity"])),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn epoch_counts_successful_mutations_only() {
        let mut inst = ta_instance();
        let base = inst.epoch();
        inst.insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap(); // duplicate
        assert_eq!(inst.epoch(), base);
        inst.insert(Tuple::from_strs(&["c3", "carol", "t3"]))
            .unwrap();
        assert_eq!(inst.epoch(), base + 1);
        inst.remove(&Tuple::from_strs(&["c3", "carol", "t3"]))
            .unwrap();
        assert_eq!(inst.epoch(), base + 2);
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut inst = ta_instance();
        let t = Tuple::from_strs(&["c1", "bob", "t1"]);
        assert!(inst.remove(&t).unwrap());
        assert!(inst.insert(t.clone()).unwrap());
        assert!(inst.contains(&t));
        assert_eq!(inst.select_eq(1, &Value::str("bob")), vec![&t]);
        assert_eq!(inst.statistics(), ta_instance().statistics());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let inst = ta_instance();
        let dom = inst.active_domain();
        assert!(dom.contains(&Value::str("alice")));
        assert!(dom.contains(&Value::str("c2")));
        assert_eq!(inst.active_domain_at(2).len(), 2);
    }
}
