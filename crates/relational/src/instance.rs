//! Relation instances with per-attribute hash indexes.
//!
//! Bottom-clause construction (Section 6.1 / 7.1 of the paper) repeatedly
//! asks "which tuples of relation `R` contain constant `c`?" and "which
//! tuples of `R` agree with tuple `t` on attribute set `X`?". Both queries
//! are answered from hash indexes maintained on every attribute position,
//! which is the role the in-memory RDBMS (VoltDB) plays in the paper's
//! implementation.

use crate::error::RelationalError;
use crate::relation::RelationSymbol;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Number of most-common values kept per attribute position.
pub const MCV_TARGET: usize = 8;

/// Number of equi-depth histogram buckets kept per attribute position
/// (over the non-MCV remainder of the value distribution).
pub const HISTOGRAM_BUCKET_TARGET: usize = 8;

/// One equi-depth histogram bucket: a run of distinct values (grouped by
/// per-value tuple count) covering roughly `total tuples / bucket count`
/// rows each. Buckets are ordered by ascending per-value count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Total rows covered by the bucket's values.
    pub tuples: usize,
    /// Number of distinct values in the bucket.
    pub distinct: usize,
    /// Largest per-value tuple count inside the bucket.
    pub max_count: usize,
}

impl HistogramBucket {
    /// Average posting-list length inside the bucket.
    pub fn average_count(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.tuples as f64 / self.distinct as f64
        }
    }
}

/// Skew-aware statistics for one attribute position: the most common
/// values with their exact counts, an equi-depth histogram over the
/// remaining frequency distribution, and the exact sum of squared counts
/// (the numerator of the frequency-weighted expected-match estimate).
///
/// All fields are derived from the incrementally-maintained per-column
/// frequency sketch, so a snapshot costs O(distinct values) — no data scan
/// — and is bit-identical to one computed over a from-scratch rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStatistics {
    /// Number of distinct values at this position.
    pub distinct: usize,
    /// The most common values, count-descending (ties broken by value
    /// order), up to [`MCV_TARGET`] entries.
    pub most_common: Vec<(Value, usize)>,
    /// Equi-depth histogram over the non-MCV remainder, ascending count.
    pub histogram: Vec<HistogramBucket>,
    /// Σ count² over *all* distinct values (MCVs included).
    pub sum_squared_counts: u128,
}

impl ColumnStatistics {
    /// The exact tuple count of `value` if it is one of the most common
    /// values at this position.
    pub fn mcv_count(&self, value: &Value) -> Option<usize> {
        self.most_common
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, c)| *c)
    }

    /// Total tuples and distinct values covered by the histogram (the
    /// non-MCV remainder of the distribution).
    pub fn histogram_totals(&self) -> (usize, usize) {
        self.histogram
            .iter()
            .fold((0, 0), |(t, d), b| (t + b.tuples, d + b.distinct))
    }

    /// Expected posting-list length for an equality probe whose value is
    /// *not* in the MCV list: the average count over the histogram portion
    /// of the distribution.
    pub fn non_mcv_expected(&self) -> f64 {
        let (tuples, distinct) = self.histogram_totals();
        if distinct == 0 {
            0.0
        } else {
            tuples as f64 / distinct as f64
        }
    }

    /// Expected posting-list length when the probe value is drawn
    /// *frequency-weighted* — the right model for join-bound variables,
    /// where a hub value is exactly as over-represented among probes as it
    /// is among rows: the exact `Σ count² / n`, read off the incrementally
    /// maintained sum of squared counts (the MCV/histogram decomposition
    /// approximates the same quantity; the exact numerator is cheaper and
    /// never wrong on skewed non-MCV tails).
    pub fn expected_matches_weighted(&self, cardinality: usize) -> f64 {
        if cardinality == 0 {
            return 0.0;
        }
        self.sum_squared_counts as f64 / cardinality as f64
    }
}

/// Selectivity statistics for one relation instance, read off the hash
/// indexes and per-column frequency sketches in O(distinct values):
/// cardinality, the number of distinct values per attribute position, and
/// skew-aware per-position [`ColumnStatistics`] (most-common values plus
/// equi-depth histograms). The evaluation engine uses these to choose join
/// orders once per clause instead of re-ranking literals at every
/// backtracking node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStatistics {
    /// Number of tuples in the instance.
    pub cardinality: usize,
    /// Number of distinct values at each attribute position.
    pub distinct_per_position: Vec<usize>,
    /// Skew-aware statistics per attribute position.
    pub columns: Vec<ColumnStatistics>,
}

impl RelationStatistics {
    /// Expected number of tuples matching an equality selection on `pos`
    /// (cardinality divided by the distinct count; the classic uniform
    /// selectivity estimate).
    pub fn expected_matches(&self, pos: usize) -> f64 {
        match self.distinct_per_position.get(pos) {
            Some(&d) if d > 0 => self.cardinality as f64 / d as f64,
            _ => self.cardinality as f64,
        }
    }

    /// Skew-aware statistics for one attribute position, if in range.
    pub fn column(&self, pos: usize) -> Option<&ColumnStatistics> {
        self.columns.get(pos)
    }
}

/// The incrementally-maintained frequency sketch of one attribute
/// position: distinct values grouped by their current posting-list length,
/// plus the running sum of squared lengths. Every successful
/// insert/remove *shifts* the touched value between count groups in
/// O(log distinct), which is what makes histogram/MCV snapshots scan-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ColumnSketch {
    /// `by_count[c]` = the distinct values whose posting list holds exactly
    /// `c` rows. Values inside a group iterate in `Value` order, so every
    /// derived statistic is deterministic.
    by_count: BTreeMap<usize, BTreeSet<Value>>,
    /// Σ count² over all distinct values.
    sum_squares: u128,
}

impl ColumnSketch {
    /// Moves `value` from the `old` count group to the `new` one (0 means
    /// absent), keeping `sum_squares` exact.
    fn shift(&mut self, value: &Value, old: usize, new: usize) {
        if old > 0 {
            let group = self
                .by_count
                .get_mut(&old)
                .expect("indexed value must be sketched");
            group.remove(value);
            if group.is_empty() {
                self.by_count.remove(&old);
            }
            self.sum_squares -= (old as u128) * (old as u128);
        }
        if new > 0 {
            self.by_count.entry(new).or_default().insert(value.clone());
            self.sum_squares += (new as u128) * (new as u128);
        }
    }

    /// Projects the sketch into [`ColumnStatistics`]: the globally most
    /// common values become the MCV list, and the remainder is packed into
    /// equi-depth buckets (ascending count). O(distinct values), no data
    /// scan, deterministic.
    fn statistics(&self) -> ColumnStatistics {
        let distinct: usize = self.by_count.values().map(BTreeSet::len).sum();
        // MCVs: walk count groups descending; within a group, value order.
        let mut most_common: Vec<(Value, usize)> = Vec::with_capacity(MCV_TARGET);
        // How many values of each count group went into the MCV list (a
        // group can be cut mid-way when the MCV budget runs out).
        let mut taken: BTreeMap<usize, usize> = BTreeMap::new();
        'mcv: for (&count, values) in self.by_count.iter().rev() {
            for value in values {
                if most_common.len() == MCV_TARGET {
                    break 'mcv;
                }
                most_common.push((value.clone(), count));
                *taken.entry(count).or_default() += 1;
            }
        }
        // Equi-depth packing of the remainder, ascending count. Groups
        // share a count, so splitting one across buckets is exact.
        let mut rest: Vec<(usize, usize)> = Vec::new(); // (count, values)
        let mut rest_tuples = 0usize;
        for (&count, values) in self.by_count.iter() {
            let left = values.len() - taken.get(&count).copied().unwrap_or(0);
            if left > 0 {
                rest.push((count, left));
                rest_tuples += count * left;
            }
        }
        let mut histogram = Vec::new();
        if rest_tuples > 0 {
            let target = rest_tuples.div_ceil(HISTOGRAM_BUCKET_TARGET).max(1);
            let mut bucket = HistogramBucket {
                tuples: 0,
                distinct: 0,
                max_count: 0,
            };
            for (count, mut values) in rest {
                while values > 0 {
                    // How many values of this group fit before the bucket
                    // reaches its depth target; at least one always goes
                    // in, so the loop terminates (posting lists are never
                    // empty, so `count >= 1`).
                    let room = target.saturating_sub(bucket.tuples);
                    let fit = (room.div_ceil(count)).clamp(1, values);
                    bucket.tuples += count * fit;
                    bucket.distinct += fit;
                    bucket.max_count = bucket.max_count.max(count);
                    values -= fit;
                    if bucket.tuples >= target {
                        histogram.push(bucket);
                        bucket = HistogramBucket {
                            tuples: 0,
                            distinct: 0,
                            max_count: 0,
                        };
                    }
                }
            }
            if bucket.distinct > 0 {
                histogram.push(bucket);
            }
        }
        ColumnStatistics {
            distinct,
            most_common,
            histogram,
            sum_squared_counts: self.sum_squares,
        }
    }
}

/// An instance of a single relation symbol: a set of tuples plus hash
/// indexes on every attribute position.
///
/// Every successful mutation ([`RelationInstance::insert`] /
/// [`RelationInstance::remove`]) maintains the indexes incrementally and
/// bumps the instance's *epoch* — a monotonic per-relation version counter
/// that lets downstream consumers (compiled clause plans, coverage caches)
/// detect that results costed or computed against an older state of this
/// relation are stale.
#[derive(Debug, Clone)]
pub struct RelationInstance {
    symbol: RelationSymbol,
    tuples: Vec<Tuple>,
    /// `indexes[pos][value]` = row ids of tuples whose `pos`-th value is `value`.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
    /// Per-position frequency sketches (histogram/MCV source), maintained
    /// in lock-step with the posting lists.
    sketches: Vec<ColumnSketch>,
    /// Set of tuples for O(1) duplicate elimination (set semantics).
    present: HashSet<Tuple>,
    /// Monotonic mutation counter, bumped on every successful insert/remove.
    epoch: u64,
}

impl RelationInstance {
    /// Creates an empty instance of the given relation symbol.
    pub fn empty(symbol: RelationSymbol) -> Self {
        let arity = symbol.arity();
        RelationInstance {
            symbol,
            tuples: Vec::new(),
            indexes: vec![HashMap::new(); arity],
            sketches: vec![ColumnSketch::default(); arity],
            present: HashSet::new(),
            epoch: 0,
        }
    }

    /// The instance's mutation epoch: 0 at creation, bumped by every
    /// successful insert or remove. Clones inherit the epoch, so two
    /// snapshots of the same lineage compare meaningfully.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The relation symbol this instance belongs to.
    pub fn symbol(&self) -> &RelationSymbol {
        &self.symbol
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        self.symbol.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple. Duplicate tuples are ignored (relations are sets).
    /// Returns `true` if the tuple was newly inserted.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.symbol.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.symbol.arity(),
                actual: tuple.arity(),
            });
        }
        if self.present.contains(&tuple) {
            return Ok(false);
        }
        let row = self.tuples.len();
        for (pos, value) in tuple.iter().enumerate() {
            let list = self.indexes[pos].entry(value.clone()).or_default();
            let old = list.len();
            list.push(row);
            self.sketches[pos].shift(value, old, old + 1);
        }
        self.present.insert(tuple.clone());
        self.tuples.push(tuple);
        self.epoch += 1;
        Ok(true)
    }

    /// Removes a tuple, maintaining every positional index incrementally
    /// (the removed row's posting entries are dropped and the last row is
    /// swapped into its slot, so removal costs O(arity × posting list)
    /// rather than a rebuild). Returns `true` if the tuple was present.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        if tuple.arity() != self.symbol.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.symbol.arity(),
                actual: tuple.arity(),
            });
        }
        if !self.present.remove(tuple) {
            return Ok(false);
        }
        let row = match tuple.iter().next() {
            // Locate the row through the first position's posting list.
            Some(first) => self.indexes[0]
                .get(first)
                .and_then(|rows| rows.iter().copied().find(|&r| self.tuples[r] == *tuple))
                .expect("present tuple must be indexed"),
            // Zero-arity relation: the single possible tuple is row 0.
            None => 0,
        };
        for (pos, value) in tuple.iter().enumerate() {
            let list = self.indexes[pos]
                .get_mut(value)
                .expect("present tuple must be indexed at every position");
            let old = list.len();
            list.retain(|&r| r != row);
            self.sketches[pos].shift(value, old, old - 1);
            if list.is_empty() {
                self.indexes[pos].remove(value);
            }
        }
        let last = self.tuples.len() - 1;
        if row != last {
            // Re-point the swapped-in last row's posting entries at `row`.
            let moved = self.tuples[last].clone();
            for (pos, value) in moved.iter().enumerate() {
                for r in self.indexes[pos]
                    .get_mut(value)
                    .expect("resident tuple must be indexed")
                {
                    if *r == last {
                        *r = row;
                    }
                }
            }
        }
        self.tuples.swap_remove(row);
        self.epoch += 1;
        Ok(true)
    }

    /// Whether the instance contains exactly this tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.present.contains(tuple)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Tuples whose value at `pos` equals `value` (index lookup).
    pub fn select_eq(&self, pos: usize, value: &Value) -> Vec<&Tuple> {
        match self.indexes.get(pos).and_then(|idx| idx.get(value)) {
            Some(rows) => rows.iter().map(|&r| &self.tuples[r]).collect(),
            None => Vec::new(),
        }
    }

    /// Tuples that agree with `key` on the attribute positions `positions`
    /// (a multi-column index lookup implemented by probing the most
    /// selective single-column index and post-filtering).
    pub fn select_on_positions(&self, positions: &[usize], key: &[Value]) -> Vec<&Tuple> {
        assert_eq!(
            positions.len(),
            key.len(),
            "key length must match positions"
        );
        if positions.is_empty() {
            return self.tuples.iter().collect();
        }
        // Probe the column whose posting list is shortest.
        let mut best: Option<(usize, &Vec<usize>)> = None;
        for (i, (&pos, value)) in positions.iter().zip(key.iter()).enumerate() {
            match self.indexes.get(pos).and_then(|idx| idx.get(value)) {
                Some(rows) => {
                    if best.is_none_or(|(_, b)| rows.len() < b.len()) {
                        best = Some((i, rows));
                    }
                }
                None => return Vec::new(),
            }
        }
        let (_, rows) = best.expect("non-empty positions");
        rows.iter()
            .map(|&r| &self.tuples[r])
            .filter(|t| {
                positions
                    .iter()
                    .zip(key.iter())
                    .all(|(&pos, v)| t.value(pos) == v)
            })
            .collect()
    }

    /// Tuples containing `value` at *any* position. Used by bottom-clause
    /// construction to pull in every tuple mentioning a constant seen so far.
    pub fn tuples_containing(&self, value: &Value) -> Vec<&Tuple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for idx in &self.indexes {
            if let Some(rows) = idx.get(value) {
                for &r in rows {
                    if seen.insert(r) {
                        out.push(&self.tuples[r]);
                    }
                }
            }
        }
        out
    }

    /// The projection `π_positions` of the instance, as a set of tuples.
    pub fn project(&self, positions: &[usize]) -> HashSet<Tuple> {
        self.tuples.iter().map(|t| t.project(positions)).collect()
    }

    /// The set of distinct values appearing at attribute position `pos`.
    pub fn active_domain_at(&self, pos: usize) -> HashSet<Value> {
        self.indexes
            .get(pos)
            .map(|idx| idx.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// The set of distinct values appearing anywhere in the instance, read
    /// as the union of the positional index keys — O(Σ distinct-per-column)
    /// instead of the old O(tuples × arity) rescan.
    pub fn active_domain(&self) -> HashSet<Value> {
        let mut out = HashSet::new();
        for idx in &self.indexes {
            out.extend(idx.keys().cloned());
        }
        out
    }

    /// Number of distinct values at attribute position `pos`, read off the
    /// posting-list index (out-of-range positions report 0).
    pub fn distinct_values_at(&self, pos: usize) -> usize {
        self.indexes.get(pos).map_or(0, HashMap::len)
    }

    /// Snapshot of the instance's selectivity statistics, computed from the
    /// maintained indexes and frequency sketches (no data scan).
    pub fn statistics(&self) -> RelationStatistics {
        RelationStatistics {
            cardinality: self.tuples.len(),
            distinct_per_position: self.indexes.iter().map(|idx| idx.len()).collect(),
            columns: self.sketches.iter().map(ColumnSketch::statistics).collect(),
        }
    }

    /// Checks the functional dependency `lhs → rhs` (given as attribute
    /// positions) over this instance.
    pub fn satisfies_fd(&self, lhs: &[usize], rhs: &[usize]) -> bool {
        let mut seen: HashMap<Tuple, Tuple> = HashMap::new();
        for t in &self.tuples {
            let key = t.project(lhs);
            let val = t.project(rhs);
            match seen.get(&key) {
                Some(existing) if existing != &val => return false,
                Some(_) => {}
                None => {
                    seen.insert(key, val);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta_instance() -> RelationInstance {
        let mut inst = RelationInstance::empty(RelationSymbol::new("ta", &["crs", "stud", "term"]));
        inst.insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap();
        inst.insert(Tuple::from_strs(&["c1", "bob", "t1"])).unwrap();
        inst.insert(Tuple::from_strs(&["c2", "alice", "t2"]))
            .unwrap();
        inst
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut inst = ta_instance();
        assert!(matches!(
            inst.insert(Tuple::from_strs(&["only-two", "values"])),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut inst = ta_instance();
        let added = inst
            .insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap();
        assert!(!added);
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn select_eq_uses_index() {
        let inst = ta_instance();
        let hits = inst.select_eq(1, &Value::str("alice"));
        assert_eq!(hits.len(), 2);
        assert!(inst.select_eq(1, &Value::str("carol")).is_empty());
    }

    #[test]
    fn select_on_positions_multi_column() {
        let inst = ta_instance();
        let hits = inst.select_on_positions(&[0, 1], &[Value::str("c1"), Value::str("alice")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &Tuple::from_strs(&["c1", "alice", "t1"]));
        let empty = inst.select_on_positions(&[0, 1], &[Value::str("c2"), Value::str("bob")]);
        assert!(empty.is_empty());
    }

    #[test]
    fn tuples_containing_deduplicates_rows() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("pair", &["a", "b"]));
        inst.insert(Tuple::from_strs(&["x", "x"])).unwrap();
        inst.insert(Tuple::from_strs(&["x", "y"])).unwrap();
        let hits = inst.tuples_containing(&Value::str("x"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn projection_is_a_set() {
        let inst = ta_instance();
        let proj = inst.project(&[0]);
        assert_eq!(proj.len(), 2); // c1, c2
    }

    #[test]
    fn fd_checking() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("student", &["stud", "phase"]));
        inst.insert(Tuple::from_strs(&["alice", "prelim"])).unwrap();
        inst.insert(Tuple::from_strs(&["bob", "post"])).unwrap();
        assert!(inst.satisfies_fd(&[0], &[1]));
        inst.insert(Tuple::from_strs(&["alice", "post"])).unwrap();
        assert!(!inst.satisfies_fd(&[0], &[1]));
    }

    #[test]
    fn statistics_reflect_indexes() {
        let inst = ta_instance();
        let stats = inst.statistics();
        assert_eq!(stats.cardinality, 3);
        assert_eq!(stats.distinct_per_position, vec![2, 2, 2]);
        assert!((stats.expected_matches(0) - 1.5).abs() < 1e-9);
        // Out-of-range position falls back to the full cardinality.
        assert!((stats.expected_matches(9) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn remove_maintains_indexes_incrementally() {
        let mut inst = ta_instance();
        assert!(inst
            .remove(&Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap());
        assert_eq!(inst.len(), 2);
        assert!(!inst.contains(&Tuple::from_strs(&["c1", "alice", "t1"])));
        // Index lookups survive the swap-remove row compaction.
        assert_eq!(inst.select_eq(1, &Value::str("alice")).len(), 1);
        assert_eq!(inst.select_eq(1, &Value::str("bob")).len(), 1);
        let hits = inst.select_on_positions(&[0, 1], &[Value::str("c2"), Value::str("alice")]);
        assert_eq!(hits, vec![&Tuple::from_strs(&["c2", "alice", "t2"])]);
        // Statistics (read off the indexes) reflect the removal.
        let stats = inst.statistics();
        assert_eq!(stats.cardinality, 2);
        assert_eq!(stats.distinct_per_position, vec![2, 2, 2]);
    }

    #[test]
    fn remove_absent_tuple_is_a_noop() {
        let mut inst = ta_instance();
        let epoch = inst.epoch();
        assert!(!inst
            .remove(&Tuple::from_strs(&["c9", "zoe", "t9"]))
            .unwrap());
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.epoch(), epoch);
        assert!(matches!(
            inst.remove(&Tuple::from_strs(&["wrong", "arity"])),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn epoch_counts_successful_mutations_only() {
        let mut inst = ta_instance();
        let base = inst.epoch();
        inst.insert(Tuple::from_strs(&["c1", "alice", "t1"]))
            .unwrap(); // duplicate
        assert_eq!(inst.epoch(), base);
        inst.insert(Tuple::from_strs(&["c3", "carol", "t3"]))
            .unwrap();
        assert_eq!(inst.epoch(), base + 1);
        inst.remove(&Tuple::from_strs(&["c3", "carol", "t3"]))
            .unwrap();
        assert_eq!(inst.epoch(), base + 2);
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut inst = ta_instance();
        let t = Tuple::from_strs(&["c1", "bob", "t1"]);
        assert!(inst.remove(&t).unwrap());
        assert!(inst.insert(t.clone()).unwrap());
        assert!(inst.contains(&t));
        assert_eq!(inst.select_eq(1, &Value::str("bob")), vec![&t]);
        assert_eq!(inst.statistics(), ta_instance().statistics());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let inst = ta_instance();
        let dom = inst.active_domain();
        assert!(dom.contains(&Value::str("alice")));
        assert!(dom.contains(&Value::str("c2")));
        assert_eq!(inst.active_domain_at(2).len(), 2);
    }

    #[test]
    fn index_backed_domain_reads_match_a_full_scan() {
        // `active_domain` / `distinct_values_at` read the posting-list
        // indexes; micro-assert they agree with the brute-force tuple scan
        // they replaced.
        let mut inst = ta_instance();
        inst.remove(&Tuple::from_strs(&["c1", "bob", "t1"]))
            .unwrap();
        inst.insert(Tuple::from_strs(&["c3", "alice", "t1"]))
            .unwrap();
        let mut scanned: HashSet<Value> = HashSet::new();
        for t in inst.iter() {
            scanned.extend(t.iter().cloned());
        }
        assert_eq!(inst.active_domain(), scanned);
        for pos in 0..3 {
            let scan_distinct: HashSet<&Value> = inst.iter().map(|t| t.value(pos)).collect();
            assert_eq!(
                inst.distinct_values_at(pos),
                scan_distinct.len(),
                "position {pos}"
            );
        }
        assert_eq!(inst.distinct_values_at(9), 0);
    }

    /// Rebuilds a column-statistics snapshot by brute force from the
    /// tuples: the reference the incremental sketch must match.
    fn scan_column(inst: &RelationInstance, pos: usize) -> ColumnStatistics {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for t in inst.iter() {
            *counts.entry(t.value(pos)).or_default() += 1;
        }
        let mut sketch = ColumnSketch::default();
        for (value, count) in counts {
            sketch.shift(value, 0, count);
        }
        sketch.statistics()
    }

    #[test]
    fn column_statistics_capture_skew() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("link", &["src", "dst"]));
        // A hub value with 30 rows against 20 singleton values.
        for i in 0..30 {
            inst.insert(Tuple::from_strs(&["hub", &format!("d{i}")]))
                .unwrap();
        }
        for i in 0..20 {
            inst.insert(Tuple::from_strs(&[&format!("s{i}"), &format!("e{i}")]))
                .unwrap();
        }
        let stats = inst.statistics();
        let col = stats.column(0).unwrap();
        assert_eq!(col.distinct, 21);
        assert_eq!(col.mcv_count(&Value::str("hub")), Some(30));
        assert_eq!(col.mcv_count(&Value::str("s0")), Some(1));
        assert_eq!(col.mcv_count(&Value::str("nope")), None);
        assert_eq!(col.sum_squared_counts, 30 * 30 + 20);
        // Uniform estimate says ~2.4 rows per probe; the weighted estimate
        // sees the hub (exact value Σc²/n = 920/50 = 18.4).
        assert!(stats.expected_matches(0) < 3.0);
        let weighted = col.expected_matches_weighted(stats.cardinality);
        assert!(
            (weighted - 18.4).abs() < 1e-9,
            "weighted estimate {weighted} should equal exact Σc²/n"
        );
        // Non-MCV probes expect ~1 row (the histogram holds singletons).
        assert!((col.non_mcv_expected() - 1.0).abs() < 1e-9);
        // Histogram covers exactly the non-MCV remainder.
        let (tuples, distinct) = col.histogram_totals();
        assert_eq!(distinct, 21 - col.most_common.len());
        assert_eq!(tuples + 30 + 7, stats.cardinality); // hub + 7 MCV singletons
    }

    #[test]
    fn incremental_sketch_matches_scan_after_mutations() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("r", &["a", "b"]));
        let keys = ["k0", "k1", "k2", "k3", "k4"];
        // Deterministic mixed churn: inserts with collisions, then removes.
        for i in 0..40usize {
            inst.insert(Tuple::from_strs(&[keys[i * i % 5], &format!("v{}", i % 7)]))
                .unwrap();
        }
        for i in (0..40usize).step_by(3) {
            let t = Tuple::from_strs(&[keys[i * i % 5], &format!("v{}", i % 7)]);
            inst.remove(&t).ok();
        }
        for pos in 0..2 {
            assert_eq!(
                inst.statistics().columns[pos],
                scan_column(&inst, pos),
                "sketch diverged from scan at position {pos}"
            );
        }
    }

    #[test]
    fn equi_depth_buckets_balance_depth() {
        let mut inst = RelationInstance::empty(RelationSymbol::new("r", &["a"]));
        // 64 distinct singleton values and no skew: every bucket should
        // cover roughly equal depth.
        for i in 0..64 {
            inst.insert(Tuple::from_strs(&[&format!("v{i:02}")]))
                .unwrap();
        }
        let col = &inst.statistics().columns[0];
        assert_eq!(col.most_common.len(), MCV_TARGET);
        let (tuples, distinct) = col.histogram_totals();
        assert_eq!(tuples, 64 - MCV_TARGET);
        assert_eq!(distinct, 64 - MCV_TARGET);
        assert!(col.histogram.len() <= HISTOGRAM_BUCKET_TARGET);
        for bucket in &col.histogram {
            assert!(bucket.tuples >= 1);
            assert_eq!(bucket.max_count, 1);
        }
    }
}
