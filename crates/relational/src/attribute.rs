//! Attribute names and relation sorts.
//!
//! Each relation symbol `R` is associated with a set of attribute symbols
//! `sort(R)` (Section 2.2 of the paper). We keep the sort as an *ordered*
//! list of attribute names because tuples are positional, but expose
//! set-style operations (intersection, containment) which the
//! (de)composition machinery relies on.

use std::fmt;

/// The name of an attribute, e.g. `stud` or `crs`.
///
/// Attribute names are compared case-sensitively and are cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(pub String);

impl AttrName {
    /// Creates a new attribute name.
    pub fn new(name: impl Into<String>) -> Self {
        AttrName(name.into())
    }

    /// Returns the attribute name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName(s)
    }
}

/// The ordered attribute list (`sort`) of a relation symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sort {
    attrs: Vec<AttrName>,
}

impl Sort {
    /// Builds a sort from attribute names. Panics if an attribute repeats:
    /// the relational model of the paper assumes distinct attribute symbols
    /// per relation.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<AttrName>,
    {
        let attrs: Vec<AttrName> = attrs.into_iter().map(Into::into).collect();
        let mut seen = std::collections::HashSet::new();
        for a in &attrs {
            assert!(seen.insert(a.clone()), "duplicate attribute {a} in sort");
        }
        Sort { attrs }
    }

    /// Number of attributes (the arity of the relation).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the sort has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over attribute names in positional order.
    pub fn iter(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter()
    }

    /// The attribute at position `i`.
    pub fn attr(&self, i: usize) -> &AttrName {
        &self.attrs[i]
    }

    /// Position of an attribute name, if present.
    pub fn position(&self, name: &AttrName) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Positions of all of `names` (in the order given). Returns `None` if
    /// any name is missing.
    pub fn positions(&self, names: &[AttrName]) -> Option<Vec<usize>> {
        names.iter().map(|n| self.position(n)).collect()
    }

    /// Whether the sort contains `name`.
    pub fn contains(&self, name: &AttrName) -> bool {
        self.position(name).is_some()
    }

    /// Attributes shared with `other`, in this sort's positional order.
    pub fn intersection(&self, other: &Sort) -> Vec<AttrName> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// Whether every attribute of `other` appears in this sort.
    pub fn contains_all(&self, other: &Sort) -> bool {
        other.iter().all(|a| self.contains(a))
    }

    /// Union of attributes preserving this sort's order first, then the
    /// remaining attributes of `other` in their order. Used when composing
    /// relations via natural join.
    pub fn union(&self, other: &Sort) -> Sort {
        let mut attrs = self.attrs.clone();
        for a in other.iter() {
            if !self.contains(a) {
                attrs.push(a.clone());
            }
        }
        Sort { attrs }
    }

    /// The underlying attribute vector.
    pub fn as_slice(&self) -> &[AttrName] {
        &self.attrs
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.attrs.iter().map(|a| a.as_str()).collect();
        write!(f, "({})", names.join(","))
    }
}

impl<'a> IntoIterator for &'a Sort {
    type Item = &'a AttrName;
    type IntoIter = std::slice::Iter<'a, AttrName>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort(names: &[&str]) -> Sort {
        Sort::new(names.iter().copied())
    }

    #[test]
    fn arity_and_positions() {
        let s = sort(&["crs", "stud", "term"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position(&"stud".into()), Some(1));
        assert_eq!(s.position(&"missing".into()), None);
        assert_eq!(
            s.positions(&["term".into(), "crs".into()]),
            Some(vec![2, 0])
        );
        assert_eq!(s.positions(&["term".into(), "nope".into()]), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attributes_rejected() {
        let _ = sort(&["a", "a"]);
    }

    #[test]
    fn intersection_preserves_left_order() {
        let a = sort(&["id", "title", "year"]);
        let b = sort(&["year", "id"]);
        assert_eq!(
            a.intersection(&b),
            vec![AttrName::new("id"), AttrName::new("year")]
        );
    }

    #[test]
    fn union_appends_new_attributes() {
        let a = sort(&["stud", "phase"]);
        let b = sort(&["stud", "years"]);
        let u = a.union(&b);
        assert_eq!(u.arity(), 3);
        assert_eq!(u.attr(2), &AttrName::new("years"));
    }

    #[test]
    fn contains_all_is_subset_check() {
        let a = sort(&["a", "b", "c"]);
        let b = sort(&["c", "a"]);
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
    }

    #[test]
    fn display_renders_parenthesized_list() {
        assert_eq!(sort(&["x", "y"]).to_string(), "(x,y)");
    }
}
