//! Database instances: a schema together with an instance for every
//! relation symbol, plus cross-relation lookups and constraint checking.

use crate::constraint::{Constraint, InclusionDependency};
use crate::error::RelationalError;
use crate::instance::RelationInstance;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An instance `I` of a schema `R`: a mapping that associates each relation
/// symbol with a relation instance satisfying the schema's constraints.
///
/// Relation instances are held behind `Arc`, so cloning a database is a
/// shallow copy-on-write snapshot: mutating one relation of a clone deep
/// copies only that relation (and only when another snapshot still shares
/// it). Long-lived engines take cheap snapshots per evaluation while a
/// serving layer keeps mutating the live instance.
#[derive(Debug, Clone)]
pub struct DatabaseInstance {
    schema: Schema,
    relations: BTreeMap<String, Arc<RelationInstance>>,
}

impl DatabaseInstance {
    /// Creates an empty instance of `schema`.
    pub fn empty(schema: &Schema) -> Self {
        let relations = schema
            .relations()
            .map(|r| {
                (
                    r.name().to_string(),
                    Arc::new(RelationInstance::empty(r.clone())),
                )
            })
            .collect();
        DatabaseInstance {
            schema: schema.clone(),
            relations,
        }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The named relation as a mutable reference, copy-on-write: if another
    /// snapshot still shares the instance it is deep-cloned first.
    fn relation_mut(&mut self, relation: &str) -> Result<&mut RelationInstance> {
        self.relations
            .get_mut(relation)
            .map(Arc::make_mut)
            .ok_or_else(|| RelationalError::UnknownRelation(relation.to_string()))
    }

    /// Inserts a tuple into the named relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        self.relation_mut(relation)?.insert(tuple)
    }

    /// Inserts many tuples into the named relation.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let inst = self.relation_mut(relation)?;
        let mut added = 0;
        for t in tuples {
            if inst.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Removes a tuple from the named relation. Returns `true` if the tuple
    /// was present.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        self.relation_mut(relation)?.remove(tuple)
    }

    /// Removes many tuples from the named relation, returning how many were
    /// actually present.
    pub fn remove_all<'a, I>(&mut self, relation: &str, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        let inst = self.relation_mut(relation)?;
        let mut dropped = 0;
        for t in tuples {
            if inst.remove(t)? {
                dropped += 1;
            }
        }
        Ok(dropped)
    }

    /// The mutation epoch of one relation (see [`RelationInstance::epoch`]).
    pub fn epoch_of(&self, relation: &str) -> Option<u64> {
        self.relations.get(relation).map(|r| r.epoch())
    }

    /// Every relation's mutation epoch, in name order.
    pub fn epochs(&self) -> BTreeMap<String, u64> {
        self.relations
            .iter()
            .map(|(name, inst)| (name.clone(), inst.epoch()))
            .collect()
    }

    /// Looks up the instance of a relation.
    pub fn relation(&self, name: &str) -> Option<&RelationInstance> {
        self.relations.get(name).map(Arc::as_ref)
    }

    /// Looks up the instance of a relation, failing for unknown names.
    pub fn require_relation(&self, name: &str) -> Result<&RelationInstance> {
        self.relation(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Iterates over all relation instances in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationInstance> {
        self.relations.values().map(Arc::as_ref)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Whether any relation contains exactly this tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relation(relation).is_some_and(|r| r.contains(tuple))
    }

    /// Every `(relation name, tuple)` pair in the database whose tuple
    /// contains the constant `value`. This is the workhorse query of
    /// bottom-clause construction.
    pub fn tuples_containing(&self, value: &Value) -> Vec<(&str, &Tuple)> {
        let mut out = Vec::new();
        for (name, inst) in &self.relations {
            for t in inst.tuples_containing(value) {
                out.push((name.as_str(), t));
            }
        }
        out
    }

    /// Checks whether a single inclusion dependency holds over this instance.
    pub fn satisfies_ind(&self, ind: &InclusionDependency) -> Result<bool> {
        let lhs_pos = self
            .schema
            .attr_positions(&ind.lhs_relation, &ind.lhs_attrs)?;
        let rhs_pos = self
            .schema
            .attr_positions(&ind.rhs_relation, &ind.rhs_attrs)?;
        let lhs = self.require_relation(&ind.lhs_relation)?.project(&lhs_pos);
        let rhs = self.require_relation(&ind.rhs_relation)?.project(&rhs_pos);
        let forward = lhs.is_subset(&rhs);
        if ind.with_equality {
            Ok(forward && rhs.is_subset(&lhs))
        } else {
            Ok(forward)
        }
    }

    /// Checks every constraint of the schema over this instance, returning
    /// the first violation found.
    pub fn validate(&self) -> Result<()> {
        for c in self.schema.constraints() {
            match c {
                Constraint::Fd(fd) => {
                    let lhs = self.schema.attr_positions(&fd.relation, &fd.lhs)?;
                    let rhs = self.schema.attr_positions(&fd.relation, &fd.rhs)?;
                    let inst = self.require_relation(&fd.relation)?;
                    if !inst.satisfies_fd(&lhs, &rhs) {
                        return Err(RelationalError::ConstraintViolation(fd.to_string()));
                    }
                }
                Constraint::Ind(ind) => {
                    if !self.satisfies_ind(ind)? {
                        return Err(RelationalError::ConstraintViolation(ind.to_string()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-relation tuple counts, useful when reporting dataset statistics
    /// (Table 2 of the paper).
    pub fn relation_sizes(&self) -> BTreeMap<String, usize> {
        self.relations
            .iter()
            .map(|(name, inst)| (name.clone(), inst.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::FunctionalDependency;
    use crate::relation::RelationSymbol;

    fn schema() -> Schema {
        let mut s = Schema::new("test");
        s.add_relation(RelationSymbol::new("student", &["stud"]))
            .add_relation(RelationSymbol::new("inPhase", &["stud", "phase"]))
            .add_ind(InclusionDependency::equality(
                "student",
                &["stud"],
                "inPhase",
                &["stud"],
            ))
            .add_fd(FunctionalDependency::new("inPhase", &["stud"], &["phase"]));
        s
    }

    fn populated() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema());
        db.insert("student", Tuple::from_strs(&["alice"])).unwrap();
        db.insert("student", Tuple::from_strs(&["bob"])).unwrap();
        db.insert("inPhase", Tuple::from_strs(&["alice", "prelim"]))
            .unwrap();
        db.insert("inPhase", Tuple::from_strs(&["bob", "post"]))
            .unwrap();
        db
    }

    #[test]
    fn insert_and_count() {
        let db = populated();
        assert_eq!(db.total_tuples(), 4);
        assert_eq!(db.relation("student").unwrap().len(), 2);
        assert!(db.contains("inPhase", &Tuple::from_strs(&["bob", "post"])));
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = populated();
        assert!(db.insert("professor", Tuple::from_strs(&["x"])).is_err());
        assert!(db.require_relation("professor").is_err());
    }

    #[test]
    fn tuples_containing_spans_relations() {
        let db = populated();
        let hits = db.tuples_containing(&Value::str("alice"));
        assert_eq!(hits.len(), 2);
        let names: Vec<&str> = hits.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"student"));
        assert!(names.contains(&"inPhase"));
    }

    #[test]
    fn constraint_validation_passes_and_fails() {
        let mut db = populated();
        assert!(db.validate().is_ok());
        // Violate the IND with equality: a student without a phase.
        db.insert("student", Tuple::from_strs(&["carol"])).unwrap();
        assert!(matches!(
            db.validate(),
            Err(RelationalError::ConstraintViolation(_))
        ));
    }

    #[test]
    fn fd_violation_detected() {
        let mut db = populated();
        db.insert("inPhase", Tuple::from_strs(&["alice", "post"]))
            .unwrap();
        assert!(db.validate().is_err());
    }

    #[test]
    fn subset_ind_is_one_directional() {
        let mut s = Schema::new("t");
        s.add_relation(RelationSymbol::new("a", &["x"]))
            .add_relation(RelationSymbol::new("b", &["x"]));
        let mut db = DatabaseInstance::empty(&s);
        db.insert("a", Tuple::from_strs(&["1"])).unwrap();
        db.insert("b", Tuple::from_strs(&["1"])).unwrap();
        db.insert("b", Tuple::from_strs(&["2"])).unwrap();
        let subset = InclusionDependency::subset("a", &["x"], "b", &["x"]);
        let equality = InclusionDependency::equality("a", &["x"], "b", &["x"]);
        assert!(db.satisfies_ind(&subset).unwrap());
        assert!(!db.satisfies_ind(&equality).unwrap());
    }

    #[test]
    fn remove_and_epochs_track_mutations() {
        let mut db = populated();
        assert_eq!(db.epoch_of("student"), Some(2));
        assert!(db.remove("student", &Tuple::from_strs(&["alice"])).unwrap());
        assert!(!db.remove("student", &Tuple::from_strs(&["alice"])).unwrap());
        assert_eq!(db.epoch_of("student"), Some(3));
        assert_eq!(db.epoch_of("inPhase"), Some(2));
        assert_eq!(db.relation("student").unwrap().len(), 1);
        assert!(db.remove("professor", &Tuple::from_strs(&["x"])).is_err());
        let epochs = db.epochs();
        assert_eq!(epochs["student"], 3);
        assert_eq!(epochs["inPhase"], 2);
    }

    #[test]
    fn clones_are_copy_on_write_snapshots() {
        let mut db = populated();
        let snapshot = db.clone();
        db.insert("student", Tuple::from_strs(&["carol"])).unwrap();
        db.remove("inPhase", &Tuple::from_strs(&["bob", "post"]))
            .unwrap();
        // The snapshot is untouched by later mutations...
        assert_eq!(snapshot.relation("student").unwrap().len(), 2);
        assert!(snapshot.contains("inPhase", &Tuple::from_strs(&["bob", "post"])));
        assert_eq!(snapshot.epoch_of("student"), Some(2));
        // ...while the live instance advanced.
        assert_eq!(db.relation("student").unwrap().len(), 3);
        assert_eq!(db.epoch_of("student"), Some(3));
        assert_eq!(db.epoch_of("inPhase"), Some(3));
    }

    #[test]
    fn relation_sizes_reports_all() {
        let db = populated();
        let sizes = db.relation_sizes();
        assert_eq!(sizes["student"], 2);
        assert_eq!(sizes["inPhase"], 2);
    }
}
