//! Relation symbols: a name plus an attribute sort.

use crate::attribute::{AttrName, Sort};
use std::fmt;

/// A relation symbol `R` with its attribute sort `sort(R)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSymbol {
    name: String,
    sort: Sort,
}

impl RelationSymbol {
    /// Creates a relation symbol with the given attribute names.
    pub fn new<S>(name: impl Into<String>, attrs: &[S]) -> Self
    where
        S: AsRef<str>,
    {
        RelationSymbol {
            name: name.into(),
            sort: Sort::new(attrs.iter().map(|a| a.as_ref().to_string())),
        }
    }

    /// Creates a relation symbol from an existing sort.
    pub fn with_sort(name: impl Into<String>, sort: Sort) -> Self {
        RelationSymbol {
            name: name.into(),
            sort,
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's attribute sort.
    pub fn sort(&self) -> &Sort {
        &self.sort
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.sort.arity()
    }

    /// Position of an attribute within the relation, if present.
    pub fn attr_position(&self, attr: &AttrName) -> Option<usize> {
        self.sort.position(attr)
    }

    /// Attributes shared with another relation symbol. Natural join between
    /// the two relations equates exactly these attributes.
    pub fn common_attrs(&self, other: &RelationSymbol) -> Vec<AttrName> {
        self.sort.intersection(other.sort())
    }
}

impl fmt::Display for RelationSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.sort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = RelationSymbol::new("taughtBy", &["crs", "prof", "term"]);
        assert_eq!(r.name(), "taughtBy");
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attr_position(&"prof".into()), Some(1));
    }

    #[test]
    fn common_attrs_between_relations() {
        let a = RelationSymbol::new("ta", &["crs", "stud", "term"]);
        let b = RelationSymbol::new("courseLevel", &["crs", "level"]);
        assert_eq!(a.common_attrs(&b), vec![AttrName::new("crs")]);
    }

    #[test]
    fn display_includes_sort() {
        let r = RelationSymbol::new("student", &["stud"]);
        assert_eq!(r.to_string(), "student(stud)");
    }
}
