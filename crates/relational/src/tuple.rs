//! Positional tuples of constant values.

use crate::value::Value;
use std::fmt;

/// A database tuple: an ordered list of constants whose positions correspond
/// to the attribute positions of a relation's sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple of symbolic constants, convenient in tests and data
    /// generators.
    pub fn from_strs(values: &[&str]) -> Self {
        Tuple {
            values: values.iter().map(|s| Value::str(*s)).collect(),
        }
    }

    /// Number of values in the tuple (the arity).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at position `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values in positional order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Projects the tuple onto the given positions, in the given order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Whether the tuple contains the constant `v` at any position.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.iter().any(|x| x == v)
    }

    /// Appends the values of `other`, producing a wider tuple. Used when
    /// materializing joins.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", parts.join(","))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_reorders_values() {
        let t = Tuple::from_strs(&["a", "b", "c"]);
        let p = t.project(&[2, 0]);
        assert_eq!(p, Tuple::from_strs(&["c", "a"]));
    }

    #[test]
    fn contains_checks_any_position() {
        let t = Tuple::new(vec![Value::str("x"), Value::int(3)]);
        assert!(t.contains(&Value::int(3)));
        assert!(t.contains(&Value::str("x")));
        assert!(!t.contains(&Value::str("3")));
    }

    #[test]
    fn concat_widens_tuple() {
        let a = Tuple::from_strs(&["a"]);
        let b = Tuple::from_strs(&["b", "c"]);
        assert_eq!(a.concat(&b), Tuple::from_strs(&["a", "b", "c"]));
    }

    #[test]
    fn display_renders_comma_separated() {
        assert_eq!(Tuple::from_strs(&["a", "b"]).to_string(), "(a,b)");
    }

    #[test]
    fn empty_projection_is_empty_tuple() {
        let t = Tuple::from_strs(&["a", "b"]);
        assert!(t.project(&[]).is_empty());
    }
}
