//! Schema constraints: functional dependencies and inclusion dependencies.
//!
//! Inclusion dependencies (INDs) are central to the paper: Castor achieves
//! schema independence by integrating INDs — in particular INDs *with
//! equality* (`R[X] = S[X]`, i.e. both `R[X] ⊆ S[X]` and `S[X] ⊆ R[X]`) —
//! into bottom-clause construction, ARMG generalization, and negative
//! reduction (Section 7).

use crate::attribute::AttrName;
use std::fmt;

/// A functional dependency `X → Y` over a single relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    /// The relation the FD applies to.
    pub relation: String,
    /// Determinant attributes `X`.
    pub lhs: Vec<AttrName>,
    /// Dependent attributes `Y`.
    pub rhs: Vec<AttrName>,
}

impl FunctionalDependency {
    /// Creates a functional dependency `relation: lhs → rhs`.
    pub fn new<S: AsRef<str>>(relation: impl Into<String>, lhs: &[S], rhs: &[S]) -> Self {
        FunctionalDependency {
            relation: relation.into(),
            lhs: lhs.iter().map(|a| AttrName::new(a.as_ref())).collect(),
            rhs: rhs.iter().map(|a| AttrName::new(a.as_ref())).collect(),
        }
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<&str> = self.lhs.iter().map(|a| a.as_str()).collect();
        let rhs: Vec<&str> = self.rhs.iter().map(|a| a.as_str()).collect();
        write!(
            f,
            "{}: {} -> {}",
            self.relation,
            lhs.join(","),
            rhs.join(",")
        )
    }
}

/// An inclusion dependency `R[X] ⊆ S[Y]` or, when `with_equality` is set,
/// an IND with equality `R[X] = S[Y]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InclusionDependency {
    /// The left-hand relation `R`.
    pub lhs_relation: String,
    /// The projected attributes `X` of `R`.
    pub lhs_attrs: Vec<AttrName>,
    /// The right-hand relation `S`.
    pub rhs_relation: String,
    /// The projected attributes `Y` of `S`.
    pub rhs_attrs: Vec<AttrName>,
    /// Whether the IND holds in both directions (`R[X] = S[Y]`).
    pub with_equality: bool,
}

impl InclusionDependency {
    /// Creates a subset-form IND `lhs_relation[lhs_attrs] ⊆ rhs_relation[rhs_attrs]`.
    pub fn subset<S: AsRef<str>>(
        lhs_relation: impl Into<String>,
        lhs_attrs: &[S],
        rhs_relation: impl Into<String>,
        rhs_attrs: &[S],
    ) -> Self {
        let ind = InclusionDependency {
            lhs_relation: lhs_relation.into(),
            lhs_attrs: lhs_attrs
                .iter()
                .map(|a| AttrName::new(a.as_ref()))
                .collect(),
            rhs_relation: rhs_relation.into(),
            rhs_attrs: rhs_attrs
                .iter()
                .map(|a| AttrName::new(a.as_ref()))
                .collect(),
            with_equality: false,
        };
        assert_eq!(
            ind.lhs_attrs.len(),
            ind.rhs_attrs.len(),
            "IND attribute lists must have equal length"
        );
        ind
    }

    /// Creates an IND with equality `lhs_relation[attrs] = rhs_relation[attrs]`.
    pub fn equality<S: AsRef<str>>(
        lhs_relation: impl Into<String>,
        lhs_attrs: &[S],
        rhs_relation: impl Into<String>,
        rhs_attrs: &[S],
    ) -> Self {
        let mut ind = Self::subset(lhs_relation, lhs_attrs, rhs_relation, rhs_attrs);
        ind.with_equality = true;
        ind
    }

    /// The IND with the two sides swapped. For INDs with equality the
    /// reversed IND holds as well; for subset INDs it expresses the converse
    /// containment (which may not hold).
    pub fn reversed(&self) -> InclusionDependency {
        InclusionDependency {
            lhs_relation: self.rhs_relation.clone(),
            lhs_attrs: self.rhs_attrs.clone(),
            rhs_relation: self.lhs_relation.clone(),
            rhs_attrs: self.lhs_attrs.clone(),
            with_equality: self.with_equality,
        }
    }

    /// Whether the IND mentions `relation` on either side.
    pub fn mentions(&self, relation: &str) -> bool {
        self.lhs_relation == relation || self.rhs_relation == relation
    }

    /// Returns the attribute list of the given side if `relation` appears
    /// there (`lhs` first).
    pub fn attrs_of(&self, relation: &str) -> Option<&[AttrName]> {
        if self.lhs_relation == relation {
            Some(&self.lhs_attrs)
        } else if self.rhs_relation == relation {
            Some(&self.rhs_attrs)
        } else {
            None
        }
    }
}

impl fmt::Display for InclusionDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l: Vec<&str> = self.lhs_attrs.iter().map(|a| a.as_str()).collect();
        let r: Vec<&str> = self.rhs_attrs.iter().map(|a| a.as_str()).collect();
        let op = if self.with_equality { "=" } else { "⊆" };
        write!(
            f,
            "{}[{}] {} {}[{}]",
            self.lhs_relation,
            l.join(","),
            op,
            self.rhs_relation,
            r.join(",")
        )
    }
}

/// A schema constraint: either a functional dependency or an inclusion
/// dependency.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// A functional dependency.
    Fd(FunctionalDependency),
    /// An inclusion dependency.
    Ind(InclusionDependency),
}

impl Constraint {
    /// Returns the contained IND, if any.
    pub fn as_ind(&self) -> Option<&InclusionDependency> {
        match self {
            Constraint::Ind(ind) => Some(ind),
            Constraint::Fd(_) => None,
        }
    }

    /// Returns the contained FD, if any.
    pub fn as_fd(&self) -> Option<&FunctionalDependency> {
        match self {
            Constraint::Fd(fd) => Some(fd),
            Constraint::Ind(_) => None,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Fd(fd) => write!(f, "{fd}"),
            Constraint::Ind(ind) => write!(f, "{ind}"),
        }
    }
}

impl From<FunctionalDependency> for Constraint {
    fn from(fd: FunctionalDependency) -> Self {
        Constraint::Fd(fd)
    }
}

impl From<InclusionDependency> for Constraint {
    fn from(ind: InclusionDependency) -> Self {
        Constraint::Ind(ind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_display() {
        let fd = FunctionalDependency::new("student", &["stud"], &["phase", "years"]);
        assert_eq!(fd.to_string(), "student: stud -> phase,years");
    }

    #[test]
    fn ind_equality_and_subset_forms() {
        let e = InclusionDependency::equality("student", &["stud"], "inPhase", &["stud"]);
        assert!(e.with_equality);
        let s = InclusionDependency::subset("ta", &["stud"], "student", &["stud"]);
        assert!(!s.with_equality);
        assert_eq!(e.to_string(), "student[stud] = inPhase[stud]");
        assert_eq!(s.to_string(), "ta[stud] ⊆ student[stud]");
    }

    #[test]
    fn reversed_swaps_sides() {
        let e = InclusionDependency::equality("a", &["x"], "b", &["y"]);
        let r = e.reversed();
        assert_eq!(r.lhs_relation, "b");
        assert_eq!(r.rhs_relation, "a");
        assert_eq!(r.lhs_attrs, vec![AttrName::new("y")]);
    }

    #[test]
    fn mentions_and_attrs_of() {
        let e = InclusionDependency::equality("bonds", &["bd"], "bondType1", &["bd"]);
        assert!(e.mentions("bonds"));
        assert!(e.mentions("bondType1"));
        assert!(!e.mentions("compound"));
        assert_eq!(e.attrs_of("bonds"), Some(&[AttrName::new("bd")][..]));
        assert_eq!(e.attrs_of("compound"), None);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_attr_lists_rejected() {
        let _ = InclusionDependency::subset("a", &["x", "y"], "b", &["z"]);
    }

    #[test]
    fn constraint_accessors() {
        let c: Constraint = FunctionalDependency::new("r", &["a"], &["b"]).into();
        assert!(c.as_fd().is_some());
        assert!(c.as_ind().is_none());
        let c: Constraint = InclusionDependency::equality("r", &["a"], "s", &["a"]).into();
        assert!(c.as_ind().is_some());
    }
}
