//! Relational operators: projection, selection, and natural join.
//!
//! The (de)composition transformations of Section 4 are exactly projection
//! (decomposition) and natural join (composition), so these operators are
//! what `castor-transform` uses to map instances between schemas.

use crate::attribute::AttrName;
use crate::instance::RelationInstance;
use crate::relation::RelationSymbol;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Projects `input` onto the attribute list `attrs`, producing a new
/// instance named `output_name`. Duplicate tuples collapse (set semantics).
pub fn project(
    input: &RelationInstance,
    attrs: &[AttrName],
    output_name: &str,
) -> Result<RelationInstance> {
    let positions = input.symbol().sort().positions(attrs).ok_or_else(|| {
        crate::RelationalError::UnknownAttribute {
            relation: input.name().to_string(),
            attribute: attrs
                .iter()
                .find(|a| !input.symbol().sort().contains(a))
                .map(|a| a.as_str().to_string())
                .unwrap_or_default(),
        }
    })?;
    let symbol = RelationSymbol::with_sort(
        output_name,
        crate::attribute::Sort::new(attrs.iter().map(|a| a.as_str().to_string())),
    );
    let mut out = RelationInstance::empty(symbol);
    for t in input.iter() {
        out.insert(t.project(&positions))?;
    }
    Ok(out)
}

/// Selects the tuples of `input` whose value at the position of `attr`
/// equals `value`, as a new instance with the same sort.
pub fn select_eq(
    input: &RelationInstance,
    attr: &AttrName,
    value: &Value,
    output_name: &str,
) -> Result<RelationInstance> {
    let pos = input.symbol().attr_position(attr).ok_or_else(|| {
        crate::RelationalError::UnknownAttribute {
            relation: input.name().to_string(),
            attribute: attr.as_str().to_string(),
        }
    })?;
    let symbol = RelationSymbol::with_sort(output_name, input.symbol().sort().clone());
    let mut out = RelationInstance::empty(symbol);
    for t in input.select_eq(pos, value) {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Natural join of two instances on their shared attribute names.
///
/// Following the paper we require at least one shared attribute so that the
/// join never degenerates into a Cartesian product.
pub fn natural_join(
    left: &RelationInstance,
    right: &RelationInstance,
    output_name: &str,
) -> Result<RelationInstance> {
    let shared = left.symbol().common_attrs(right.symbol());
    assert!(
        !shared.is_empty(),
        "natural join requires at least one shared attribute between {} and {}",
        left.name(),
        right.name()
    );
    let left_sort = left.symbol().sort();
    let right_sort = right.symbol().sort();
    let out_sort = left_sort.union(right_sort);
    let symbol = RelationSymbol::with_sort(output_name, out_sort.clone());
    let mut out = RelationInstance::empty(symbol);

    let left_key_pos: Vec<usize> = shared
        .iter()
        .map(|a| left_sort.position(a).expect("shared attr in left"))
        .collect();
    let right_key_pos: Vec<usize> = shared
        .iter()
        .map(|a| right_sort.position(a).expect("shared attr in right"))
        .collect();
    // Positions of the right tuple's non-shared attributes, in output order.
    let right_extra_pos: Vec<usize> = out_sort
        .iter()
        .skip(left_sort.arity())
        .map(|a| right_sort.position(a).expect("extra attr in right"))
        .collect();

    // Hash join: build on the smaller side conceptually; here build on right.
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for rt in right.iter() {
        table
            .entry(rt.project(&right_key_pos))
            .or_default()
            .push(rt);
    }
    for lt in left.iter() {
        let key = lt.project(&left_key_pos);
        if let Some(matches) = table.get(&key) {
            for rt in matches {
                let extra = rt.project(&right_extra_pos);
                out.insert(lt.concat(&extra))?;
            }
        }
    }
    Ok(out)
}

/// Natural join of a sequence of instances, left to right.
///
/// Panics if fewer than one instance is given. A single instance is returned
/// unchanged (renamed to `output_name`).
pub fn natural_join_all(
    instances: &[&RelationInstance],
    output_name: &str,
) -> Result<RelationInstance> {
    assert!(
        !instances.is_empty(),
        "natural_join_all needs at least one input"
    );
    if instances.len() == 1 {
        let symbol = RelationSymbol::with_sort(output_name, instances[0].symbol().sort().clone());
        let mut out = RelationInstance::empty(symbol);
        for t in instances[0].iter() {
            out.insert(t.clone())?;
        }
        return Ok(out);
    }
    let mut acc = natural_join(instances[0], instances[1], output_name)?;
    for inst in &instances[2..] {
        acc = natural_join(&acc, inst, output_name)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttrName;

    fn inst(name: &str, attrs: &[&str], rows: &[&[&str]]) -> RelationInstance {
        let mut i = RelationInstance::empty(RelationSymbol::new(name, attrs));
        for r in rows {
            i.insert(Tuple::from_strs(r)).unwrap();
        }
        i
    }

    #[test]
    fn project_collapses_duplicates() {
        let i = inst(
            "inPhase",
            &["stud", "phase"],
            &[&["a", "pre"], &["b", "pre"], &["c", "post"]],
        );
        let p = project(&i, &[AttrName::new("phase")], "phases").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.symbol().arity(), 1);
    }

    #[test]
    fn project_unknown_attribute_errors() {
        let i = inst("r", &["a"], &[&["1"]]);
        assert!(project(&i, &[AttrName::new("missing")], "out").is_err());
    }

    #[test]
    fn select_eq_filters_rows() {
        let i = inst(
            "inPhase",
            &["stud", "phase"],
            &[&["a", "pre"], &["b", "post"]],
        );
        let s = select_eq(&i, &AttrName::new("phase"), &Value::str("pre"), "pre_only").unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Tuple::from_strs(&["a", "pre"])));
    }

    #[test]
    fn natural_join_on_shared_attribute() {
        let student = inst("student", &["stud"], &[&["a"], &["b"]]);
        let phase = inst(
            "inPhase",
            &["stud", "phase"],
            &[&["a", "pre"], &["b", "post"]],
        );
        let j = natural_join(&student, &phase, "joined").unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.symbol().arity(), 2);
        assert!(j.contains(&Tuple::from_strs(&["a", "pre"])));
    }

    #[test]
    fn natural_join_drops_dangling_tuples() {
        let a = inst("a", &["x", "y"], &[&["1", "u"], &["2", "v"]]);
        let b = inst("b", &["x", "z"], &[&["1", "w"]]);
        let j = natural_join(&a, &b, "ab").unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::from_strs(&["1", "u", "w"])));
    }

    #[test]
    #[should_panic(expected = "shared attribute")]
    fn join_without_shared_attributes_panics() {
        let a = inst("a", &["x"], &[&["1"]]);
        let b = inst("b", &["y"], &[&["2"]]);
        let _ = natural_join(&a, &b, "ab");
    }

    #[test]
    fn join_all_recomposes_decomposed_relation() {
        // student(stud), inPhase(stud,phase), yearsInProgram(stud,years)
        // should join back to student(stud,phase,years).
        let s = inst("student", &["stud"], &[&["a"], &["b"]]);
        let p = inst(
            "inPhase",
            &["stud", "phase"],
            &[&["a", "pre"], &["b", "post"]],
        );
        let y = inst(
            "yearsInProgram",
            &["stud", "years"],
            &[&["a", "3"], &["b", "7"]],
        );
        let j = natural_join_all(&[&s, &p, &y], "student4nf").unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&Tuple::from_strs(&["a", "pre", "3"])));
        assert!(j.contains(&Tuple::from_strs(&["b", "post", "7"])));
    }

    #[test]
    fn join_all_single_input_is_identity() {
        let s = inst("student", &["stud"], &[&["a"]]);
        let j = natural_join_all(&[&s], "copy").unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.name(), "copy");
    }

    #[test]
    fn join_is_commutative_up_to_column_order() {
        let a = inst("a", &["x", "y"], &[&["1", "u"]]);
        let b = inst("b", &["x", "z"], &[&["1", "w"]]);
        let ab = natural_join(&a, &b, "o").unwrap();
        let ba = natural_join(&b, &a, "o").unwrap();
        assert_eq!(ab.len(), ba.len());
        // Same set of x values regardless of order.
        let xa = ab.project(&[0]);
        let xb = ba.project(&[0]);
        assert_eq!(xa, xb);
    }
}
