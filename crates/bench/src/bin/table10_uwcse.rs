//! Regenerates the paper's table10 uwcse (see castor-bench's crate docs).
fn main() {
    println!("{}", castor_bench::table10_uwcse());
}
