//! Regenerates the paper's table12 general inds (see castor-bench's crate docs).
fn main() {
    println!("{}", castor_bench::table12_general_inds());
}
