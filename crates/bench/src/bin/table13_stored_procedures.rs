//! Regenerates the paper's table13 stored procedures (see castor-bench's crate docs).
fn main() {
    println!("{}", castor_bench::table13_stored_procedures());
}
