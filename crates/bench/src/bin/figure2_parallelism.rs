//! Regenerates Figure 2 (parallelization sweep).
fn main() {
    println!("{}", castor_bench::figure2_parallelism(&[1, 2, 4, 8]));
}
