//! Regenerates Figure 3 (A2 query complexity).
fn main() {
    println!("{}", castor_bench::figure3_query_complexity(10));
}
