//! Machine-readable observability-overhead benchmark: runs the shared
//! `obs_overhead_workload` coverage pass with the default (enabled)
//! `Obs` handle and with `ObsConfig::disabled()`, interleaved
//! best-of-N, and writes the results to `BENCH_obs.json` in the current
//! directory — the artifact CI or a tracking dashboard diffs across
//! commits.
//!
//! Run with: `cargo run --release -p castor-bench --bin bench_obs`

use castor_bench::obs_overhead_workload;
use castor_engine::{Engine, EngineConfig, WorkerPool};
use castor_obs::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 7;

fn main() {
    let workload = obs_overhead_workload();
    // Same protocol as the CI guard: caches off (measure evaluation, not
    // probes) and inline execution (worker scheduling jitter swings
    // multi-threaded passes more than the overhead under measurement).
    let config = EngineConfig::default().without_cache().with_threads(1);
    let build = |obs: Arc<Obs>| {
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine::with_observability(Arc::clone(&workload.db), config.clone(), pool, obs)
    };
    let enabled = build(Obs::enabled_default());
    let disabled = build(Obs::disabled());

    let run = |engine: &Engine| {
        let start = Instant::now();
        let sets = engine.covered_sets_batch(&workload.beam, &workload.examples);
        assert!(!sets.is_empty());
        start.elapsed()
    };

    // Warm-up, then interleaved best-of-N (same protocol as the CI guard
    // in `tests/obs_overhead.rs`).
    run(&enabled);
    run(&disabled);
    let mut best_enabled = Duration::MAX;
    let mut best_disabled = Duration::MAX;
    for _ in 0..ROUNDS {
        best_enabled = best_enabled.min(run(&enabled));
        best_disabled = best_disabled.min(run(&disabled));
    }

    let overhead_pct =
        (best_enabled.as_secs_f64() / best_disabled.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"workload\": {{\n    \"beam_clauses\": {},\n    \
         \"examples\": {},\n    \"rounds\": {ROUNDS}\n  }},\n  \"enabled_ns_min\": {},\n  \
         \"disabled_ns_min\": {},\n  \"overhead_pct\": {overhead_pct:.3}\n}}\n",
        workload.beam.len(),
        workload.examples.len(),
        best_enabled.as_nanos(),
        best_disabled.as_nanos(),
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    print!("{json}");
    eprintln!(
        "obs overhead: enabled {best_enabled:?} vs disabled {best_disabled:?} \
         ({overhead_pct:+.2}%) -> BENCH_obs.json"
    );
}
