//! Machine-readable Figure 2 benchmark: thread sweep over parallel
//! ground-bottom-clause construction (the phase that dominated runtime at
//! reduced synthetic scales and kept the original Figure 2 sweep flat)
//! plus the cross-variant coverage-reuse comparison (shared cache arena
//! vs. isolated per-variant engines). Writes the results to
//! `BENCH_fig2.json` in the current directory — the artifact CI or a
//! tracking dashboard diffs across commits.
//!
//! Run with: `cargo run --release -p castor-bench --bin bench_fig2`

use castor_core::{ground_bottom_clauses, BottomClausePlan, CastorConfig};
use castor_datasets::uwcse::{self, UwCseConfig};
use castor_engine::WorkerPool;
use castor_eval::{run_uwcse_cross_variant_coverage, run_uwcse_independent_coverage, Transport};
use castor_relational::Tuple;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MEASUREMENTS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Minimum over `MEASUREMENTS` runs (the standard de-noised estimate for
/// a deterministic loop), warm-up included.
fn best(mut f: impl FnMut() -> Duration) -> Duration {
    f();
    (0..MEASUREMENTS).map(|_| f()).min().unwrap()
}

fn main() {
    // --- Part 1: bottom-clause construction thread sweep -----------------
    // Enlarged UW-CSE so one sequential pass costs real time; every sweep
    // point saturates the same deduplicated example list.
    let family = uwcse::generate(&UwCseConfig {
        students: 400,
        professors: 60,
        courses: 120,
        ..Default::default()
    });
    let variant = family.variant("Original").expect("family has Original");
    let plan = BottomClausePlan::compile(variant.db.schema(), false);
    let config = CastorConfig::uwcse();
    let examples: Vec<Tuple> = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();

    let mut sweep_json = String::new();
    let mut baseline_ns = 0u128;
    for (i, &t) in THREADS.iter().enumerate() {
        let pool = Arc::new(WorkerPool::new(t));
        let elapsed = best(|| {
            let start = Instant::now();
            let ground =
                ground_bottom_clauses(&variant.db, &plan, "advisedBy", &examples, &config, &pool);
            assert!(!ground.is_empty());
            start.elapsed()
        });
        if t == 1 {
            baseline_ns = elapsed.as_nanos();
        }
        let speedup = baseline_ns as f64 / elapsed.as_nanos().max(1) as f64;
        let _ = write!(
            sweep_json,
            "{}    {{ \"threads\": {t}, \"ns_min\": {}, \"speedup_over_1\": {speedup:.3} }}",
            if i == 0 { "" } else { ",\n" },
            elapsed.as_nanos()
        );
        eprintln!("bottom clauses @ {t} threads: {elapsed:?} ({speedup:.2}x)");
    }

    // --- Part 2: cross-variant coverage reuse -----------------------------
    let reuse_family = uwcse::generate(&UwCseConfig {
        students: 40,
        professors: 8,
        courses: 12,
        noise_fraction: 0.0,
        ..Default::default()
    });
    let clauses = uwcse::ground_truth_original().clauses;
    let task = &reuse_family.variants[0].task;
    let reuse_examples: Vec<Tuple> = task
        .positive
        .iter()
        .chain(task.negative.iter())
        .cloned()
        .collect();

    let mut cross_hits = 0usize;
    let shared = best(|| {
        let start = Instant::now();
        let runs = run_uwcse_cross_variant_coverage(
            &reuse_family,
            &clauses,
            &reuse_examples,
            1,
            Transport::InProcess,
        );
        cross_hits = runs.iter().map(|r| r.report.cross_variant_hits).sum();
        start.elapsed()
    });
    let independent = best(|| {
        let start = Instant::now();
        let runs = run_uwcse_independent_coverage(&reuse_family, &clauses, &reuse_examples, 1);
        assert_eq!(runs.len(), 4);
        start.elapsed()
    });
    let reuse_speedup = independent.as_secs_f64() / shared.as_secs_f64().max(1e-9);
    eprintln!(
        "cross-variant: shared {shared:?} vs independent {independent:?} \
         ({reuse_speedup:.2}x, {cross_hits} cross hits)"
    );

    let json = format!(
        "{{\n  \"bench\": \"fig2\",\n  \"bottom_clause_sweep\": {{\n    \"examples\": {},\n    \
         \"measurements\": {MEASUREMENTS},\n    \"points\": [\n{sweep_json}\n    ]\n  }},\n  \
         \"cross_variant_reuse\": {{\n    \"variants\": 4,\n    \"clauses\": {},\n    \
         \"examples\": {},\n    \"shared_arena_ns_min\": {},\n    \
         \"independent_ns_min\": {},\n    \"independent_over_shared\": {reuse_speedup:.4},\n    \
         \"cross_variant_hits\": {cross_hits}\n  }}\n}}\n",
        examples.len(),
        clauses.len(),
        reuse_examples.len(),
        shared.as_nanos(),
        independent.as_nanos(),
    );
    std::fs::write("BENCH_fig2.json", &json).expect("write BENCH_fig2.json");
    print!("{json}");
}
