//! Regenerates the paper's table2 stats (see castor-bench's crate docs).
fn main() {
    println!("{}", castor_bench::table2_statistics());
}
