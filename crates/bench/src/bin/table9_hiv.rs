//! Regenerates Table 9 (HIV-Large and HIV-2K4K).
fn main() {
    println!("{}", castor_bench::table9_hiv());
}
