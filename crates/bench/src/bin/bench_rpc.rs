//! Machine-readable RPC transport benchmark: runs the shared
//! `rpc_roundtrip_workload` through an in-process `Session` and through
//! a loopback TCP `RpcClient` against the event-loop server,
//! interleaved best-of-N, and writes the results to `BENCH_rpc.json` in
//! the current directory — the artifact CI or a tracking dashboard
//! diffs across commits. Two job shapes: `score` (evaluation-dominated,
//! counts back — the `tcp_over_in_process` ratio `tests/rpc_overhead.rs`
//! pins at ≤1.2×) and `covered_sets` (every covered tuple re-materialized
//! on the client — payload-bound, reported for tracking).
//!
//! Run with: `cargo run --release -p castor-bench --bin bench_rpc`

use castor_bench::rpc_roundtrip_workload;
use castor_rpc::{RpcClient, RpcConfig, RpcServer};
use castor_service::{Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 30;

/// Interleaved best-of-N over a pair of closures (warm-up included).
fn best_pair(
    rounds: usize,
    mut a: impl FnMut() -> Duration,
    mut b: impl FnMut() -> Duration,
) -> (Duration, Duration) {
    for _ in 0..5 {
        a();
        b();
    }
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..rounds {
        best_a = best_a.min(a());
        best_b = best_b.min(b());
    }
    (best_a, best_b)
}

fn main() {
    let workload = rpc_roundtrip_workload();

    let in_process = Server::new(ServerConfig::default());
    in_process
        .register("bench", Arc::clone(&workload.db))
        .unwrap();
    let session = in_process.session("bench").unwrap();

    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("bench", Arc::clone(&workload.db)).unwrap();
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
    let client = std::sync::Mutex::new(RpcClient::connect(rpc.local_addr(), "bench").unwrap());

    let (score_session, score_tcp) = best_pair(
        ROUNDS,
        || {
            let start = Instant::now();
            let counts = session
                .score(
                    workload.beam.clone(),
                    workload.positive.clone(),
                    workload.negative.clone(),
                )
                .unwrap();
            assert_eq!(counts.len(), workload.beam.len());
            start.elapsed()
        },
        || {
            let start = Instant::now();
            let counts = client
                .lock()
                .unwrap()
                .score(
                    workload.beam.clone(),
                    workload.positive.clone(),
                    workload.negative.clone(),
                )
                .unwrap();
            assert_eq!(counts.len(), workload.beam.len());
            start.elapsed()
        },
    );

    let (covered_session, covered_tcp) = best_pair(
        ROUNDS,
        || {
            let start = Instant::now();
            let sets = session
                .covered_sets(workload.beam.clone(), workload.positive.clone())
                .unwrap();
            assert_eq!(sets.len(), workload.beam.len());
            start.elapsed()
        },
        || {
            let start = Instant::now();
            let sets = client
                .lock()
                .unwrap()
                .covered_sets(workload.beam.clone(), workload.positive.clone())
                .unwrap();
            assert_eq!(sets.len(), workload.beam.len());
            start.elapsed()
        },
    );

    let score_ratio = score_tcp.as_secs_f64() / score_session.as_secs_f64().max(1e-9);
    let covered_ratio = covered_tcp.as_secs_f64() / covered_session.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"rpc_roundtrip\",\n  \"workload\": {{\n    \"beam_clauses\": {},\n    \
         \"positive\": {},\n    \"negative\": {},\n    \"rounds\": {ROUNDS}\n  }},\n  \
         \"score\": {{\n    \"in_process_ns_min\": {},\n    \"tcp_loopback_ns_min\": {},\n    \
         \"tcp_over_in_process\": {score_ratio:.4}\n  }},\n  \
         \"covered_sets\": {{\n    \"in_process_ns_min\": {},\n    \"tcp_loopback_ns_min\": {},\n    \
         \"tcp_over_in_process\": {covered_ratio:.4}\n  }}\n}}\n",
        workload.beam.len(),
        workload.positive.len(),
        workload.negative.len(),
        score_session.as_nanos(),
        score_tcp.as_nanos(),
        covered_session.as_nanos(),
        covered_tcp.as_nanos(),
    );
    std::fs::write("BENCH_rpc.json", &json).expect("write BENCH_rpc.json");
    print!("{json}");
    eprintln!(
        "rpc transport: score {score_tcp:?} vs {score_session:?} ({score_ratio:.3}x), \
         covered_sets {covered_tcp:?} vs {covered_session:?} ({covered_ratio:.3}x) \
         -> BENCH_rpc.json"
    );
}
