//! Regenerates the paper's table11 imdb (see castor-bench's crate docs).
fn main() {
    println!("{}", castor_bench::table11_imdb());
}
