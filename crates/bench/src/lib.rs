//! # castor-bench
//!
//! Experiment harness reproducing every table and figure of the evaluation
//! section of *Schema Independent Relational Learning* (Section 9).
//!
//! Each `tableN_*` / `figureN_*` function builds the corresponding synthetic
//! dataset family, runs the algorithms the paper compares, and renders a
//! plain-text table in the shape of the paper's table. The binaries under
//! `src/bin/` are thin wrappers that print those tables; the Criterion
//! benches under `benches/` cover the micro-benchmarks (subsumption,
//! bottom-clause construction, joins, lgg).
//!
//! Scales are reduced relative to the paper (the datasets are synthetic and
//! laptop-sized — see `castor-datasets`), so absolute numbers differ; the
//! comparisons the paper draws (who wins, schema (in)dependence, where the
//! top-down learners fail) are what these harnesses reproduce.

use castor_core::CastorConfig;
use castor_datasets::{hiv, imdb, synthetic, uwcse, SchemaFamily};
use castor_eval::{run_algorithm_over_family, AlgorithmKind, ExperimentRow};
use castor_learners::{LearnerParams, LogAnH, Oracle};
use castor_logic::Clause;
use castor_relational::{Constraint, DatabaseInstance, Schema};
use castor_transform::map_definition_through_decomposition;
use std::fmt::Write as _;
use std::time::Instant;

/// Number of cross-validation folds used by the harness (the paper uses 5
/// and 10; 2 keeps the full suite fast while preserving train/test splits).
pub const HARNESS_FOLDS: usize = 2;

/// A candidate sequence shaped like a covering run over a variant's ground
/// truth: its head-connected prefixes (ARMG-style generalizations) plus
/// α-renamed variants of each (beam survivors get re-scored, ARMG
/// regenerates the same generalization under fresh names). Shared by the
/// engine micro-benchmark and the CI speedup guard so both measure the
/// same workload.
pub fn coverage_candidate_sequence(variant: &castor_datasets::DatasetVariant) -> Vec<Clause> {
    let base = variant
        .ground_truth
        .clone()
        .expect("variant has a ground truth")
        .clauses[0]
        .clone();
    let mut out = Vec::new();
    for len in 1..=base.body.len() {
        let mut prefix = Clause::new(base.head.clone(), base.body[..len].to_vec());
        prefix.remove_unconnected();
        out.push(prefix.standardize_apart(1));
        out.push(prefix.standardize_apart(2));
        out.push(prefix);
    }
    out
}

/// A beam of sibling candidate clauses shaped like one level of beam
/// refinement: the variant's ground-truth body is the shared prefix, and
/// each sibling appends one distinct trailing literal (every relation ×
/// position × existing-variable placement, FOIL-style, until `width`
/// candidates exist). Scoring this beam per clause re-joins the shared
/// prefix `width` times per example; the batched engine path joins it
/// once. Shared by the batched-evaluation micro-benchmark and the CI
/// speedup guard so both measure the same workload.
pub fn beam_candidate_batch(
    variant: &castor_datasets::DatasetVariant,
    width: usize,
) -> Vec<Clause> {
    use castor_logic::{Atom, Term};
    let base = variant
        .ground_truth
        .clone()
        .expect("variant has a ground truth")
        .clauses[0]
        .clone();
    let vars: Vec<String> = base.variables().into_iter().collect();
    let mut out = Vec::new();
    let mut fresh = 0usize;
    'outer: for relation in variant.db.schema().relations() {
        let arity = relation.arity();
        if arity == 0 {
            continue;
        }
        for pos in 0..arity {
            for var in &vars {
                let terms: Vec<Term> = (0..arity)
                    .map(|i| {
                        if i == pos {
                            Term::var(var.clone())
                        } else {
                            fresh += 1;
                            Term::var(format!("F{fresh}"))
                        }
                    })
                    .collect();
                let mut sibling = base.clone();
                sibling.push(Atom::new(relation.name(), terms));
                out.push(sibling);
                if out.len() == width {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// A synthetic workload where the uniform selectivity estimate mis-orders
/// joins: the decomposed-schema skew case of "SQL for SRL"-style costing.
///
/// `skewed(a, b)` hides ten hub keys (hundreds of rows each) behind
/// thousands of singleton filler keys, so `cardinality / distinct` prices a
/// bound-key probe at ~2 rows while a hub probe really returns hundreds.
/// `mid(a, b)` is genuinely uniform (10 rows per key) and shares *both*
/// variables with `skewed`, so running it first turns the skewed literal
/// into an exact two-column probe. The uniform model schedules `skewed`
/// first (2 < 10) and enumerates every hub row per negative example; the
/// histogram model's frequency-weighted estimate (~hundreds vs 10) flips
/// the order. The beam appends one `sel_k(y)` literal per sibling, so the
/// mis-ordered join sits in the *shared* trie prefix.
pub struct SkewedCostingWorkload {
    /// The skewed database.
    pub db: std::sync::Arc<DatabaseInstance>,
    /// One level of beam siblings sharing the badly-ordered prefix.
    pub beam: Vec<Clause>,
    /// Probe examples for the unary head (hubs, fillers, and misses; most
    /// are negative, which forces full prefix enumeration).
    pub examples: Vec<castor_relational::Tuple>,
}

/// Builds the skewed-costing workload shared by the Criterion bench
/// `engine_adaptive_recosting` and the CI guard
/// `tests/engine_adaptive_costing.rs`.
pub fn skewed_costing_workload() -> SkewedCostingWorkload {
    use castor_logic::Atom;
    use castor_relational::{RelationSymbol, Tuple};

    const HUBS: usize = 10;
    const ROWS_PER_HUB: usize = 600;
    const FILLERS: usize = 5_000;
    const MID_PER_HUB: usize = 10;
    const SELS: usize = 8;

    let mut schema = Schema::new("skew-cost");
    schema
        .add_relation(RelationSymbol::new("skewed", &["a", "b"]))
        .add_relation(RelationSymbol::new("mid", &["a", "b"]));
    for k in 0..SELS {
        schema.add_relation(RelationSymbol::new(format!("sel{k}"), &["b"]));
    }
    let mut db = DatabaseInstance::empty(&schema);
    for h in 0..HUBS {
        for j in 0..ROWS_PER_HUB {
            db.insert(
                "skewed",
                Tuple::from_strs(&[&format!("h{h}"), &format!("v{h}_{j}")]),
            )
            .unwrap();
        }
        // `mid` values mostly miss the skewed values (negative prefixes);
        // the first two hubs get one join partner so coverage exists.
        for j in 0..MID_PER_HUB {
            db.insert(
                "mid",
                Tuple::from_strs(&[&format!("h{h}"), &format!("m{h}_{j}")]),
            )
            .unwrap();
        }
        if h < 2 {
            db.insert(
                "mid",
                Tuple::from_strs(&[&format!("h{h}"), &format!("v{h}_0")]),
            )
            .unwrap();
        }
    }
    for f in 0..FILLERS {
        db.insert(
            "skewed",
            Tuple::from_strs(&[&format!("f{f}"), &format!("g{f}")]),
        )
        .unwrap();
    }
    for k in 0..SELS {
        // Even selectors accept the joinable values, odd ones accept none.
        if k % 2 == 0 {
            for h in 0..HUBS {
                db.insert(&format!("sel{k}"), Tuple::from_strs(&[&format!("v{h}_0")]))
                    .unwrap();
            }
        } else {
            db.insert(&format!("sel{k}"), Tuple::from_strs(&["nothing"]))
                .unwrap();
        }
    }

    let head = Atom::vars("t", &["x"]);
    let prefix = vec![
        Atom::vars("skewed", &["x", "y"]),
        Atom::vars("mid", &["x", "y"]),
    ];
    let beam: Vec<Clause> = (0..SELS)
        .map(|k| {
            let mut body = prefix.clone();
            body.push(Atom::vars(format!("sel{k}"), &["y"]));
            Clause::new(head.clone(), body)
        })
        .collect();

    let mut examples: Vec<Tuple> = (0..HUBS)
        .map(|h| Tuple::from_strs(&[&format!("h{h}")]))
        .collect();
    examples.extend((0..5).map(|f| Tuple::from_strs(&[&format!("f{f}")])));
    examples.extend((0..5).map(|m| Tuple::from_strs(&[&format!("absent{m}")])));

    SkewedCostingWorkload {
        db: std::sync::Arc::new(db),
        beam,
        examples,
    }
}

/// The coverage workload shared by the Criterion bench `obs_overhead`,
/// the CI guard `tests/obs_overhead.rs`, and the `bench_obs` runner: a
/// beam of sibling candidates over an enlarged UW-CSE instance, sized so
/// one uncached batched pass costs tens of milliseconds — large enough
/// that the per-batch instrumentation (a few clock reads, one histogram
/// record, one span push) must stay in the noise.
pub struct ObsOverheadWorkload {
    /// The enlarged UW-CSE database.
    pub db: std::sync::Arc<DatabaseInstance>,
    /// One level of beam refinement (sibling candidates, shared prefix).
    pub beam: Vec<Clause>,
    /// All labeled examples of the variant's task.
    pub examples: Vec<castor_relational::Tuple>,
}

/// Builds the [`ObsOverheadWorkload`].
pub fn obs_overhead_workload() -> ObsOverheadWorkload {
    let family = uwcse::generate(&uwcse::UwCseConfig {
        students: 400,
        professors: 60,
        courses: 120,
        ..Default::default()
    });
    let variant = family.variant("Original").expect("family has Original");
    let beam = beam_candidate_batch(variant, 32);
    let examples = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();
    ObsOverheadWorkload {
        db: std::sync::Arc::clone(&variant.db),
        beam,
        examples,
    }
}

/// Builds the (reduced-scale) UW-CSE family used by the harness.
pub fn uwcse_family() -> SchemaFamily {
    uwcse::generate(&uwcse::UwCseConfig::default())
}

/// The coverage job shared by the Criterion bench `rpc_idle_sessions`,
/// the CI guard `tests/rpc_overhead.rs`, and the `bench_rpc` runner: an
/// 8-candidate beam scored over a fixed example slice of the enlarged
/// UW-CSE task. The pinned transport bound uses the *score* shape
/// (coverage evaluation over both example lists, per-clause counts
/// back) because its response is a few dozen bytes: the roundtrip is
/// evaluation-dominated, so a loopback hop's fixed cost fits inside a
/// 1.2× budget and any event-loop pathology (a poll timeout on the
/// response path, Nagle-style delays, per-roundtrip syscall storms)
/// blows the ratio immediately. The covered-sets shape is measured
/// alongside it: its response re-materializes every covered tuple on
/// the client, so its wire cost is payload-bound, not loop-bound.
pub struct RpcRoundtripWorkload {
    /// The enlarged UW-CSE database.
    pub db: std::sync::Arc<DatabaseInstance>,
    /// One level of beam refinement (sibling candidates, shared prefix).
    pub beam: Vec<Clause>,
    /// A fixed-size positive-example slice.
    pub positive: Vec<castor_relational::Tuple>,
    /// A fixed-size negative-example slice.
    pub negative: Vec<castor_relational::Tuple>,
}

/// Builds the [`RpcRoundtripWorkload`].
pub fn rpc_roundtrip_workload() -> RpcRoundtripWorkload {
    let family = uwcse::generate(&uwcse::UwCseConfig {
        students: 400,
        professors: 60,
        courses: 120,
        ..Default::default()
    });
    let variant = family.variant("Original").expect("family has Original");
    // Wide beam, modest example slice: evaluation cost scales with
    // beam × examples while the request payload is dominated by the
    // example tuples alone — so widening the beam raises the
    // evaluation-to-wire proportion the transport bound needs.
    let beam = beam_candidate_batch(variant, 32);
    let positive = variant.task.positive.iter().take(128).cloned().collect();
    let negative = variant.task.negative.iter().take(128).cloned().collect();
    RpcRoundtripWorkload {
        db: std::sync::Arc::clone(&variant.db),
        beam,
        positive,
        negative,
    }
}

/// Builds the (reduced-scale) HIV-Large family.
pub fn hiv_large_family() -> SchemaFamily {
    hiv::generate("HIV-Large", &hiv::HivConfig::large())
}

/// Builds the (reduced-scale) HIV-2K4K family.
pub fn hiv_2k4k_family() -> SchemaFamily {
    hiv::generate("HIV-2K4K", &hiv::HivConfig::hiv_2k4k())
}

/// Builds the (reduced-scale) IMDb family.
pub fn imdb_family() -> SchemaFamily {
    imdb::generate(&imdb::ImdbConfig::default())
}

/// Table 2: dataset statistics (#relations, #tuples, #positives,
/// #negatives) for every variant of every family.
pub fn table2_statistics() -> String {
    let mut out = String::from("== Table 2: dataset statistics ==\n");
    for family in [
        hiv_large_family(),
        hiv_2k4k_family(),
        uwcse_family(),
        imdb_family(),
    ] {
        for stat in castor_datasets::dataset_statistics(&family) {
            let _ = writeln!(out, "{stat}");
        }
    }
    out
}

/// Table 9: HIV-Large and HIV-2K4K — Aleph-FOIL, Aleph-Progol, and Castor
/// over the Initial / 4NF-1 / 4NF-2 schemas.
pub fn table9_hiv() -> String {
    let params = LearnerParams::large_dataset();
    let mut out = String::new();
    for family in [hiv_large_family(), hiv_2k4k_family()] {
        let mut rows: Vec<ExperimentRow> = Vec::new();
        for algorithm in [
            AlgorithmKind::AlephFoil(10),
            AlgorithmKind::AlephProgol(10),
            AlgorithmKind::Castor(CastorConfig::large_dataset()),
        ] {
            rows.extend(run_algorithm_over_family(
                &algorithm,
                &family,
                &params,
                HARNESS_FOLDS,
            ));
        }
        out.push_str(&castor_eval::render_table(
            &format!("Table 9: {}", family.name),
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 10: UW-CSE — FOIL, Aleph-FOIL, Aleph-Progol, ProGolem, Castor over
/// Original / 4NF / Denormalized-1 / Denormalized-2.
pub fn table10_uwcse() -> String {
    let family = uwcse_family();
    let params = LearnerParams::uwcse();
    let mut rows: Vec<ExperimentRow> = Vec::new();
    for algorithm in [
        AlgorithmKind::Foil,
        AlgorithmKind::AlephFoil(4),
        AlgorithmKind::AlephProgol(4),
        AlgorithmKind::ProGolem,
        AlgorithmKind::Castor(CastorConfig::uwcse()),
    ] {
        rows.extend(run_algorithm_over_family(
            &algorithm,
            &family,
            &params,
            HARNESS_FOLDS,
        ));
    }
    castor_eval::render_table("Table 10: UW-CSE", &rows)
}

/// Table 11: IMDb — Aleph-FOIL, Aleph-Progol, Castor over JMDB / Stanford /
/// Denormalized.
pub fn table11_imdb() -> String {
    let family = imdb_family();
    let params = LearnerParams {
        max_iterations: 1,
        ..LearnerParams::large_dataset()
    };
    let mut rows: Vec<ExperimentRow> = Vec::new();
    for algorithm in [
        AlgorithmKind::AlephFoil(6),
        AlgorithmKind::AlephProgol(6),
        AlgorithmKind::Castor(CastorConfig::large_dataset()),
    ] {
        rows.extend(run_algorithm_over_family(
            &algorithm,
            &family,
            &params,
            HARNESS_FOLDS,
        ));
    }
    castor_eval::render_table("Table 11: IMDb", &rows)
}

/// Rebuilds a database instance under a copy of its schema whose INDs with
/// equality are weakened to subset form (the setting of Table 12).
pub fn weaken_equality_inds(db: &DatabaseInstance) -> DatabaseInstance {
    let schema = db.schema();
    let mut weakened = Schema::new(format!("{}-subset-inds", schema.name()));
    for r in schema.relations() {
        weakened.add_relation(r.clone());
    }
    for c in schema.constraints() {
        match c {
            Constraint::Ind(ind) => {
                let mut ind = ind.clone();
                ind.with_equality = false;
                weakened.add_ind(ind);
            }
            other => {
                weakened.add_constraint(other.clone());
            }
        }
    }
    let mut out = DatabaseInstance::empty(&weakened);
    for relation in db.relations() {
        for tuple in relation.iter() {
            out.insert(relation.name(), tuple.clone())
                .expect("same relations");
        }
    }
    out
}

/// Table 12: Castor using only subset-form INDs (general decomposition/
/// composition, Section 7.4) over HIV-2K4K, UW-CSE, and IMDb.
pub fn table12_general_inds() -> String {
    let mut out = String::new();
    for mut family in [hiv_2k4k_family(), uwcse_family(), imdb_family()] {
        for variant in family.variants.iter_mut() {
            variant.db = std::sync::Arc::new(weaken_equality_inds(&variant.db));
        }
        let params = if family.name == "UW-CSE" {
            LearnerParams::uwcse()
        } else {
            LearnerParams::large_dataset()
        };
        let config = if family.name == "UW-CSE" {
            CastorConfig::uwcse().with_general_inds()
        } else {
            CastorConfig::large_dataset().with_general_inds()
        };
        let rows = run_algorithm_over_family(
            &AlgorithmKind::Castor(config),
            &family,
            &params,
            HARNESS_FOLDS,
        );
        out.push_str(&castor_eval::render_table(
            &format!("Table 12: Castor with subset INDs — {}", family.name),
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 13: impact of the pre-compiled bottom-clause plan ("stored
/// procedures") on Castor's running time.
pub fn table13_stored_procedures() -> String {
    let mut out = String::from(
        "== Table 13: stored procedures ablation (Castor learning time, seconds) ==\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:>18} {:>22} {:>10}",
        "Dataset", "With plan (s)", "Without plan (s)", "Speedup"
    );
    for (family, config) in [
        (hiv_large_family(), CastorConfig::large_dataset()),
        (hiv_2k4k_family(), CastorConfig::large_dataset()),
        (imdb_family(), CastorConfig::large_dataset()),
    ] {
        let variant = &family.variants[0];
        let params = LearnerParams {
            constant_positions: variant.constant_positions.clone(),
            ..LearnerParams::large_dataset()
        };
        let timed = |config: CastorConfig| {
            let mut config = config;
            config.params = params.clone();
            let start = Instant::now();
            let outcome = castor_core::Castor::new(config).learn_shared(&variant.db, &variant.task);
            (start.elapsed().as_secs_f64(), outcome.definition.len())
        };
        let (with_plan, _) = timed(config.clone());
        let (without_plan, _) = timed(config.clone().without_stored_procedures());
        let _ = writeln!(
            out,
            "{:<12} {:>18.3} {:>22.3} {:>9.2}x",
            family.name,
            with_plan,
            without_plan,
            without_plan / with_plan.max(1e-9)
        );
    }
    out
}

/// Figure 2: impact of parallel coverage testing on Castor's running time
/// (thread sweep over HIV-Large, HIV-2K4K, IMDb). Coverage now runs on the
/// persistent worker pool of `castor-engine` (work-stealing over examples);
/// each family row is followed by the engine counters of its last run.
pub fn figure2_parallelism(threads: &[usize]) -> String {
    let mut out =
        String::from("== Figure 2: Castor running time vs. worker threads (seconds) ==\n");
    let _ = write!(out, "{:<12}", "Dataset");
    for t in threads {
        let _ = write!(out, " {:>10}", format!("{t} thr"));
    }
    out.push('\n');
    for family in [hiv_large_family(), hiv_2k4k_family(), imdb_family()] {
        let variant = &family.variants[0];
        let _ = write!(out, "{:<12}", family.name);
        let mut last_report = None;
        for &t in threads {
            let mut config = CastorConfig::large_dataset().with_threads(t);
            config.params.constant_positions = variant.constant_positions.clone();
            let start = Instant::now();
            let outcome = castor_core::Castor::new(config).learn_shared(&variant.db, &variant.task);
            let _ = write!(out, " {:>10.3}", start.elapsed().as_secs_f64());
            last_report = Some(outcome.engine);
        }
        out.push('\n');
        if let Some(report) = last_report {
            let _ = writeln!(out, "{:<12} engine: {report}", "");
        }
    }
    out
}

/// Figure 3: average number of equivalence and membership queries asked by
/// the A2 algorithm, by number of variables per clause, over the four
/// UW-CSE schema variants (random targets generated over Denormalized-2 and
/// decomposed to the other schemas).
pub fn figure3_query_complexity(definitions_per_setting: usize) -> String {
    let original = uwcse::original_schema();
    let to_denorm2 = uwcse::to_denormalized2(&original);
    let denorm2_schema = to_denorm2.apply_schema(&original);
    let to_denorm1 = uwcse::to_denormalized1(&original);
    let denorm1_schema = to_denorm1.apply_schema(&original);
    let to_4nf = uwcse::to_4nf(&original);
    let nf4_schema = to_4nf.apply_schema(&original);

    // Decompositions from Denormalized-2 back to each variant: undo the
    // Denormalized-2 composition, then (for 4NF / Denormalized-1) re-apply
    // that variant's composition. Only the decomposition steps matter for
    // the definition mapping (composition steps are identity on clauses).
    let denorm2_to = |target: &str| -> castor_transform::Transformation {
        match target {
            "Denormalized-1" => castor_transform::Transformation::new(
                "d2-to-d1",
                to_denorm2
                    .invert()
                    .steps()
                    .iter()
                    .cloned()
                    .chain(to_denorm1.steps().iter().cloned())
                    .collect(),
            ),
            "4NF" => castor_transform::Transformation::new(
                "d2-to-4nf",
                to_denorm2
                    .invert()
                    .steps()
                    .iter()
                    .cloned()
                    .chain(to_4nf.steps().iter().cloned())
                    .collect(),
            ),
            "Original" => to_denorm2.invert(),
            _ => castor_transform::Transformation::identity("id"),
        }
    };

    let schemas: Vec<(&str, Schema)> = vec![
        ("Denormalized-2", denorm2_schema.clone()),
        ("Denormalized-1", denorm1_schema),
        ("4NF", nf4_schema),
        ("Original", original.clone()),
    ];

    let mut out = String::from("== Figure 3: A2 query complexity over UW-CSE schema variants ==\n");
    let _ = writeln!(
        out,
        "{:<8} {:<16} {:>10} {:>10}",
        "#vars", "Schema", "avg #EQ", "avg #MQ"
    );
    for vars in 4..=8 {
        for (schema_name, schema) in &schemas {
            let mut eq_total = 0usize;
            let mut mq_total = 0usize;
            for run in 0..definitions_per_setting.max(1) {
                let config = synthetic::RandomDefinitionConfig {
                    clauses: 1 + (run % 3),
                    variables_per_clause: vars,
                    target_arity: 2.min(vars),
                    seed: (vars * 1000 + run) as u64,
                };
                // Generate over Denormalized-2 and decompose to the Original
                // schema (a pure vertical decomposition) — mirroring the
                // paper's protocol. The intermediate variants (4NF,
                // Denormalized-1) mix a decomposition with a re-composition,
                // which has no syntactic definition mapping here, so their
                // targets are drawn directly over that schema with the same
                // seed; the query-count trend across schemas is unaffected
                // because it is driven by per-clause literal counts.
                let def_d2 = synthetic::random_definition(&denorm2_schema, "target", &config);
                let def = if *schema_name == "Denormalized-2" {
                    def_d2
                } else if *schema_name == "Original" {
                    map_definition_through_decomposition(&def_d2, &denorm2_to(schema_name))
                } else {
                    synthetic::random_definition(schema, "target", &config)
                };
                let mut oracle = Oracle::new(schema.clone(), def);
                let (_, stats) = LogAnH::new().learn(&mut oracle, "target");
                eq_total += stats.equivalence_queries;
                mq_total += stats.membership_queries;
            }
            let n = definitions_per_setting.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<8} {:<16} {:>10.1} {:>10.1}",
                vars,
                schema_name,
                eq_total as f64 / n,
                mq_total as f64 / n
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_every_variant() {
        let text = table2_statistics();
        for name in ["Initial", "4NF-1", "4NF-2", "Original", "JMDB", "Stanford"] {
            assert!(text.contains(name), "missing variant {name}");
        }
    }

    #[test]
    fn weakened_schema_has_no_equality_inds() {
        let family = uwcse_family();
        let weakened = weaken_equality_inds(&family.variants[0].db);
        assert!(weakened.schema().equality_inds().is_empty());
        assert_eq!(
            weakened.total_tuples(),
            family.variants[0].db.total_tuples()
        );
    }

    #[test]
    fn figure3_runs_on_a_single_setting() {
        let text = figure3_query_complexity(1);
        assert!(text.contains("Original"));
        assert!(text.contains("Denormalized-2"));
    }
}
