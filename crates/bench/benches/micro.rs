//! Criterion micro-benchmarks for the core primitives every learner relies
//! on: θ-subsumption (coverage testing), IND-aware bottom-clause
//! construction, natural joins (composition), and lgg (Golem's operator).

use castor_core::{BottomClausePlan, CastorConfig};
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_learners::bottom_clause::{ground_bottom_clause, BottomClauseConfig};
use castor_logic::{lgg_clauses, subsumes};
use castor_relational::natural_join;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn family() -> castor_datasets::SchemaFamily {
    generate(&UwCseConfig::default())
}

fn bench_subsumption(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let example = variant.task.positive[0].clone();
    let config = BottomClauseConfig::default();
    let ground = ground_bottom_clause(&variant.db, "advisedBy", &example, &config);
    let candidate = variant.ground_truth.clone().unwrap().clauses[0].clone();
    c.bench_function("theta_subsumption_ground_bottom_clause", |b| {
        b.iter(|| black_box(subsumes(black_box(&candidate), black_box(&ground))))
    });
}

fn bench_bottom_clause(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let example = variant.task.positive[0].clone();
    let plan = BottomClausePlan::compile(variant.db.schema(), false);
    let config = CastorConfig::uwcse();
    c.bench_function("castor_ind_aware_bottom_clause", |b| {
        b.iter(|| {
            black_box(castor_core::castor_ground_bottom_clause(
                &variant.db,
                &plan,
                "advisedBy",
                black_box(&example),
                &config,
            ))
        })
    });
}

fn bench_natural_join(c: &mut Criterion) {
    let family = family();
    let db = &family.variant("Original").unwrap().db;
    let student = db.relation("student").unwrap();
    let in_phase = db.relation("inPhase").unwrap();
    c.bench_function("natural_join_student_inphase", |b| {
        b.iter(|| black_box(natural_join(student, in_phase, "joined").unwrap()))
    });
}

fn bench_lgg(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let config = BottomClauseConfig::default();
    let g1 = ground_bottom_clause(&variant.db, "advisedBy", &variant.task.positive[0], &config);
    let g2 = ground_bottom_clause(&variant.db, "advisedBy", &variant.task.positive[1], &config);
    c.bench_function("lgg_of_two_saturations", |b| {
        b.iter(|| black_box(lgg_clauses(black_box(&g1), black_box(&g2))))
    });
}

criterion_group!(benches, bench_subsumption, bench_bottom_clause, bench_natural_join, bench_lgg);
criterion_main!(benches);
