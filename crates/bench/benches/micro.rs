//! Criterion micro-benchmarks for the core primitives every learner relies
//! on: θ-subsumption (coverage testing), IND-aware bottom-clause
//! construction, natural joins (composition), lgg (Golem's operator), and
//! the `castor-engine` coverage path (compiled plans + memoized cache)
//! against the uncached, per-call-planned baseline.

use castor_bench::coverage_candidate_sequence;
use castor_core::{BottomClausePlan, CastorConfig};
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_engine::{Engine, EngineConfig, Prior};
use castor_learners::bottom_clause::{ground_bottom_clause, BottomClauseConfig};
use castor_logic::{covers_example, lgg_clauses, subsumes, Clause};
use castor_relational::{natural_join, Tuple};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn family() -> castor_datasets::SchemaFamily {
    generate(&UwCseConfig::default())
}

fn bench_subsumption(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let example = variant.task.positive[0].clone();
    let config = BottomClauseConfig::default();
    let ground = ground_bottom_clause(&variant.db, "advisedBy", &example, &config);
    let candidate = variant.ground_truth.clone().unwrap().clauses[0].clone();
    c.bench_function("theta_subsumption_ground_bottom_clause", |b| {
        b.iter(|| black_box(subsumes(black_box(&candidate), black_box(&ground))))
    });
}

fn bench_bottom_clause(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let example = variant.task.positive[0].clone();
    let plan = BottomClausePlan::compile(variant.db.schema(), false);
    let config = CastorConfig::uwcse();
    c.bench_function("castor_ind_aware_bottom_clause", |b| {
        b.iter(|| {
            black_box(castor_core::castor_ground_bottom_clause(
                &variant.db,
                &plan,
                "advisedBy",
                black_box(&example),
                &config,
            ))
        })
    });
}

fn bench_natural_join(c: &mut Criterion) {
    let family = family();
    let db = &family.variant("Original").unwrap().db;
    let student = db.relation("student").unwrap();
    let in_phase = db.relation("inPhase").unwrap();
    c.bench_function("natural_join_student_inphase", |b| {
        b.iter(|| black_box(natural_join(student, in_phase, "joined").unwrap()))
    });
}

fn bench_lgg(c: &mut Criterion) {
    let family = family();
    let variant = family.variant("Original").unwrap();
    let config = BottomClauseConfig::default();
    let g1 = ground_bottom_clause(&variant.db, "advisedBy", &variant.task.positive[0], &config);
    let g2 = ground_bottom_clause(&variant.db, "advisedBy", &variant.task.positive[1], &config);
    c.bench_function("lgg_of_two_saturations", |b| {
        b.iter(|| black_box(lgg_clauses(black_box(&g1), black_box(&g2))))
    });
}

/// The engine acceptance benchmark: repeatedly score a sequence of
/// candidate clauses (the access pattern of the covering loop, which
/// re-scores beam survivors and α-variants constantly). The engine path
/// answers repeats from its memoized coverage cache over compiled plans;
/// the baseline re-plans and re-evaluates every candidate per call, like
/// the seed implementation did. The engine side is expected to be ≥ 5×
/// faster — in practice it is orders of magnitude faster, since steady-state
/// scoring is pure cache hits.
fn bench_engine_coverage_cache(c: &mut Criterion) {
    // A larger-than-default instance so one uncached coverage pass costs
    // what it does in a real run; the engine's fixed per-call overhead
    // (canonicalization + cache probe) is then noise.
    let family = generate(&UwCseConfig {
        students: 120,
        professors: 25,
        courses: 40,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    let candidates: Vec<Clause> = coverage_candidate_sequence(variant);
    let examples: Vec<Tuple> = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();

    let engine = Engine::from_arc(std::sync::Arc::clone(&variant.db), EngineConfig::default());
    c.bench_function("engine_coverage_cached_compiled_plans", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for clause in &candidates {
                covered += engine
                    .covered_set(black_box(clause), black_box(&examples), Prior::None)
                    .len();
            }
            black_box(covered)
        })
    });

    c.bench_function("coverage_uncached_per_call_planning", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for clause in &candidates {
                covered += examples
                    .iter()
                    .filter(|e| covers_example(black_box(clause), &variant.db, e))
                    .count();
            }
            black_box(covered)
        })
    });
}

/// The batched-beam acceptance benchmark: score one level of sibling
/// candidates (shared ground-truth prefix, one trailing literal each)
/// through `coverage_counts_batch` versus one `covered_set` call per
/// candidate. Caches are disabled on both sides so every iteration measures
/// real evaluation: the comparison is shared-prefix execution against
/// repeated per-clause prefix joins, expected ≥ 1.5× (and in practice far
/// more as the beam widens).
fn bench_engine_batched_beam_vs_sequential(c: &mut Criterion) {
    let family = generate(&UwCseConfig {
        students: 120,
        professors: 25,
        courses: 40,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    let beam = castor_bench::beam_candidate_batch(variant, 24);
    let examples: Vec<Tuple> = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();

    let config = EngineConfig::default().without_cache();
    let batched = Engine::from_arc(std::sync::Arc::clone(&variant.db), config.clone());
    c.bench_function("engine_batched_beam_vs_sequential/batched", |b| {
        b.iter(|| {
            let sets = batched.covered_sets_batch(black_box(&beam), black_box(&examples));
            black_box(sets.iter().map(|s| s.len()).sum::<usize>())
        })
    });

    let sequential = Engine::from_arc(std::sync::Arc::clone(&variant.db), config);
    c.bench_function("engine_batched_beam_vs_sequential/sequential", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for clause in &beam {
                covered += sequential
                    .covered_set(black_box(clause), black_box(&examples), Prior::None)
                    .len();
            }
            black_box(covered)
        })
    });
}

/// The adaptive-costing acceptance benchmark: one level of beam scoring on
/// skewed synthetic data where the uniform selectivity estimate mis-orders
/// the shared join prefix (hub keys hidden behind a high distinct count).
/// The histogram cost model (plus feedback re-planning, both on by
/// default) probes the selective literal first; the uniform baseline
/// enumerates every hub row per negative example. Coverage caches are off
/// on both sides so the comparison is pure join ordering; expected ≥ 1.3×
/// (in practice well over 10×). The same workload runs in CI as
/// `tests/engine_adaptive_costing.rs`.
fn bench_engine_adaptive_recosting(c: &mut Criterion) {
    let workload = castor_bench::skewed_costing_workload();

    let histogram = Engine::from_arc(
        std::sync::Arc::clone(&workload.db),
        EngineConfig::default().without_cache(),
    );
    c.bench_function("engine_adaptive_recosting/histogram", |b| {
        b.iter(|| {
            let sets = histogram
                .covered_sets_batch(black_box(&workload.beam), black_box(&workload.examples));
            black_box(sets.iter().map(|s| s.len()).sum::<usize>())
        })
    });

    let uniform = Engine::from_arc(
        std::sync::Arc::clone(&workload.db),
        EngineConfig::default()
            .with_uniform_costs()
            .without_feedback_replanning()
            .without_cache(),
    );
    c.bench_function("engine_adaptive_recosting/uniform", |b| {
        b.iter(|| {
            let sets = uniform
                .covered_sets_batch(black_box(&workload.beam), black_box(&workload.examples));
            black_box(sets.iter().map(|s| s.len()).sum::<usize>())
        })
    });
}

/// The wire-protocol overhead benchmark: the same batched coverage job
/// through an in-process `Session` and through a loopback TCP
/// `RpcClient`. The delta is pure transport cost (framing, encoding, two
/// socket hops); the job itself executes on the identical serving stack.
fn bench_rpc_coverage_roundtrip(c: &mut Criterion) {
    use castor_rpc::{RpcClient, RpcConfig, RpcServer};
    use castor_service::{Server, ServerConfig};

    let family = family();
    let variant = family.variant("Original").unwrap();
    let beam: Vec<Clause> = variant.ground_truth.clone().unwrap().clauses;
    let examples: Vec<Tuple> = variant.task.positive.iter().take(16).cloned().collect();

    let in_process = Server::new(ServerConfig::default());
    in_process
        .register("bench", std::sync::Arc::clone(&variant.db))
        .unwrap();
    let session = in_process.session("bench").unwrap();
    c.bench_function("rpc_coverage_roundtrip/in_process_session", |b| {
        b.iter(|| {
            black_box(
                session
                    .covered_sets(black_box(beam.clone()), black_box(examples.clone()))
                    .unwrap(),
            )
        })
    });

    let service = std::sync::Arc::new(Server::new(ServerConfig::default()));
    service
        .register("bench", std::sync::Arc::clone(&variant.db))
        .unwrap();
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
    let mut client = RpcClient::connect(rpc.local_addr(), "bench").unwrap();
    c.bench_function("rpc_coverage_roundtrip/tcp_loopback", |b| {
        b.iter(|| {
            black_box(
                client
                    .covered_sets(black_box(beam.clone()), black_box(examples.clone()))
                    .unwrap(),
            )
        })
    });
}

/// Cross-variant coverage reuse (PR 10): the four UW-CSE variants of one
/// logical database registered on one server through a shared cache
/// arena, versus the same per-variant jobs against isolated servers.
/// The shared side proves each verdict once (on the first variant) and
/// serves the other three from canonical-key cache hits; the independent
/// side evaluates everything four times. Each iteration builds fresh
/// servers — reuse only exists cold, a warm cache would measure nothing.
fn bench_engine_cross_schema_reuse(c: &mut Criterion) {
    use castor_eval::{
        run_uwcse_cross_variant_coverage, run_uwcse_independent_coverage, Transport,
    };

    let family = generate(&UwCseConfig {
        students: 24,
        professors: 6,
        courses: 8,
        noise_fraction: 0.0,
        ..Default::default()
    });
    let clauses = castor_datasets::uwcse::ground_truth_original().clauses;
    let task = &family.variants[0].task;
    let examples: Vec<Tuple> = task
        .positive
        .iter()
        .chain(task.negative.iter())
        .cloned()
        .collect();

    c.bench_function("engine_cross_schema_reuse/shared_arena", |b| {
        b.iter(|| {
            let runs = run_uwcse_cross_variant_coverage(
                black_box(&family),
                black_box(&clauses),
                black_box(&examples),
                1,
                Transport::InProcess,
            );
            assert!(runs[1..].iter().all(|r| r.report.cross_variant_hits > 0));
            black_box(runs)
        })
    });
    c.bench_function("engine_cross_schema_reuse/independent_engines", |b| {
        b.iter(|| {
            black_box(run_uwcse_independent_coverage(
                black_box(&family),
                black_box(&clauses),
                black_box(&examples),
                1,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_subsumption,
    bench_bottom_clause,
    bench_natural_join,
    bench_lgg,
    bench_engine_coverage_cache,
    bench_engine_batched_beam_vs_sequential,
    bench_engine_adaptive_recosting,
    bench_engine_cross_schema_reuse,
    bench_rpc_coverage_roundtrip
);
criterion_main!(benches);
