//! Criterion micro-benchmark for the observability overhead claim: the
//! batched coverage path with the default (enabled) `Obs` handle against
//! the same path with `ObsConfig::disabled()`. The instrumentation on
//! this path is a handful of monotonic clock reads, two histogram
//! records, and one span push per batch — the bench measures whether
//! that stays invisible next to the joins the batch performs. The CI
//! guard `tests/obs_overhead.rs` pins the same workload to a ≤5% bound;
//! the `bench_obs` binary writes the machine-readable `BENCH_obs.json`.

use castor_bench::obs_overhead_workload;
use castor_engine::{Engine, EngineConfig, WorkerPool};
use castor_obs::Obs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_obs_overhead(c: &mut Criterion) {
    let workload = obs_overhead_workload();
    // Caches off: every iteration re-runs the joins, so the measurement
    // is instrumented evaluation throughput, not cache-probe latency.
    // Inline execution keeps iterations deterministic (worker scheduling
    // jitter swings multi-threaded passes more than the overhead).
    let config = EngineConfig::default().without_cache().with_threads(1);
    for (name, obs) in [
        ("coverage_obs_enabled", Obs::enabled_default()),
        ("coverage_obs_disabled", Obs::disabled()),
    ] {
        let pool = Arc::new(WorkerPool::new(config.threads));
        let engine =
            Engine::with_observability(Arc::clone(&workload.db), config.clone(), pool, obs);
        let beam = workload.beam.clone();
        let examples = workload.examples.clone();
        c.bench_function(name, move |b| {
            b.iter(|| black_box(engine.covered_sets_batch(black_box(&beam), &examples)))
        });
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
