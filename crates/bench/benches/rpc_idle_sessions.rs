//! Connection-scaling benchmark for the event-loop RPC server: one live
//! client's coverage roundtrip while the server holds an increasing
//! herd of *idle* sessions. On the readiness-driven core, idle
//! connections produce no events, so latency must stay flat as the herd
//! grows; the thread-per-connection core pays two parked threads per
//! idle session instead. (The full 10k-session soak lives in
//! `tests/rpc_scale.rs`; this bench charts the latency curve at sizes
//! one process can hold both ends of.)

use castor_bench::rpc_roundtrip_workload;
use castor_rpc::frame::{read_response, request_to_bytes};
use castor_rpc::{Request, Response, RpcClient, RpcConfig, RpcServer, DEFAULT_MAX_FRAME_BYTES};
use castor_service::{Server, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::TcpStream;
use std::sync::Arc;

/// Holds `count` idle sessions against `addr`: raw sockets with a
/// completed Hello handshake, parked for the holder's lifetime.
fn hold_idle_sessions(addr: std::net::SocketAddr, count: usize) -> Vec<TcpStream> {
    use std::io::Write;
    let hello = request_to_bytes(
        1,
        &Request::Hello {
            database: "bench".to_string(),
            eval_budget: None,
            stream_credit: None,
        },
    );
    (0..count)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("idle connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&hello).expect("hello write");
            let (_, response) =
                read_response(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("hello response");
            assert!(matches!(response, Response::HelloOk));
            stream
        })
        .collect()
}

fn bench_rpc_idle_sessions(c: &mut Criterion) {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    castor_rpc::sys::raise_nofile_limit();

    let workload = rpc_roundtrip_workload();
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("bench", Arc::clone(&workload.db)).unwrap();
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
    let mut client = RpcClient::connect(rpc.local_addr(), "bench").unwrap();

    let mut held: Vec<TcpStream> = Vec::new();
    for idle in [0usize, 256, 1024] {
        held.extend(hold_idle_sessions(rpc.local_addr(), idle - held.len()));
        c.bench_function(
            &format!("rpc_idle_sessions/roundtrip_with_{idle}_idle"),
            |b| {
                b.iter(|| {
                    black_box(
                        client
                            .score(
                                black_box(workload.beam.clone()),
                                black_box(workload.positive.clone()),
                                black_box(workload.negative.clone()),
                            )
                            .unwrap(),
                    )
                })
            },
        );
    }
    drop(held);
}

criterion_group!(benches, bench_rpc_idle_sessions);
criterion_main!(benches);
