//! Span records, the bounded ring buffer that stores them, and the
//! Chrome-trace JSON export.
//!
//! Spans are completed intervals, not RAII guards: call sites read the
//! clock, do the work, then hand the finished record to the ring. The
//! ring is a mutex-protected `VecDeque` with a fixed capacity — span
//! recording happens at job granularity (queue pop, batch evaluation,
//! RPC reply), so a short critical section per job is far below the
//! noise floor, and the bound means a long-lived server can never grow
//! its trace memory without bound. Overflow evicts the oldest record
//! and bumps a counter so the loss is visible.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span: a named interval on some trace's timeline.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// What the interval covered, dot-namespaced by layer
    /// (`rpc.client.encode`, `service.queue_wait`, `engine.batch_eval`).
    pub name: String,
    /// The trace this span belongs to. RPC-originated work carries the
    /// frame request id verbatim; locally minted ids have the high bit
    /// set so the two spaces never collide.
    pub trace: u64,
    /// Start time in nanoseconds since the owning [`Obs`] epoch.
    ///
    /// [`Obs`]: crate::Obs
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured payload (watchdog events put the offending clause and
    /// plan order here).
    pub args: Vec<(String, String)>,
}

#[derive(Debug)]
struct RingInner {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
}

/// A bounded, server-wide buffer of recent [`SpanRecord`]s.
#[derive(Debug)]
pub struct SpanRing {
    inner: Mutex<RingInner>,
    dropped: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (capacity 0 keeps
    /// nothing and counts every record as dropped).
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            inner: Mutex::new(RingInner {
                spans: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a completed span, evicting the oldest if full.
    pub fn record(&self, span: SpanRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.capacity == 0 {
            drop(inner);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if inner.spans.len() >= inner.capacity {
            inner.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.spans.push_back(span);
    }

    /// Copies out every buffered span, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Spans evicted (or refused) because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` longest buffered spans, longest first.
    pub fn slowest(&self, n: usize) -> Vec<SpanRecord> {
        let mut spans = self.snapshot();
        spans.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
        spans.truncate(n);
        spans
    }

    /// Renders the buffer as Chrome-trace JSON (the `chrome://tracing` /
    /// Perfetto "complete event" format: `ph:"X"` with microsecond
    /// `ts`/`dur`). The trace id rides in `args.trace` so one job's spans
    /// can be correlated across layers.
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"trace\":\"{:#x}\"",
                escape_json(&span.name),
                span.trace & 0xffff,
                span.start_ns as f64 / 1000.0,
                span.dur_ns as f64 / 1000.0,
                span.trace,
            ));
            for (k, v) in &span.args {
                out.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaper (quotes, backslashes, control bytes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, trace: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            trace,
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = SpanRing::new(2);
        ring.record(span("a", 1, 0, 10));
        ring.record(span("b", 1, 10, 10));
        ring.record(span("c", 1, 20, 10));
        let names: Vec<String> = ring.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn slowest_sorts_by_duration() {
        let ring = SpanRing::new(8);
        ring.record(span("fast", 1, 0, 5));
        ring.record(span("slow", 2, 0, 500));
        ring.record(span("mid", 3, 0, 50));
        let top: Vec<String> = ring.slowest(2).into_iter().map(|s| s.name).collect();
        assert_eq!(top, vec!["slow", "mid"]);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_carries_args() {
        let ring = SpanRing::new(4);
        ring.record(SpanRecord {
            name: "watchdog.slow_job".to_string(),
            trace: 0x2a,
            start_ns: 1_500,
            dur_ns: 2_000_000,
            args: vec![("clause".to_string(), "h(x) :- \"r\"(x)".to_string())],
        });
        let json = ring.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"watchdog.slow_job\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2000.000"), "{json}");
        assert!(json.contains("\"trace\":\"0x2a\""), "{json}");
        assert!(json.contains("\\\"r\\\"(x)"), "{json}");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let ring = SpanRing::new(0);
        ring.record(span("a", 1, 0, 1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
