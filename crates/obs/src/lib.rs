//! castor-obs: dependency-free observability for the Castor stack.
//!
//! Three pieces, all std-only, mirroring the no-dependency discipline of
//! the wire codec:
//!
//! * metrics — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   log2 latency [`Histogram`]s behind a [`Registry`] that renders
//!   Prometheus-style text exposition. External atomic counter families
//!   plug in through [`Collect`] so every number has one storage site.
//! * spans — completed-interval [`SpanRecord`]s in a bounded
//!   [`SpanRing`], exportable as Chrome-trace JSON.
//! * [`Obs`] — the per-component handle tying them together: a monotonic
//!   clock epoch, trace-id minting, and the enable switch that turns
//!   every record into a no-op (no `Instant::now()` on the hot path)
//!   when observability is off.
//!
//! Trace ids are 64-bit. Work that enters through the RPC front end
//! carries the frame request id verbatim; work minted locally (library
//! and in-process sessions) gets ids with the high bit
//! ([`LOCAL_TRACE_BIT`]) set, so the two id spaces never collide and a
//! span dump can always be joined against client-side request logs.

mod metrics;
mod span;

pub use metrics::{
    Collect, Counter, Exposition, Gauge, Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use span::{SpanRecord, SpanRing};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// High bit of locally minted trace ids, keeping them disjoint from RPC
/// frame request ids (which count up from 0).
pub const LOCAL_TRACE_BIT: u64 = 1 << 63;

/// Configuration for an [`Obs`] handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When false, timers return zero without reading the
    /// clock and spans are discarded; counters and histograms still exist
    /// so scrapes stay well-formed.
    pub enabled: bool,
    /// Maximum spans retained in the ring buffer.
    pub span_capacity: usize,
    /// Jobs running longer than this trip the slow-job watchdog.
    pub slow_job_threshold: Duration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            span_capacity: 4096,
            slow_job_threshold: Duration::from_millis(500),
        }
    }
}

impl ObsConfig {
    /// Instrumentation off: the configuration benchmarks compare against.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }

    /// Sets the span ring capacity.
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }

    /// Sets the slow-job watchdog threshold.
    pub fn with_slow_job_threshold(mut self, threshold: Duration) -> Self {
        self.slow_job_threshold = threshold;
        self
    }
}

/// A started (or suppressed) measurement. Produced by [`Obs::timer`];
/// finish it with [`Timer::stop_ns`] or [`Obs::record_since`].
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Option<Instant>,
}

impl Timer {
    /// Elapsed nanoseconds, or 0 if the owning [`Obs`] was disabled.
    pub fn elapsed_ns(&self) -> u64 {
        match self.start {
            Some(start) => start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records the elapsed time into `hist` and returns it; no-op (and 0)
    /// when suppressed.
    pub fn stop_ns(&self, hist: &Histogram) -> u64 {
        match self.start {
            Some(start) => {
                let ns = start.elapsed().as_nanos() as u64;
                hist.record_ns(ns);
                ns
            }
            None => 0,
        }
    }

    /// Whether this timer is actually measuring.
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

/// The per-component observability handle: clock epoch, registry, span
/// ring, trace minting, and the enable switch.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    epoch: Instant,
    registry: Registry,
    spans: Arc<SpanRing>,
    slow_job_threshold_ns: u64,
    next_trace: AtomicU64,
    /// When set, the span ring is written there as Chrome-trace JSON on
    /// drop (see [`Obs::dump_on_drop`]).
    dump_path: std::sync::Mutex<Option<std::path::PathBuf>>,
}

struct SpanRingCollector(Arc<SpanRing>);

impl Collect for SpanRingCollector {
    fn collect(&self, exp: &mut Exposition) {
        exp.gauge(
            "castor_obs_spans_buffered",
            "Spans currently held in the trace ring buffer.",
            &[],
            self.0.len() as i64,
        );
        exp.counter(
            "castor_obs_spans_dropped_total",
            "Spans evicted from the trace ring buffer by overflow.",
            &[],
            self.0.dropped(),
        );
    }
}

impl Obs {
    /// Builds a handle from `config`.
    pub fn new(config: ObsConfig) -> Self {
        let spans = Arc::new(SpanRing::new(config.span_capacity));
        let registry = Registry::new();
        registry.register_collector(Box::new(SpanRingCollector(Arc::clone(&spans))));
        Obs {
            enabled: config.enabled,
            epoch: Instant::now(),
            registry,
            spans,
            slow_job_threshold_ns: config.slow_job_threshold.as_nanos() as u64,
            next_trace: AtomicU64::new(1),
            dump_path: std::sync::Mutex::new(None),
        }
    }

    /// Shorthand for an enabled handle with defaults.
    pub fn enabled_default() -> Arc<Obs> {
        Arc::new(Obs::new(ObsConfig::default()))
    }

    /// Shorthand for a disabled handle.
    pub fn disabled() -> Arc<Obs> {
        Arc::new(Obs::new(ObsConfig::disabled()))
    }

    /// Whether instrumentation is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span ring buffer.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// The slow-job watchdog threshold in nanoseconds.
    pub fn slow_job_threshold_ns(&self) -> u64 {
        self.slow_job_threshold_ns
    }

    /// Nanoseconds since this handle's epoch (0 when disabled — the
    /// clock is never read on a disabled handle).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Starts a timer (suppressed when disabled).
    pub fn timer(&self) -> Timer {
        Timer {
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records `now - start_ns` into `hist` and returns the duration;
    /// no-op when disabled. `start_ns` must come from [`Obs::now_ns`].
    pub fn record_since(&self, hist: &Histogram, start_ns: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        let dur = self.now_ns().saturating_sub(start_ns);
        hist.record_ns(dur);
        dur
    }

    /// Mints a fresh local trace id (high bit set; see [`LOCAL_TRACE_BIT`]).
    pub fn mint_trace(&self) -> u64 {
        LOCAL_TRACE_BIT | self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a completed span starting at `start_ns` (from
    /// [`Obs::now_ns`]) and ending now. No-op when disabled.
    pub fn span(&self, name: &str, trace: u64, start_ns: u64) {
        self.span_with_args(name, trace, start_ns, Vec::new());
    }

    /// Records a completed span with a structured payload. No-op when
    /// disabled.
    pub fn span_with_args(
        &self,
        name: &str,
        trace: u64,
        start_ns: u64,
        args: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        let now = self.now_ns();
        self.spans.record(SpanRecord {
            name: name.to_string(),
            trace,
            start_ns,
            dur_ns: now.saturating_sub(start_ns),
            args,
        });
    }

    /// Records a span whose duration was measured externally (queue
    /// waits stamped at submit time). No-op when disabled.
    pub fn span_measured(
        &self,
        name: &str,
        trace: u64,
        start_ns: u64,
        dur_ns: u64,
        args: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.record(SpanRecord {
            name: name.to_string(),
            trace,
            start_ns,
            dur_ns,
            args,
        });
    }

    /// Renders the registry (owned metrics plus collectors) as
    /// Prometheus-style text.
    pub fn expose(&self) -> String {
        self.registry.expose()
    }

    /// Renders the span ring as Chrome-trace JSON.
    pub fn trace_json(&self) -> String {
        self.spans.to_chrome_trace()
    }

    /// Arms span-ring persistence: when this handle is dropped — normal
    /// server shutdown and unwinding panics alike — the span ring is
    /// written to `path` as Chrome-trace JSON, so a crashed server leaves
    /// a post-mortem trace behind. Pass-through state, not a file handle:
    /// nothing is opened until the drop. Write errors are swallowed (a
    /// failing dump must not turn a shutdown into a panic).
    pub fn dump_on_drop(&self, path: impl Into<std::path::PathBuf>) {
        *self.dump_path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path.into());
    }
}

impl Drop for Obs {
    fn drop(&mut self) {
        let path = self
            .dump_path
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(path) = path {
            let _ = std::fs::write(path, self.spans.to_chrome_trace());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_reads_no_clock_and_records_nothing() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(!obs.enabled());
        assert_eq!(obs.now_ns(), 0);
        let t = obs.timer();
        assert!(!t.is_live());
        let h = obs.registry().histogram("castor_t_ns", "t");
        assert_eq!(t.stop_ns(&h), 0);
        assert_eq!(h.count(), 0);
        obs.span("x", 1, 0);
        assert!(obs.spans().is_empty());
    }

    #[test]
    fn enabled_handle_times_spans_and_histograms() {
        let obs = Obs::new(ObsConfig::default().with_span_capacity(16));
        let h = obs.registry().histogram("castor_t_ns", "t");
        let start = obs.now_ns();
        let t = obs.timer();
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.stop_ns(&h) >= 1_000_000);
        assert_eq!(h.count(), 1);
        obs.span("work", 7, start);
        let spans = obs.spans().snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, 7);
        assert!(spans[0].dur_ns >= 1_000_000);
    }

    #[test]
    fn minted_traces_are_distinct_and_high_bit_tagged() {
        let obs = Obs::new(ObsConfig::default());
        let a = obs.mint_trace();
        let b = obs.mint_trace();
        assert_ne!(a, b);
        assert!(a & LOCAL_TRACE_BIT != 0);
        assert!(b & LOCAL_TRACE_BIT != 0);
    }

    #[test]
    fn dump_on_drop_writes_chrome_trace_json() {
        let path = std::env::temp_dir().join(format!(
            "castor-obs-dump-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let obs = Obs::new(ObsConfig::default());
            obs.span("post-mortem", 1, 0);
            obs.dump_on_drop(&path);
        }
        let dumped = std::fs::read_to_string(&path).expect("drop wrote the trace file");
        assert!(dumped.contains("traceEvents"), "{dumped}");
        assert!(dumped.contains("post-mortem"), "{dumped}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn undumped_obs_drops_without_touching_the_filesystem() {
        let obs = Obs::new(ObsConfig::default());
        obs.span("quiet", 1, 0);
        drop(obs); // no dump path set: nothing to assert beyond "no panic"
    }

    #[test]
    fn expose_includes_span_ring_health() {
        let obs = Obs::new(ObsConfig::default().with_span_capacity(1));
        obs.span("a", 1, 0);
        obs.span("b", 1, 0);
        let text = obs.expose();
        assert!(text.contains("castor_obs_spans_buffered 1"), "{text}");
        assert!(text.contains("castor_obs_spans_dropped_total 1"), "{text}");
    }
}
