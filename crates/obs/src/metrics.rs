//! Lock-free metric primitives and the registry that exposes them.
//!
//! Everything on the record path is a relaxed atomic operation: counters
//! and gauges are single `fetch_add`s, histogram observations touch three
//! atomics (bucket, count, sum). Reads never stop the world — a snapshot
//! is a relaxed load per cell, consistent enough for monitoring. The
//! registry hands out [`Arc`]ed handles so hot paths never re-hash a
//! metric name, and external counter families (the engine and server
//! report structs that predate this crate) plug in through the
//! [`Collect`] trait so every number has exactly one storage location.

use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live sessions).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i < BUCKETS - 1` counts
/// observations `<= 2^i`; the last bucket is `+Inf`. With nanosecond
/// observations, `2^46 ns` is ≈ 19.5 hours — far past anything a job can
/// legitimately take.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-bucket log2 latency histogram in nanoseconds.
///
/// Recording is three relaxed atomic adds; quantiles are read off a
/// snapshot without any coordination with writers. Bucket bounds are
/// powers of two, so a reported quantile is exact to within a factor of
/// two — the right fidelity for "where does time go" questions and cheap
/// enough to leave on in production.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index an observation falls into: the smallest `i` with
/// `value <= 2^i`, capped at the overflow bucket.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    let ceil_log2 = 64 - (value - 1).leading_zeros() as usize;
    ceil_log2.min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum_ns(),
        }
    }

    /// The upper-bound estimate of quantile `q` in `0.0..=1.0` (e.g.
    /// `0.99`), in nanoseconds. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.snapshot().quantile_ns(q)
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of bucket `i` in nanoseconds (`u64::MAX` = +Inf).
    pub fn bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// The upper-bound estimate of quantile `q`, in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return HistogramSnapshot::bound(i);
            }
        }
        HistogramSnapshot::bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Source of metric samples computed at scrape time — the bridge that
/// lets pre-existing atomic counter families ([`EngineStats`],
/// [`ServerStats`], queue and pool counters) appear in the exposition
/// without being stored twice.
///
/// [`EngineStats`]: https://docs.rs/castor-engine
/// [`ServerStats`]: https://docs.rs/castor-service
pub trait Collect: Send + Sync {
    /// Appends this source's samples to the exposition.
    fn collect(&self, exp: &mut Exposition);
}

/// One registered histogram series: a metric name plus a (possibly empty)
/// label set. Two series may share a name with different labels — the
/// per-database latency histograms do — and the exposition emits one
/// `# TYPE` header for the name with one sample family per label set.
struct HistogramEntry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    hist: Arc<Histogram>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, String, Arc<Counter>)>,
    gauges: Vec<(String, String, Arc<Gauge>)>,
    histograms: Vec<HistogramEntry>,
    collectors: Vec<Box<dyn Collect>>,
}

/// A named collection of metrics plus scrape-time [`Collect`] sources.
///
/// Getters are idempotent: asking twice for the same name returns the
/// same handle, so instrumented components can be constructed
/// independently and still share counters. The registry lock is only
/// taken at construction and scrape time, never on the record path.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, c)) = inner.counters.iter().find(|(n, _, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner
            .counters
            .push((name.to_string(), help.to_string(), Arc::clone(&c)));
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, g)) = inner.gauges.iter().find(|(n, _, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner
            .gauges
            .push((name.to_string(), help.to_string(), Arc::clone(&g)));
        g
    }

    /// The unlabeled histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.labeled_histogram(name, help, &[])
    }

    /// The histogram registered under `name` with exactly `labels`,
    /// creating it on first use. Idempotent on the `(name, labels)` pair:
    /// each label set of one name is its own series (the per-database
    /// queue-wait/run-time histograms are keyed `{db="..."}` this way).
    pub fn labeled_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.histograms.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
        }) {
            return Arc::clone(&entry.hist);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.push(HistogramEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            hist: Arc::clone(&h),
        });
        h
    }

    /// Adds a scrape-time sample source.
    pub fn register_collector(&self, collector: Box<dyn Collect>) {
        self.inner.lock().unwrap().collectors.push(collector);
    }

    /// Renders every owned metric and every collector's samples as
    /// Prometheus-style text exposition.
    pub fn expose(&self) -> String {
        let mut exp = Exposition::new();
        let inner = self.inner.lock().unwrap();
        for (name, help, c) in &inner.counters {
            exp.counter(name, help, &[], c.get());
        }
        for (name, help, g) in &inner.gauges {
            exp.gauge(name, help, &[], g.get());
        }
        for entry in &inner.histograms {
            let labels: Vec<(&str, &str)> = entry
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            exp.histogram(&entry.name, &entry.help, &labels, &entry.hist.snapshot());
        }
        for collector in &inner.collectors {
            collector.collect(&mut exp);
        }
        exp.finish()
    }
}

/// Incremental builder for Prometheus-style text exposition
/// (`# TYPE` headers, `name{label="value"} sample` lines, cumulative
/// `_bucket`/`_sum`/`_count` triples for histograms).
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    typed: HashSet<String>,
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn type_line(&mut self, name: &str, kind: &str, help: &str) {
        if self.typed.insert(name.to_string()) {
            if !help.is_empty() {
                self.out.push_str(&format!("# HELP {name} {help}\n"));
            }
            self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.type_line(name, "counter", help);
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.type_line(name, "gauge", help);
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Appends one histogram (cumulative buckets, sum, count).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        self.type_line(name, "histogram", help);
        let mut cumulative = 0u64;
        for (i, &c) in snapshot.buckets.iter().enumerate() {
            cumulative += c;
            // Trailing empty buckets carry no information; stop once the
            // cumulative count has caught the total (the +Inf bucket below
            // always closes the series).
            let le = if i + 1 >= HISTOGRAM_BUCKETS {
                break;
            } else {
                HistogramSnapshot::bound(i).to_string()
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels(&with_le)
            ));
            if cumulative >= snapshot.count {
                break;
            }
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.out.push_str(&format!(
            "{name}_bucket{} {}\n",
            render_labels(&with_inf),
            snapshot.count
        ));
        self.out.push_str(&format!(
            "{name}_sum{} {}\n",
            render_labels(labels),
            snapshot.sum
        ));
        self.out.push_str(&format!(
            "{name}_count{} {}\n",
            render_labels(labels),
            snapshot.count
        ));
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_smallest_power_of_two_bound() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_ns(), 90 * 100 + 10 * 1_000_000);
        let p50 = h.quantile_ns(0.50);
        assert!((100..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((1_000_000..=2_097_152).contains(&p99), "p99={p99}");
    }

    #[test]
    fn registry_getters_are_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("castor_x_total", "x");
        let b = reg.counter("castor_x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let h1 = reg.histogram("castor_y_ns", "y");
        let h2 = reg.histogram("castor_y_ns", "y");
        h1.record_ns(5);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn exposition_renders_types_labels_and_cumulative_buckets() {
        let reg = Registry::new();
        reg.counter("castor_jobs_total", "jobs").add(7);
        reg.gauge("castor_depth", "depth").set(-2);
        let h = reg.histogram("castor_wait_ns", "wait");
        h.record_ns(3);
        h.record_ns(300);
        let text = reg.expose();
        assert!(text.contains("# TYPE castor_jobs_total counter"), "{text}");
        assert!(text.contains("castor_jobs_total 7"), "{text}");
        assert!(text.contains("castor_depth -2"), "{text}");
        assert!(text.contains("# TYPE castor_wait_ns histogram"), "{text}");
        assert!(
            text.contains("castor_wait_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("castor_wait_ns_sum 303"), "{text}");
        assert!(text.contains("castor_wait_ns_count 2"), "{text}");
        // Cumulative: the bucket holding 300 (le=512) also counts the 3.
        assert!(
            text.contains("castor_wait_ns_bucket{le=\"512\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn collectors_run_at_scrape_time_with_one_type_header() {
        struct Db(&'static str, u64);
        impl Collect for Db {
            fn collect(&self, exp: &mut Exposition) {
                exp.counter("castor_db_tests_total", "tests", &[("db", self.0)], self.1);
            }
        }
        let reg = Registry::new();
        reg.register_collector(Box::new(Db("a", 1)));
        reg.register_collector(Box::new(Db("b", 2)));
        let text = reg.expose();
        assert_eq!(
            text.matches("# TYPE castor_db_tests_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("castor_db_tests_total{db=\"a\"} 1"), "{text}");
        assert!(text.contains("castor_db_tests_total{db=\"b\"} 2"), "{text}");
    }

    #[test]
    fn labeled_histograms_are_distinct_series_under_one_type_header() {
        let reg = Registry::new();
        let a = reg.labeled_histogram("castor_wait_ns", "wait", &[("db", "imdb")]);
        let b = reg.labeled_histogram("castor_wait_ns", "wait", &[("db", "uwcse")]);
        let a2 = reg.labeled_histogram("castor_wait_ns", "wait", &[("db", "imdb")]);
        a.record_ns(10);
        a2.record_ns(10);
        b.record_ns(1_000);
        assert_eq!(a.count(), 2, "same (name, labels) shares one series");
        assert_eq!(b.count(), 1);
        let text = reg.expose();
        assert_eq!(
            text.matches("# TYPE castor_wait_ns histogram").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("castor_wait_ns_count{db=\"imdb\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("castor_wait_ns_count{db=\"uwcse\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("castor_wait_ns_bucket{db=\"imdb\",le=\"+Inf\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut exp = Exposition::new();
        exp.counter("castor_c_total", "", &[("q", "a\"b\\c\nd")], 1);
        let text = exp.finish();
        assert!(text.contains("q=\"a\\\"b\\\\c\\nd\""), "{text}");
    }
}
