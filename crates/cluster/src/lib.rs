//! castor-cluster: a sharded multi-server tier over `castor-rpc`.
//!
//! One [`Router`] turns N independent [`castor_rpc::RpcServer`] members
//! into a single logical serving surface:
//!
//! * **Placement** — each database is owned by exactly one member,
//!   chosen by consistent hashing ([`HashRing`], FNV-1a with virtual
//!   nodes). Placement is a pure function of the member set and the
//!   database name: any router over the same membership routes
//!   identically, with no coordination protocol.
//! * **Routing** — [`Router::session`] hands out a
//!   [`castor_service::Session`]-shaped handle ([`ClusterSession`]);
//!   callers written against the in-process engine, the single-server
//!   RPC client, or the cluster differ only in construction. Requests
//!   ride pooled [`castor_rpc::RetryClient`]s, one per
//!   (member, database).
//! * **Rebalancing** — [`Router::add_member`] / [`Router::remove_member`]
//!   drain in-flight jobs on moved shards, replay the router's mirror of
//!   each moved database to its new owner through ordinary mutation
//!   frames, and flip routing atomically per database
//!   ([`RebalanceReport`] counts moves, replayed tuples, drain time).
//!   Replay preserves relation name order and tuple insertion order, so
//!   learning over a moved shard reproduces learning over the original.
//!
//! The router is *client-side*: members do not know about each other,
//! and nothing new runs on a server to join a cluster — any plain
//! `RpcServer` that has the schemas registered is a valid member.
//!
//! ```text
//!              Router (client process)
//!        ring: db → member      mirror per db
//!       ┌────────┬────────┬────────┐
//!       ▼        ▼        ▼        │ replay on
//!   RpcServer RpcServer RpcServer ◄┘ membership change
//!      (a)      (b)      (c)
//! ```

mod ring;
mod router;

pub use ring::HashRing;
pub use router::{
    ClusterConfig, ClusterError, ClusterSession, MetricsEndpoint, RebalanceReport, Router,
};
