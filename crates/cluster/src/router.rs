//! The client-side router: one process's view of a sharded Castor
//! cluster.
//!
//! A [`Router`] holds a member list (name → RPC address), places every
//! registered database on a member via the consistent-hash [`HashRing`],
//! and proxies a [`castor_service::Session`]-shaped API
//! ([`ClusterSession`]) to the owning member over [`RetryClient`]
//! connections. Callers written against the in-process session or the
//! single-server RPC client run unchanged against a cluster.
//!
//! ## Routing and the mirror
//!
//! Every database has a [`DbState`]: the current owner plus a full local
//! **mirror** of the database's content. The mirror is updated only by
//! *acknowledged* mutations (the owner confirmed the apply), which makes
//! it two things at once: the replay source for rebalancing, and ground
//! truth for "no acknowledged mutation was lost" — after any sequence of
//! membership changes, the owner's content must equal the mirror.
//!
//! ## Rebalancing lifecycle
//!
//! A membership change ([`Router::add_member`] / [`Router::remove_member`])
//! runs, per moved database:
//!
//! 1. **epoch bump** — the shared topology epoch increments *first*, so
//!    retrying clients treat backoff hints minted by the old owner as
//!    stale ([`RetryClient::with_topology_epoch`]);
//! 2. **drain** — the database's gate is write-locked: in-flight proxied
//!    jobs (which hold read locks) finish, new ones wait;
//! 3. **replay** — the mirror is replayed to the new owner as chunked
//!    mutation batches, relations in name order and tuples in insertion
//!    order (insertion order is load-bearing: learning over the copy must
//!    reproduce learning over the original);
//! 4. **flip** — the owner field swaps and the gate unlocks; queued
//!    callers proceed against the new owner. The old owner's copy is
//!    emptied best-effort (it may already be gone).

use crate::ring::HashRing;
use castor_engine::{ClauseCounts, EngineReport, LearnProgress};
use castor_learners::LearningTask;
use castor_logic::{Clause, Definition};
use castor_obs::{Collect, Exposition, Obs};
use castor_relational::{DatabaseInstance, MutationBatch, MutationSummary, Tuple};
use castor_rpc::frame::{read_request_versioned, write_response_v};
use castor_rpc::{
    ClientConfig, ErrorCode, FrameError, Request, Response, RetryClient, RetryPolicy, RpcError,
    DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_VERSION,
};
use castor_service::{LearnAlgorithm, ServerReport};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cluster-level knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Ring points per member (more points → smoother load split and
    /// smaller rebalance moves; placement changes if this changes).
    pub virtual_nodes: usize,
    /// Connection knobs for the per-(member, database) clients.
    pub client: ClientConfig,
    /// Retry policy for the per-(member, database) clients.
    pub policy: RetryPolicy,
    /// Tuples per mutation batch when replaying a mirror during
    /// registration or rebalancing.
    pub replay_chunk: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            virtual_nodes: 64,
            client: ClientConfig::default(),
            policy: RetryPolicy::default(),
            replay_chunk: 512,
        }
    }
}

impl ClusterConfig {
    /// Sets the virtual-node count (builder style).
    pub fn with_virtual_nodes(mut self, virtual_nodes: usize) -> Self {
        self.virtual_nodes = virtual_nodes;
        self
    }

    /// Sets the per-client connection config (builder style).
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }

    /// Sets the per-client retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the rebalance replay chunk size (builder style).
    pub fn with_replay_chunk(mut self, replay_chunk: usize) -> Self {
        self.replay_chunk = replay_chunk.max(1);
        self
    }
}

/// Why a cluster operation failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The router has no members to place databases on.
    NoMembers,
    /// The database was never registered with this router.
    UnknownDatabase(String),
    /// The member named in a membership operation does not exist (or a
    /// duplicate was added).
    UnknownMember(String),
    /// The proxied RPC failed after the client's own retries.
    Rpc(RpcError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoMembers => write!(f, "cluster has no members"),
            ClusterError::UnknownDatabase(name) => {
                write!(f, "database {name:?} is not registered with this router")
            }
            ClusterError::UnknownMember(name) => write!(f, "no such cluster member {name:?}"),
            ClusterError::Rpc(e) => write!(f, "cluster rpc failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<RpcError> for ClusterError {
    fn from(e: RpcError) -> Self {
        ClusterError::Rpc(e)
    }
}

/// What one membership change did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Databases whose owner changed.
    pub moves: u64,
    /// Tuples replayed to new owners.
    pub replayed_tuples: u64,
    /// Total nanoseconds spent waiting for in-flight jobs to drain
    /// (write-lock acquisition across all moved databases).
    pub drain_ns: u64,
}

/// Per-database routing state. The gate is the drain mechanism: proxied
/// jobs hold it shared; a rebalance takes it exclusively, so the flip
/// happens only between jobs, never under one.
struct DbState {
    gate: RwLock<DbInner>,
}

struct DbInner {
    owner: String,
    mirror: DatabaseInstance,
}

/// Router-side counters, exposed through a [`Collect`] hook on the
/// router's registry.
#[derive(Default)]
struct RouterStats {
    /// Requests proxied, per member.
    requests: Mutex<BTreeMap<String, u64>>,
    /// Whether the last proxied request per member succeeded.
    healthy: Mutex<BTreeMap<String, bool>>,
    rebalance_moves: AtomicU64,
    replayed_tuples: AtomicU64,
}

impl RouterStats {
    fn record(&self, member: &str, ok: bool) {
        *self
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(member.to_string())
            .or_insert(0) += 1;
        self.healthy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(member.to_string(), ok);
    }

    fn forget(&self, member: &str) {
        self.healthy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(member);
    }
}

struct RouterCollector(Arc<RouterStats>);

impl Collect for RouterCollector {
    fn collect(&self, exp: &mut Exposition) {
        let requests = self
            .0
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for (member, count) in &requests {
            exp.counter(
                "castor_router_requests_total",
                "Requests proxied to a cluster member.",
                &[("member", member)],
                *count,
            );
        }
        let healthy = self
            .0
            .healthy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for (member, ok) in &healthy {
            exp.gauge(
                "castor_router_member_healthy",
                "1 when the member's last proxied request succeeded, 0 otherwise.",
                &[("member", member)],
                i64::from(*ok),
            );
        }
        exp.counter(
            "castor_router_rebalance_moves_total",
            "Database shards moved to a new owner by membership changes.",
            &[],
            self.0.rebalance_moves.load(Ordering::Relaxed),
        );
        exp.counter(
            "castor_router_replayed_tuples_total",
            "Tuples replayed to new owners during registration and rebalancing.",
            &[],
            self.0.replayed_tuples.load(Ordering::Relaxed),
        );
    }
}

/// Pooled retrying clients keyed by (member name, database name).
type ClientPool = HashMap<(String, String), Arc<Mutex<RetryClient>>>;

/// A client-side cluster router (see the module docs).
pub struct Router {
    members: Mutex<BTreeMap<String, SocketAddr>>,
    ring: Mutex<HashRing>,
    databases: Mutex<BTreeMap<String, Arc<DbState>>>,
    /// One retrying client per (member, database), created lazily and
    /// shared; ops on the same pair serialize on the inner mutex.
    pool: Mutex<ClientPool>,
    /// The shared topology epoch, bumped before every membership change;
    /// pool clients cap stale retry-after hints against it.
    epoch: Arc<AtomicU64>,
    config: ClusterConfig,
    obs: Arc<Obs>,
    stats: Arc<RouterStats>,
    /// The most recently minted proxied-request trace id (tests stitch
    /// router spans to server spans through this).
    last_trace: AtomicU64,
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Router")
            .field("members", &self.member_names())
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .finish()
    }
}

impl Router {
    /// A router over the given members (name → RPC address). Databases
    /// are registered separately via [`Router::register`].
    pub fn new(
        members: impl IntoIterator<Item = (String, SocketAddr)>,
        config: ClusterConfig,
    ) -> Router {
        let members: BTreeMap<String, SocketAddr> = members.into_iter().collect();
        let mut ring = HashRing::new(config.virtual_nodes);
        for name in members.keys() {
            ring.add_member(name);
        }
        let obs = Obs::enabled_default();
        let stats = Arc::new(RouterStats::default());
        obs.registry()
            .register_collector(Box::new(RouterCollector(Arc::clone(&stats))));
        Router {
            members: Mutex::new(members),
            ring: Mutex::new(ring),
            databases: Mutex::new(BTreeMap::new()),
            pool: Mutex::new(HashMap::new()),
            epoch: Arc::new(AtomicU64::new(0)),
            config,
            obs,
            stats,
            last_trace: AtomicU64::new(0),
        }
    }

    /// The router's observability handle (request counters per member,
    /// health gauges, rebalance counters — plus whatever the pooled
    /// clients record is on *their* handles, not this one).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The router's metric exposition in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.obs.registry().expose()
    }

    /// Binds a member-style wire scrape endpoint for the router's *own*
    /// metrics and traces: it speaks the member RPC framing (`Hello` →
    /// `HelloOk`, then `Metrics` / `TraceDump`), so the same stock
    /// client that scrapes members scrapes the router — no second
    /// protocol for fleet-wide collection. The database named in the
    /// `Hello` is ignored (the router serves itself, not a database) and
    /// job frames come back as typed `Protocol` errors. The endpoint
    /// stops accepting when the returned handle drops.
    pub fn bind_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let obs = Arc::clone(&self.obs);
        let acceptor = std::thread::Builder::new()
            .name("castor-router-scrape".to_string())
            .spawn({
                let shutdown = Arc::clone(&shutdown);
                move || scrape_accept_loop(listener, obs, shutdown)
            })?;
        Ok(MetricsEndpoint {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The shared topology epoch (see [`RetryClient::with_topology_epoch`]).
    pub fn epoch(&self) -> &Arc<AtomicU64> {
        &self.epoch
    }

    /// Current member names, sorted.
    pub fn member_names(&self) -> Vec<String> {
        self.members
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The member currently owning `database`, if it is registered.
    pub fn owner_of(&self, database: &str) -> Option<String> {
        let state = self.db_state(database)?;
        let inner = state.gate.read().unwrap_or_else(|e| e.into_inner());
        Some(inner.owner.clone())
    }

    /// The trace id minted for the most recent proxied request.
    pub fn last_trace(&self) -> u64 {
        self.last_trace.load(Ordering::SeqCst)
    }

    /// A copy-on-write snapshot of the router's mirror of `database` —
    /// the content every acknowledged mutation has been applied to.
    pub fn mirror(&self, database: &str) -> Result<DatabaseInstance, ClusterError> {
        let state = self
            .db_state(database)
            .ok_or_else(|| ClusterError::UnknownDatabase(database.to_string()))?;
        let inner = state.gate.read().unwrap_or_else(|e| e.into_inner());
        Ok(inner.mirror.clone())
    }

    /// Registers `database` with the router: picks its owner off the
    /// ring and replays the given initial content to that member. Every
    /// member must already serve the database (schema-registered, empty)
    /// — content placement is the router's job, schemas are the
    /// deployment's.
    pub fn register(&self, database: &str, initial: &DatabaseInstance) -> Result<(), ClusterError> {
        let owner = {
            let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.owner_of(database)
                .ok_or(ClusterError::NoMembers)?
                .to_string()
        };
        let replayed = self.replay_inserts(&owner, database, initial)?;
        self.stats
            .replayed_tuples
            .fetch_add(replayed, Ordering::Relaxed);
        let state = Arc::new(DbState {
            gate: RwLock::new(DbInner {
                owner,
                mirror: initial.clone(),
            }),
        });
        self.databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(database.to_string(), state);
        Ok(())
    }

    /// A session-shaped handle on one registered database.
    pub fn session(&self, database: &str) -> Result<ClusterSession<'_>, ClusterError> {
        if self.db_state(database).is_none() {
            return Err(ClusterError::UnknownDatabase(database.to_string()));
        }
        Ok(ClusterSession {
            router: self,
            database: database.to_string(),
        })
    }

    /// Adds a member and rebalances: every database whose ring owner
    /// changes is drained, replayed to the new owner, and flipped.
    pub fn add_member(
        &self,
        name: &str,
        addr: SocketAddr,
    ) -> Result<RebalanceReport, ClusterError> {
        {
            let mut members = self.members.lock().unwrap_or_else(|e| e.into_inner());
            if members.contains_key(name) {
                return Err(ClusterError::UnknownMember(format!(
                    "{name} already exists"
                )));
            }
            members.insert(name.to_string(), addr);
        }
        // The epoch bumps before any routing changes: a retry sleeping on
        // an old owner's backoff hint must treat it as stale from here on.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .add_member(name);
        self.rebalance(None)
    }

    /// Removes a member and rebalances its databases onto the survivors.
    /// The member may already be unreachable — nothing is read from it;
    /// its shards are rebuilt from the router's mirrors.
    pub fn remove_member(&self, name: &str) -> Result<RebalanceReport, ClusterError> {
        {
            let mut members = self.members.lock().unwrap_or_else(|e| e.into_inner());
            if members.remove(name).is_none() {
                return Err(ClusterError::UnknownMember(name.to_string()));
            }
            if members.is_empty() {
                return Err(ClusterError::NoMembers);
            }
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove_member(name);
        // Connections to the departed member are useless; drop them so
        // the pool cannot hand them out again.
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(member, _), _| member != name);
        self.stats.forget(name);
        self.rebalance(Some(name))
    }

    /// Moves every database whose ring owner differs from its current
    /// owner. `departed` names a member that no longer exists (skip the
    /// best-effort cleanup of its old copy).
    fn rebalance(&self, departed: Option<&str>) -> Result<RebalanceReport, ClusterError> {
        let mut report = RebalanceReport::default();
        let databases: Vec<(String, Arc<DbState>)> = {
            let databases = self.databases.lock().unwrap_or_else(|e| e.into_inner());
            databases
                .iter()
                .map(|(name, state)| (name.clone(), Arc::clone(state)))
                .collect()
        };
        for (database, state) in databases {
            let new_owner = {
                let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
                ring.owner_of(&database)
                    .ok_or(ClusterError::NoMembers)?
                    .to_string()
            };
            // Drain: in-flight proxied jobs hold the gate shared; taking
            // it exclusively waits them out, so the owner flips only
            // between jobs. Time under contention is the drain cost.
            let drain_started = self.obs.now_ns();
            let mut inner = state.gate.write().unwrap_or_else(|e| e.into_inner());
            report.drain_ns += self.obs.now_ns().saturating_sub(drain_started);
            if inner.owner == new_owner {
                continue;
            }
            let old_owner = std::mem::replace(&mut inner.owner, new_owner.clone());
            let replayed = self.replay_inserts(&new_owner, &database, &inner.mirror)?;
            report.moves += 1;
            report.replayed_tuples += replayed;
            self.stats.rebalance_moves.fetch_add(1, Ordering::Relaxed);
            self.stats
                .replayed_tuples
                .fetch_add(replayed, Ordering::Relaxed);
            // Best-effort cleanup of the old copy, unless the old owner
            // is the member that just left (nothing to clean).
            if departed != Some(old_owner.as_str()) {
                let _ = self.remove_all(&old_owner, &database, &inner.mirror);
            }
        }
        Ok(report)
    }

    /// Replays `content` to a member as chunked insert batches —
    /// relations in name order, tuples in insertion order, both
    /// deterministic and order-preserving so learning over the copy
    /// matches learning over the original.
    fn replay_inserts(
        &self,
        member: &str,
        database: &str,
        content: &DatabaseInstance,
    ) -> Result<u64, ClusterError> {
        let mut replayed = 0u64;
        let mut batch = MutationBatch::new();
        let mut in_batch = 0usize;
        let client = self.client_for(member, database)?;
        let mut client = client.lock().unwrap_or_else(|e| e.into_inner());
        for relation in content.relations() {
            for tuple in relation.tuples() {
                batch = batch.insert(relation.name(), tuple.clone());
                in_batch += 1;
                if in_batch >= self.config.replay_chunk {
                    client.apply(std::mem::take(&mut batch))?;
                    replayed += in_batch as u64;
                    in_batch = 0;
                }
            }
        }
        if in_batch > 0 {
            client.apply(batch)?;
            replayed += in_batch as u64;
        }
        Ok(replayed)
    }

    /// Best-effort removal of `content` from a member's copy (old owner
    /// cleanup after a move). Errors are swallowed: the copy is already
    /// unroutable, stale bytes there cost memory, not correctness.
    fn remove_all(
        &self,
        member: &str,
        database: &str,
        content: &DatabaseInstance,
    ) -> Result<(), ClusterError> {
        let client = self.client_for(member, database)?;
        let mut client = client.lock().unwrap_or_else(|e| e.into_inner());
        let mut batch = MutationBatch::new();
        let mut in_batch = 0usize;
        for relation in content.relations() {
            for tuple in relation.tuples() {
                batch = batch.remove(relation.name(), tuple.clone());
                in_batch += 1;
                if in_batch >= self.config.replay_chunk {
                    client.apply(std::mem::take(&mut batch))?;
                    in_batch = 0;
                }
            }
        }
        if in_batch > 0 {
            client.apply(batch)?;
        }
        Ok(())
    }

    fn db_state(&self, database: &str) -> Option<Arc<DbState>> {
        self.databases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(database)
            .map(Arc::clone)
    }

    /// The pooled retrying client for a (member, database) pair, created
    /// on first use with the shared topology epoch attached.
    fn client_for(
        &self,
        member: &str,
        database: &str,
    ) -> Result<Arc<Mutex<RetryClient>>, ClusterError> {
        let addr = {
            let members = self.members.lock().unwrap_or_else(|e| e.into_inner());
            *members
                .get(member)
                .ok_or_else(|| ClusterError::UnknownMember(member.to_string()))?
        };
        let key = (member.to_string(), database.to_string());
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(client) = pool.get(&key) {
            return Ok(Arc::clone(client));
        }
        let client = RetryClient::with_config(
            addr,
            database,
            self.config.client.clone(),
            self.config.policy.clone(),
        )
        .map_err(ClusterError::Rpc)?
        .with_topology_epoch(Arc::clone(&self.epoch));
        let client = Arc::new(Mutex::new(client));
        pool.insert(key, Arc::clone(&client));
        Ok(client)
    }

    /// Runs `op` against the database's current owner under the shared
    /// gate (draining rebalances wait for it), minting a trace id the
    /// pooled client stamps on every frame of the op so the request's
    /// spans stitch router → member.
    fn with_owner<T>(
        &self,
        database: &str,
        op: impl FnOnce(&mut RetryClient) -> Result<T, RpcError>,
    ) -> Result<T, ClusterError> {
        let state = self
            .db_state(database)
            .ok_or_else(|| ClusterError::UnknownDatabase(database.to_string()))?;
        let inner = state.gate.read().unwrap_or_else(|e| e.into_inner());
        let owner = inner.owner.clone();
        let client = self.client_for(&owner, database)?;
        let mut client = client.lock().unwrap_or_else(|e| e.into_inner());
        let trace = self.obs.mint_trace();
        self.last_trace.store(trace, Ordering::SeqCst);
        client.use_trace_id(trace);
        let result = op(&mut client);
        self.stats.record(&owner, result.is_ok());
        result.map_err(ClusterError::Rpc)
    }

    /// Like [`Router::with_owner`], but takes the gate *exclusively*
    /// (mutations serialize against each other and against rebalances)
    /// and applies acknowledged batches to the mirror.
    fn apply_gated(
        &self,
        database: &str,
        batch: MutationBatch,
    ) -> Result<MutationSummary, ClusterError> {
        let state = self
            .db_state(database)
            .ok_or_else(|| ClusterError::UnknownDatabase(database.to_string()))?;
        let mut inner = state.gate.write().unwrap_or_else(|e| e.into_inner());
        let owner = inner.owner.clone();
        let client = self.client_for(&owner, database)?;
        let mut client = client.lock().unwrap_or_else(|e| e.into_inner());
        let trace = self.obs.mint_trace();
        self.last_trace.store(trace, Ordering::SeqCst);
        client.use_trace_id(trace);
        let result = client.apply(batch.clone());
        self.stats.record(&owner, result.is_ok());
        let summary = result.map_err(ClusterError::Rpc)?;
        // Only *acknowledged* mutations reach the mirror: an Ambiguous or
        // failed apply leaves it untouched, so a later rebalance replays
        // exactly what the caller was told happened. The mirror apply
        // cannot fail where the member's did not — same schema, same
        // state, same batch.
        inner
            .mirror
            .apply_batch(&batch)
            .expect("mirror diverged from acknowledged member state");
        Ok(summary)
    }
}

/// A [`castor_service::Session`]-shaped handle on one database of the
/// cluster, proxying every call to the shard's current owner. Shapes
/// mirror [`RetryClient`]'s, so swapping in-process / single-server /
/// cluster transports is a constructor change.
pub struct ClusterSession<'a> {
    router: &'a Router,
    database: String,
}

impl ClusterSession<'_> {
    /// The database this session is bound to.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// The member currently owning this session's database.
    pub fn owner(&self) -> Option<String> {
        self.router.owner_of(&self.database)
    }

    /// Covered subsets per clause (see [`RetryClient::covered_sets`]).
    pub fn covered_sets(
        &self,
        clauses: Vec<Clause>,
        examples: Vec<Tuple>,
    ) -> Result<Vec<HashSet<Tuple>>, ClusterError> {
        self.router
            .with_owner(&self.database, |c| c.covered_sets(clauses, examples))
    }

    /// Fused positive/negative scoring (see [`RetryClient::score`]).
    pub fn score(
        &self,
        clauses: Vec<Clause>,
        positive: Vec<Tuple>,
        negative: Vec<Tuple>,
    ) -> Result<Vec<ClauseCounts>, ClusterError> {
        self.router
            .with_owner(&self.database, |c| c.score(clauses, positive, negative))
    }

    /// Runs a learner on the owning member (see [`RetryClient::learn`]).
    pub fn learn(
        &self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<Definition, ClusterError> {
        self.router
            .with_owner(&self.database, |c| c.learn(task, algorithm))
    }

    /// [`ClusterSession::learn`] returning the covering-round progress
    /// the member streamed over protocol v2 (empty over v1).
    pub fn learn_with_progress(
        &self,
        task: LearningTask,
        algorithm: LearnAlgorithm,
    ) -> Result<(Definition, Vec<LearnProgress>), ClusterError> {
        self.router
            .with_owner(&self.database, |c| c.learn_with_progress(task, algorithm))
    }

    /// Applies a mutation batch to the owner and, once acknowledged, to
    /// the router's mirror (the rebalance replay source).
    pub fn apply(&self, batch: MutationBatch) -> Result<MutationSummary, ClusterError> {
        self.router.apply_gated(&self.database, batch)
    }

    /// The owning member's session counter deltas (restart from zero
    /// after a reconnect or rebalance — they are per wire session).
    pub fn report(&self) -> Result<EngineReport, ClusterError> {
        self.router.with_owner(&self.database, |c| c.report())
    }

    /// The owning member's engine totals plus serving-layer counters.
    pub fn server_report(&self) -> Result<(EngineReport, ServerReport), ClusterError> {
        self.router
            .with_owner(&self.database, |c| c.server_report())
    }

    /// The owning member's metric exposition (the *router's* own metrics
    /// are at [`Router::metrics_text`]).
    pub fn metrics(&self) -> Result<String, ClusterError> {
        self.router.with_owner(&self.database, |c| c.metrics())
    }
}

/// Handle for a [`Router::bind_metrics`] scrape endpoint. Dropping it
/// stops the acceptor; connections already being served finish their
/// in-flight response and close on the next read.
pub struct MetricsEndpoint {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl MetricsEndpoint {
    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn scrape_accept_loop(listener: TcpListener, obs: Arc<Obs>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let obs = Arc::clone(&obs);
        // Thread-per-connection is the right cost model here: scrapes
        // are rare, short, and sequential — one collector polling on an
        // interval — unlike the member data path.
        let _ = std::thread::Builder::new()
            .name("castor-router-scrape-conn".to_string())
            .spawn(move || serve_scrape(stream, obs));
    }
}

/// One scrape connection: member framing, read-only request set.
fn serve_scrape(mut stream: TcpStream, obs: Arc<Obs>) {
    let _ = stream.set_nodelay(true);
    let mut version = PROTOCOL_V1;
    let mut greeted = false;
    loop {
        let (request_id, frame_version, request) =
            match read_request_versioned(&mut stream, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION) {
                Ok(parts) => parts,
                Err((request_id, error)) => {
                    let code = match &error {
                        FrameError::Io(_) | FrameError::Closed => return,
                        FrameError::TooLarge { .. } => ErrorCode::FrameTooLarge,
                        FrameError::Malformed(_) => ErrorCode::Malformed,
                        FrameError::Version { .. } => ErrorCode::UnsupportedVersion,
                    };
                    let _ = write_response_v(
                        &mut stream,
                        version,
                        request_id.unwrap_or(0),
                        &Response::Error {
                            code,
                            limit: 0,
                            message: error.to_string(),
                            retry_after_ms: 0,
                        },
                    );
                    return;
                }
            };
        let response = match request {
            Request::Hello { .. } if !greeted => {
                // Any database name is admitted: the endpoint serves the
                // router itself, so there is nothing to look up — and
                // stock clients always open with a Hello.
                greeted = true;
                version = frame_version;
                Response::HelloOk
            }
            Request::Metrics if greeted => Response::Metrics(obs.registry().expose()),
            Request::TraceDump if greeted => Response::TraceDump(obs.trace_json()),
            _ => {
                let message = if greeted {
                    "scrape endpoint serves only Metrics and TraceDump".to_string()
                } else {
                    "first frame must be Hello".to_string()
                };
                let _ = write_response_v(
                    &mut stream,
                    version,
                    request_id,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        limit: 0,
                        message,
                        retry_after_ms: 0,
                    },
                );
                return;
            }
        };
        if write_response_v(&mut stream, version, request_id, &response).is_err() {
            return;
        }
    }
}
