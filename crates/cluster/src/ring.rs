//! Consistent hashing: deterministic placement of database shards on
//! cluster members.
//!
//! Each member contributes `virtual_nodes` points on a 64-bit ring
//! (FNV-1a of `"{member}#{i}"`); a database lands on the member owning
//! the first point clockwise from the hash of its name. Placement is a
//! pure function of the member set and the database name — every router
//! instance over the same membership computes the same owners, with no
//! coordination. Virtual nodes smooth the load split and, crucially,
//! bound rebalancing: adding or removing one member moves only the
//! databases whose arcs that member's points cover, not the whole
//! keyspace.

use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the bytes of `key`, dispersed through a murmur3-style
/// finalizer — small, dependency-free, and stable across builds
/// (placement must never change under a rustc upgrade). Raw FNV-1a of
/// short near-identical keys ("db-0", "db-1", …) clusters on the ring;
/// the avalanche mix spreads them across the full 64-bit range.
fn fnv1a(key: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring of member names.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points → owning member, ordered by point (BTreeMap gives the
    /// clockwise-successor lookup for free).
    points: BTreeMap<u64, String>,
    virtual_nodes: usize,
}

impl HashRing {
    /// An empty ring where each member will contribute `virtual_nodes`
    /// points (clamped to at least 1).
    pub fn new(virtual_nodes: usize) -> HashRing {
        HashRing {
            points: BTreeMap::new(),
            virtual_nodes: virtual_nodes.max(1),
        }
    }

    /// Adds a member's points. Point collisions across members are
    /// resolved by first-insertion-wins; with a 64-bit ring they are
    /// vanishingly rare, and deterministic either way.
    pub fn add_member(&mut self, member: &str) {
        for i in 0..self.virtual_nodes {
            let point = fnv1a(&format!("{member}#{i}"));
            self.points
                .entry(point)
                .or_insert_with(|| member.to_string());
        }
    }

    /// Removes a member's points.
    pub fn remove_member(&mut self, member: &str) {
        self.points.retain(|_, owner| owner != member);
    }

    /// Whether the member currently contributes points.
    pub fn contains_member(&self, member: &str) -> bool {
        self.points.values().any(|owner| owner == member)
    }

    /// The members currently on the ring, deduplicated, in point order of
    /// their first point.
    pub fn members(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for owner in self.points.values() {
            if !seen.iter().any(|s: &String| s == owner) {
                seen.push(owner.clone());
            }
        }
        seen
    }

    /// The member owning `key`: the first ring point clockwise from the
    /// key's hash (wrapping past zero). `None` on an empty ring.
    pub fn owner_of(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a(key);
        self.points
            .range(hash..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, owner)| owner.as_str())
    }

    /// Number of ring points (members × virtual nodes, minus collisions).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(members: &[&str]) -> HashRing {
        let mut ring = HashRing::new(64);
        for m in members {
            ring.add_member(m);
        }
        ring
    }

    #[test]
    fn placement_is_deterministic_across_instances() {
        let a = ring_of(&["alpha", "beta", "gamma"]);
        let b = ring_of(&["gamma", "alpha", "beta"]); // insertion order irrelevant
        for key in ["uwcse", "hiv", "imdb", "demo", "x"] {
            assert_eq!(a.owner_of(key), b.owner_of(key), "key {key}");
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_own_keys() {
        let before = ring_of(&["alpha", "beta", "gamma"]);
        let mut after = before.clone();
        after.remove_member("beta");
        for i in 0..200 {
            let key = format!("db-{i}");
            let was = before.owner_of(&key).unwrap().to_string();
            let now = after.owner_of(&key).unwrap().to_string();
            if was != "beta" {
                assert_eq!(was, now, "key {key} moved although its owner stayed");
            } else {
                assert_ne!(now, "beta");
            }
        }
    }

    #[test]
    fn virtual_nodes_spread_keys_over_all_members() {
        let ring = ring_of(&["alpha", "beta", "gamma"]);
        let mut counts = std::collections::HashMap::new();
        for i in 0..300 {
            let owner = ring.owner_of(&format!("db-{i}")).unwrap().to_string();
            *counts.entry(owner).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3, "some member owns nothing: {counts:?}");
        for (member, count) in &counts {
            assert!(*count > 20, "member {member} owns only {count}/300 keys");
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        assert_eq!(HashRing::new(8).owner_of("x"), None);
    }
}
