//! Multi-step schema transformations τ : R → S.
//!
//! A (de)composition of a schema with several relations is a finite set of
//! per-relation (de)composition steps (Section 4). [`Transformation`] keeps
//! the ordered list of steps and can map schemas and instances forwards and
//! backwards; because every step is bijective, the whole transformation is
//! bijective and therefore (by Proposition 3.7) definition bijective.

use crate::step::TransformStep;
use castor_relational::{DatabaseInstance, Schema};
use std::fmt;

/// A named sequence of (de)composition steps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transformation {
    name: String,
    steps: Vec<TransformStep>,
}

impl Transformation {
    /// Creates an empty (identity) transformation.
    pub fn identity(name: impl Into<String>) -> Self {
        Transformation {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Creates a transformation from steps.
    pub fn new(name: impl Into<String>, steps: Vec<TransformStep>) -> Self {
        Transformation {
            name: name.into(),
            steps,
        }
    }

    /// The transformation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The steps, in application order.
    pub fn steps(&self) -> &[TransformStep] {
        &self.steps
    }

    /// Whether the transformation has no steps.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    pub fn push(&mut self, step: TransformStep) -> &mut Self {
        self.steps.push(step);
        self
    }

    /// The inverse transformation τ⁻¹ (steps inverted and reversed).
    pub fn invert(&self) -> Transformation {
        Transformation {
            name: format!("{}⁻¹", self.name),
            steps: self.steps.iter().rev().map(TransformStep::invert).collect(),
        }
    }

    /// Applies the transformation to a schema.
    pub fn apply_schema(&self, schema: &Schema) -> Schema {
        let mut current = schema.clone();
        for step in &self.steps {
            current = step.apply_schema(&current);
        }
        current
    }

    /// Applies the transformation to a database instance, returning the
    /// transformed instance (over the transformed schema).
    pub fn apply_instance(
        &self,
        db: &DatabaseInstance,
    ) -> castor_relational::Result<DatabaseInstance> {
        let mut current_schema = db.schema().clone();
        let mut current = db.clone();
        for step in &self.steps {
            let next_schema = step.apply_schema(&current_schema);
            current = step.apply_instance(&current, &next_schema)?;
            current_schema = next_schema;
        }
        Ok(current)
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "transformation {} {{", self.name)?;
        for s in &self.steps {
            writeln!(f, "  {s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::{FunctionalDependency, RelationSymbol, Tuple};

    /// The 4NF UW-CSE schema fragment of Table 1 (student and professor
    /// composed, publication untouched).
    fn schema_4nf() -> Schema {
        let mut s = Schema::new("uwcse-4nf");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_relation(RelationSymbol::new("professor", &["prof", "position"]));
        s.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s.add_fd(FunctionalDependency::new(
            "student",
            &["stud"],
            &["phase", "years"],
        ));
        s.add_fd(FunctionalDependency::new(
            "professor",
            &["prof"],
            &["position"],
        ));
        s
    }

    /// The transformation from the 4NF schema to the Original schema
    /// (Example 3.6 in reverse: decompose student and professor).
    fn to_original(schema: &Schema) -> Transformation {
        Transformation::new(
            "4nf-to-original",
            vec![
                TransformStep::decompose(
                    schema,
                    "student",
                    &[
                        ("student", &["stud"]),
                        ("inPhase", &["stud", "phase"]),
                        ("yearsInProgram", &["stud", "years"]),
                    ],
                ),
                TransformStep::decompose(
                    schema,
                    "professor",
                    &[
                        ("professor", &["prof"]),
                        ("hasPosition", &["prof", "position"]),
                    ],
                ),
            ],
        )
    }

    fn instance_4nf() -> DatabaseInstance {
        let mut db = DatabaseInstance::empty(&schema_4nf());
        db.insert("student", Tuple::from_strs(&["alice", "prelim", "3"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bob", "post_generals", "5"]))
            .unwrap();
        db.insert("professor", Tuple::from_strs(&["carol", "faculty"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "alice"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "carol"]))
            .unwrap();
        db
    }

    #[test]
    fn multi_step_schema_mapping() {
        let s = schema_4nf();
        let tau = to_original(&s);
        let original = tau.apply_schema(&s);
        assert_eq!(original.relation_count(), 6);
        assert!(original.contains_relation("hasPosition"));
        assert_eq!(original.relation("student").unwrap().arity(), 1);
        // Equality INDs: 3 among student parts + 1 among professor parts.
        assert_eq!(original.equality_inds().len(), 4);
    }

    #[test]
    fn instance_round_trip_is_identity() {
        let s = schema_4nf();
        let tau = to_original(&s);
        let db = instance_4nf();
        let transformed = tau.apply_instance(&db).unwrap();
        assert_eq!(transformed.relation("inPhase").unwrap().len(), 2);
        let back = tau.invert().apply_instance(&transformed).unwrap();
        assert_eq!(back.relation("student").unwrap().len(), 2);
        assert!(back.contains("student", &Tuple::from_strs(&["alice", "prelim", "3"])));
        assert!(back.contains("professor", &Tuple::from_strs(&["carol", "faculty"])));
        assert_eq!(back.total_tuples(), db.total_tuples());
    }

    #[test]
    fn identity_transformation_copies_instance() {
        let db = instance_4nf();
        let tau = Transformation::identity("id");
        assert!(tau.is_identity());
        let out = tau.apply_instance(&db).unwrap();
        assert_eq!(out.total_tuples(), db.total_tuples());
    }

    #[test]
    fn invert_reverses_step_order() {
        let s = schema_4nf();
        let tau = to_original(&s);
        let inv = tau.invert();
        assert_eq!(inv.steps().len(), 2);
        // First inverse step must recompose professor (the last forward step).
        assert!(inv.steps()[0].to_string().contains("professor"));
    }

    #[test]
    fn display_lists_steps() {
        let s = schema_4nf();
        let tau = to_original(&s);
        let text = tau.to_string();
        assert!(text.contains("decompose student"));
        assert!(text.contains("decompose professor"));
    }
}
