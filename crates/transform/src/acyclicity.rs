//! Acyclicity of joins and inclusion-dependency sets.
//!
//! The paper restricts decompositions to those whose reconstructing natural
//! join is *acyclic* (Section 4): acyclic joins cover most real-world
//! normal forms, and by Proposition 7.4 acyclicity guarantees that the INDs
//! with equality induced by the decomposition are not cyclic, which is what
//! lets Castor find joining tuples by following INDs pairwise.

use castor_relational::{AttrName, InclusionDependency, Sort};
use std::collections::BTreeSet;

/// Whether the hypergraph formed by the given sorts (one hyperedge per
/// relation, vertices are attribute names) is α-acyclic, decided with the
/// GYO (Graham–Yu–Özsoyoğlu) reduction:
/// repeatedly remove *ears* — edges whose non-isolated vertices are all
/// contained in some other edge — until no edge remains (acyclic) or no ear
/// can be removed (cyclic).
pub fn join_is_acyclic(sorts: &[Sort]) -> bool {
    let mut edges: Vec<BTreeSet<AttrName>> =
        sorts.iter().map(|s| s.iter().cloned().collect()).collect();

    loop {
        if edges.len() <= 1 {
            return true;
        }
        let mut removed = false;

        // Remove vertices that appear in only one edge (they cannot create
        // cycles), then remove edges contained in another edge.
        let mut counts: std::collections::BTreeMap<AttrName, usize> = Default::default();
        for e in &edges {
            for v in e {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| counts[v] > 1);
            if e.len() != before {
                removed = true;
            }
        }
        // Drop empty edges and edges contained in some other edge.
        let snapshot = edges.clone();
        let mut next: Vec<BTreeSet<AttrName>> = Vec::new();
        for (i, e) in snapshot.iter().enumerate() {
            if e.is_empty() {
                removed = true;
                continue;
            }
            let contained = snapshot
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && e.is_subset(other) && (e != other || j < i));
            if contained {
                removed = true;
            } else {
                next.push(e.clone());
            }
        }
        edges = next;

        if edges.is_empty() {
            return true;
        }
        if !removed {
            return false;
        }
    }
}

/// Whether a set of INDs with equality is cyclic per Definition 7.3: there
/// is a cycle of relations connected by INDs in which some step changes the
/// attribute set it joins on. Cycles where every step uses the same
/// attribute list are harmless (Castor can still follow them), matching the
/// definition's requirement that some `Y_i ≠ X_{i+1}`.
pub fn inds_are_cyclic(inds: &[InclusionDependency]) -> bool {
    // Build a graph whose nodes are relations and whose edges carry the
    // attribute lists used on each endpoint. Then look for a cycle in which
    // consecutive edges meet at a relation through *different* attribute
    // lists.
    #[derive(Clone)]
    struct Edge {
        to: String,
        attrs_at_from: Vec<AttrName>,
        attrs_at_to: Vec<AttrName>,
    }
    let mut graph: std::collections::BTreeMap<String, Vec<Edge>> = Default::default();
    for ind in inds {
        graph
            .entry(ind.lhs_relation.clone())
            .or_default()
            .push(Edge {
                to: ind.rhs_relation.clone(),
                attrs_at_from: ind.lhs_attrs.clone(),
                attrs_at_to: ind.rhs_attrs.clone(),
            });
        graph
            .entry(ind.rhs_relation.clone())
            .or_default()
            .push(Edge {
                to: ind.lhs_relation.clone(),
                attrs_at_from: ind.rhs_attrs.clone(),
                attrs_at_to: ind.lhs_attrs.clone(),
            });
    }

    // DFS from every node tracking the attribute list we arrived through; a
    // cyclic IND set shows up as returning to a visited node through a
    // different attribute list (attribute-switching walk).
    fn dfs(
        graph: &std::collections::BTreeMap<String, Vec<Edge>>,
        node: &str,
        arrived_attrs: &[AttrName],
        start: &str,
        visited: &mut Vec<String>,
        depth: usize,
    ) -> bool {
        if depth > graph.len() + 1 {
            return false;
        }
        for edge in graph.get(node).into_iter().flatten() {
            // A walk "switches attributes" at `node` when the attributes it
            // arrived on differ from the attributes it leaves on.
            let switches =
                !arrived_attrs.is_empty() && arrived_attrs != edge.attrs_at_from.as_slice();
            if edge.to == start && switches {
                return true;
            }
            if !visited.contains(&edge.to) {
                visited.push(edge.to.clone());
                if dfs(
                    graph,
                    &edge.to,
                    &edge.attrs_at_to,
                    start,
                    visited,
                    depth + 1,
                ) {
                    return true;
                }
                visited.pop();
            }
        }
        false
    }

    for start in graph.keys() {
        let mut visited = vec![start.clone()];
        if dfs(&graph.clone(), start, &[], start, &mut visited, 0) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort(attrs: &[&str]) -> Sort {
        Sort::new(attrs.iter().copied())
    }

    #[test]
    fn chain_join_is_acyclic() {
        // S1(A,B) ⋈ S2(A,C): acyclic (the paper's example).
        assert!(join_is_acyclic(&[sort(&["A", "B"]), sort(&["A", "C"])]));
    }

    #[test]
    fn star_decomposition_is_acyclic() {
        // student(stud), inPhase(stud,phase), yearsInProgram(stud,years).
        assert!(join_is_acyclic(&[
            sort(&["stud"]),
            sort(&["stud", "phase"]),
            sort(&["stud", "years"]),
        ]));
    }

    #[test]
    fn triangle_join_is_cyclic() {
        // S3(A,B) ⋈ S4(B,C) ⋈ S5(C,A): the paper's cyclic example
        // (written there as S3(A,B), S4(B,C), S5(B,A); any 3-cycle works).
        assert!(!join_is_acyclic(&[
            sort(&["A", "B"]),
            sort(&["B", "C"]),
            sort(&["C", "A"]),
        ]));
    }

    #[test]
    fn single_relation_join_is_trivially_acyclic() {
        assert!(join_is_acyclic(&[sort(&["A", "B", "C"])]));
        assert!(join_is_acyclic(&[]));
    }

    #[test]
    fn acyclic_ind_set_from_star_decomposition() {
        let inds = vec![
            InclusionDependency::equality("student", &["stud"], "inPhase", &["stud"]),
            InclusionDependency::equality("student", &["stud"], "yearsInProgram", &["stud"]),
        ];
        assert!(!inds_are_cyclic(&inds));
    }

    #[test]
    fn cyclic_ind_set_detected() {
        // The example below Definition 7.3: S1[B]=S2[B], S2[C]=S3[A],
        // S3[A]=S1[A] — walking the cycle switches attributes at S3 (arrives
        // on A from S2, leaves to S1 on A — but at S1 it arrives on A and
        // the cycle closes on B), so the set is cyclic.
        let inds = vec![
            InclusionDependency::equality("S1", &["B"], "S2", &["B"]),
            InclusionDependency::equality("S2", &["C"], "S3", &["A"]),
            InclusionDependency::equality("S3", &["A"], "S1", &["A"]),
        ];
        assert!(inds_are_cyclic(&inds));
    }

    #[test]
    fn two_relation_cycle_on_same_attrs_is_not_cyclic() {
        // R[X]=S[X] alone never counts as cyclic: all steps use X.
        let inds = vec![InclusionDependency::equality("R", &["X"], "S", &["X"])];
        assert!(!inds_are_cyclic(&inds));
    }
}
