//! # castor-transform
//!
//! Schema transformations for the Castor reproduction of *Schema Independent
//! Relational Learning* (Picado et al., 2017).
//!
//! Section 4 of the paper studies two Horn transformations between
//! information-equivalent schemas:
//!
//! * **decomposition** — a relation `R` is replaced by projections
//!   `S1, ..., Sn` whose natural join losslessly reconstructs `R`, with INDs
//!   with equality between the shared attributes of the `Si`;
//! * **composition** — the inverse: a set of relations joined back into one.
//!
//! This crate provides:
//!
//! * [`Transformation`] — a sequence of per-relation (de)composition steps
//!   that can map schemas, database instances (τ), and be inverted (τ⁻¹);
//! * [`InclusionClass`] — maximal sets of relations connected by INDs with
//!   equality (Definition 7.1), used by Castor's bottom-clause construction
//!   and negative reduction;
//! * join-tree acyclicity and cyclic-IND checks (Proposition 7.4);
//! * the definition mapping δτ in both directions — literal splitting for
//!   decomposition steps and greedy literal merging (with fresh-variable
//!   padding) for composition steps;
//! * [`CanonicalSchema`] — a most-composed anchor giving every variant of a
//!   logical database a [`VariantLens`] into one shared clause space, the
//!   basis of cross-variant coverage-verdict reuse in `castor-engine`;
//! * an information-equivalence verifier that round-trips instances.

pub mod acyclicity;
pub mod canonical;
pub mod definition_map;
pub mod equivalence;
pub mod inclusion_class;
pub mod step;
pub mod transformation;

pub use acyclicity::{inds_are_cyclic, join_is_acyclic};
pub use canonical::{CanonicalSchema, VariantLens};
pub use definition_map::{
    map_clause_through_step, map_definition_through, map_definition_through_decomposition,
};
pub use equivalence::verify_information_equivalence;
pub use inclusion_class::{inclusion_classes, InclusionClass};
pub use step::TransformStep;
pub use transformation::Transformation;
