//! The canonical-schema anchor for cross-variant verdict reuse.
//!
//! All schema variants of one logical database are bijective-transformation
//! images of a shared base schema (Definition 3.4). Fixing one variant —
//! conventionally the *most composed* one — as the canonical anchor gives
//! every variant a lens: the definition mapping δτ from that variant's
//! schema into the canonical schema (variant τ inverted, then the canonical
//! τ, both from the base). Two clauses learned on different variants that
//! denote the same hypothesis map to α-equivalent canonical clauses, so a
//! coverage verdict proven on one variant can be served to every other by
//! keying the cache on the lens image (see `castor-engine`'s cache arena).

use crate::definition_map::map_clause_through_step;
use crate::step::TransformStep;
use crate::transformation::Transformation;
use castor_logic::{Clause, Definition};
use castor_relational::Schema;
use std::collections::BTreeSet;

/// The canonical (most-composed) schema of a logical database, anchored by
/// the transformation that produces it from the shared base schema.
#[derive(Debug, Clone)]
pub struct CanonicalSchema {
    schema: Schema,
    to_canonical: Transformation,
}

impl CanonicalSchema {
    /// Anchors the canonical schema: `to_canonical` maps the base schema of
    /// the logical database to the chosen canonical variant.
    pub fn anchor(base: &Schema, to_canonical: Transformation) -> Self {
        let schema = to_canonical.apply_schema(base);
        CanonicalSchema {
            schema,
            to_canonical,
        }
    }

    /// The canonical schema itself.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The transformation from the base schema to the canonical schema.
    pub fn to_canonical(&self) -> &Transformation {
        &self.to_canonical
    }

    /// The lens mapping clauses of the variant produced by `variant_tau`
    /// (a transformation from the same base schema) into the canonical
    /// schema: invert the variant's transformation back to the base, then
    /// apply the canonical one.
    pub fn lens_for(&self, variant_tau: &Transformation) -> VariantLens {
        let mut steps = variant_tau.invert().steps().to_vec();
        steps.extend(self.to_canonical.steps().iter().cloned());
        VariantLens { steps }
    }

    /// The lens for the canonical variant itself (the identity).
    pub fn identity_lens(&self) -> VariantLens {
        let mut steps = self.to_canonical.invert().steps().to_vec();
        steps.extend(self.to_canonical.steps().iter().cloned());
        VariantLens { steps }
    }
}

/// The definition mapping δτ from one variant's schema into the canonical
/// schema, as a reusable step sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VariantLens {
    steps: Vec<TransformStep>,
}

impl VariantLens {
    /// The trivial lens of a database that *is* its own logical anchor.
    pub fn identity() -> Self {
        VariantLens { steps: Vec::new() }
    }

    /// Whether the lens has no steps at all. A lens built from a non-empty
    /// round trip (τ⁻¹ then τ) is not step-free even though it acts as the
    /// identity on clauses.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty()
    }

    /// The underlying step sequence.
    pub fn steps(&self) -> &[TransformStep] {
        &self.steps
    }

    /// Maps one clause of the variant schema to the canonical schema.
    pub fn map_clause(&self, clause: &Clause) -> Clause {
        let mut current = clause.clone();
        for step in &self.steps {
            current = map_clause_through_step(&current, step);
        }
        current
    }

    /// Maps a whole definition of the variant schema to the canonical
    /// schema.
    pub fn map_definition(&self, def: &Definition) -> Definition {
        let clauses = def.clauses.iter().map(|c| self.map_clause(c)).collect();
        Definition::new(def.target.clone(), clauses)
    }

    /// Maps a set of variant-schema relation names to the canonical-schema
    /// relations they can influence. Conservative: walking the steps in
    /// order, whenever a step consumes any relation currently in the set,
    /// everything it produces joins the set. Used to translate
    /// relation-level cache invalidation across variants.
    pub fn map_relations(&self, relations: &BTreeSet<String>) -> BTreeSet<String> {
        let mut current: BTreeSet<String> = relations.clone();
        for step in &self.steps {
            if step.consumed().iter().any(|r| current.contains(*r)) {
                for p in step.produced() {
                    current.insert(p.name.clone());
                }
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::subsumption::theta_equivalent;
    use castor_logic::{Atom, Term};
    use castor_relational::RelationSymbol;

    /// Base: 4NF-style student(stud, phase, years) + publication.
    fn base_schema() -> Schema {
        let mut s = Schema::new("base");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s
    }

    /// Variant transformation: decompose student into three parts.
    fn to_decomposed(base: &Schema) -> Transformation {
        Transformation::new(
            "to-decomposed",
            vec![TransformStep::decompose(
                base,
                "student",
                &[
                    ("student", &["stud"]),
                    ("inPhase", &["stud", "phase"]),
                    ("yearsInProgram", &["stud", "years"]),
                ],
            )],
        )
    }

    #[test]
    fn anchor_applies_transformation_to_base() {
        let base = base_schema();
        let canonical = CanonicalSchema::anchor(&base, Transformation::identity("id"));
        assert!(canonical.schema().contains_relation("student"));
        assert_eq!(canonical.schema().relation("student").unwrap().arity(), 3);
    }

    #[test]
    fn variant_lens_maps_clause_to_canonical_form() {
        // Canonical = the base (composed) schema; the variant is the
        // decomposed one. The lens must merge part-literals back.
        let base = base_schema();
        let canonical = CanonicalSchema::anchor(&base, Transformation::identity("id"));
        let lens = canonical.lens_for(&to_decomposed(&base));

        let variant_clause = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![
                Atom::new("student", vec![Term::var("x")]),
                Atom::new("inPhase", vec![Term::var("x"), Term::constant("prelim")]),
                Atom::vars("yearsInProgram", &["x", "y"]),
            ],
        );
        let mapped = lens.map_clause(&variant_clause);
        let expected = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![Atom::new(
                "student",
                vec![Term::var("x"), Term::constant("prelim"), Term::var("y")],
            )],
        );
        assert_eq!(mapped, expected);
    }

    #[test]
    fn lenses_of_different_variants_agree_up_to_theta_equivalence() {
        // The same hypothesis expressed on the composed and decomposed
        // variants maps to θ-equivalent canonical clauses.
        let base = base_schema();
        let canonical = CanonicalSchema::anchor(&base, Transformation::identity("id"));
        let composed_lens = canonical.lens_for(&Transformation::identity("id"));
        let decomposed_lens = canonical.lens_for(&to_decomposed(&base));

        let on_composed = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![Atom::new(
                "student",
                vec![Term::var("x"), Term::constant("prelim"), Term::var("y")],
            )],
        );
        let on_decomposed = Clause::new(
            Atom::vars("hardWorking", &["x"]),
            vec![
                Atom::new("student", vec![Term::var("x")]),
                Atom::new("inPhase", vec![Term::var("x"), Term::constant("prelim")]),
                Atom::vars("yearsInProgram", &["x", "z"]),
            ],
        );
        let a = composed_lens.map_clause(&on_composed);
        let b = decomposed_lens.map_clause(&on_decomposed);
        assert!(theta_equivalent(&a, &b));
    }

    #[test]
    fn identity_lens_is_step_free_only_when_trivial() {
        let base = base_schema();
        let trivial = CanonicalSchema::anchor(&base, Transformation::identity("id"));
        assert!(trivial.identity_lens().is_identity());
        assert!(VariantLens::identity().is_identity());

        let composed = CanonicalSchema::anchor(&base, to_decomposed(&base));
        let own = composed.identity_lens();
        assert!(!own.is_identity());
        // But it acts as the identity on IND-saturated clauses of its own
        // schema (the form bottom-clause construction produces: every part
        // of a decomposition group present).
        let clause = Clause::new(
            Atom::vars("t", &["x"]),
            vec![
                Atom::vars("student", &["x"]),
                Atom::vars("inPhase", &["x", "ph"]),
                Atom::vars("yearsInProgram", &["x", "yr"]),
            ],
        );
        assert_eq!(own.map_clause(&clause), clause);
    }

    #[test]
    fn map_relations_follows_consumption_chain() {
        let base = base_schema();
        let canonical = CanonicalSchema::anchor(&base, Transformation::identity("id"));
        let lens = canonical.lens_for(&to_decomposed(&base));
        let dirty: BTreeSet<String> = ["inPhase".to_string()].into_iter().collect();
        let mapped = lens.map_relations(&dirty);
        assert!(mapped.contains("student"));
        assert!(mapped.contains("inPhase"));
        assert!(!mapped.contains("publication"));
    }
}
