//! Information-equivalence verification.
//!
//! Two schemas are information equivalent via τ when τ is bijective
//! (Section 3.2.1). For the (de)compositions used in this repository we can
//! verify bijectivity empirically on a given instance by round-tripping:
//! `τ⁻¹(τ(I)) = I`. The verifier below does exactly that, and additionally
//! checks that the transformed instance satisfies the transformed schema's
//! constraints (lossless join plus the induced INDs with equality).

use crate::transformation::Transformation;
use castor_relational::{DatabaseInstance, Result};

/// The outcome of verifying information equivalence on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Whether the transformed instance satisfies the transformed schema's
    /// constraints.
    pub transformed_valid: bool,
    /// Whether applying τ then τ⁻¹ reproduced the original instance exactly.
    pub round_trip_identity: bool,
    /// Tuples in the original instance.
    pub original_tuples: usize,
    /// Tuples in the transformed instance.
    pub transformed_tuples: usize,
}

impl EquivalenceReport {
    /// Whether both checks passed.
    pub fn is_equivalent(&self) -> bool {
        self.transformed_valid && self.round_trip_identity
    }
}

/// Verifies on a concrete instance that τ behaves like an
/// information-preserving bijection: τ(I) satisfies the target schema and
/// τ⁻¹(τ(I)) = I.
pub fn verify_information_equivalence(
    tau: &Transformation,
    db: &DatabaseInstance,
) -> Result<EquivalenceReport> {
    let transformed = tau.apply_instance(db)?;
    let transformed_valid = transformed.validate().is_ok();
    let back = tau.invert().apply_instance(&transformed)?;

    let round_trip_identity = instances_equal(db, &back);
    Ok(EquivalenceReport {
        transformed_valid,
        round_trip_identity,
        original_tuples: db.total_tuples(),
        transformed_tuples: transformed.total_tuples(),
    })
}

/// Whether two instances have the same relations with the same tuple sets.
pub fn instances_equal(a: &DatabaseInstance, b: &DatabaseInstance) -> bool {
    let names_a: Vec<&str> = a.relations().map(|r| r.name()).collect();
    let names_b: Vec<&str> = b.relations().map(|r| r.name()).collect();
    if names_a != names_b {
        return false;
    }
    for inst in a.relations() {
        let Some(other) = b.relation(inst.name()) else {
            return false;
        };
        if inst.len() != other.len() {
            return false;
        }
        if !inst.iter().all(|t| other.contains(t)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::TransformStep;
    use castor_relational::{FunctionalDependency, RelationSymbol, Schema, Tuple};

    fn schema() -> Schema {
        let mut s = Schema::new("s");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_fd(FunctionalDependency::new(
            "student",
            &["stud"],
            &["phase", "years"],
        ));
        s
    }

    fn tau(s: &Schema) -> Transformation {
        Transformation::new(
            "decompose",
            vec![TransformStep::decompose(
                s,
                "student",
                &[
                    ("student", &["stud"]),
                    ("inPhase", &["stud", "phase"]),
                    ("yearsInProgram", &["stud", "years"]),
                ],
            )],
        )
    }

    #[test]
    fn lossless_decomposition_is_equivalent() {
        let s = schema();
        let mut db = DatabaseInstance::empty(&s);
        db.insert("student", Tuple::from_strs(&["a", "pre", "1"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["b", "post", "2"]))
            .unwrap();
        let report = verify_information_equivalence(&tau(&s), &db).unwrap();
        assert!(report.is_equivalent());
        assert_eq!(report.original_tuples, 2);
        assert_eq!(report.transformed_tuples, 6);
    }

    #[test]
    fn lossy_composition_is_detected() {
        // Composing two relations where one has a dangling tuple loses it;
        // the round trip then fails.
        let mut s = Schema::new("s");
        s.add_relation(RelationSymbol::new("a", &["x", "y"]));
        s.add_relation(RelationSymbol::new("b", &["x", "z"]));
        let compose = Transformation::new(
            "compose",
            vec![TransformStep::compose(&s, &["a", "b"], "ab")],
        );
        let mut db = DatabaseInstance::empty(&s);
        db.insert("a", Tuple::from_strs(&["1", "u"])).unwrap();
        db.insert("a", Tuple::from_strs(&["2", "v"])).unwrap(); // dangling
        db.insert("b", Tuple::from_strs(&["1", "w"])).unwrap();
        let report = verify_information_equivalence(&compose, &db).unwrap();
        assert!(!report.round_trip_identity);
        assert!(!report.is_equivalent());
    }

    #[test]
    fn instances_equal_requires_same_relations_and_tuples() {
        let s = schema();
        let mut db1 = DatabaseInstance::empty(&s);
        let mut db2 = DatabaseInstance::empty(&s);
        db1.insert("student", Tuple::from_strs(&["a", "pre", "1"]))
            .unwrap();
        assert!(!instances_equal(&db1, &db2));
        db2.insert("student", Tuple::from_strs(&["a", "pre", "1"]))
            .unwrap();
        assert!(instances_equal(&db1, &db2));
    }
}
