//! The definition mapping δτ for decomposition steps.
//!
//! By Proposition 3.7 a bijective Horn transformation τ induces a mapping
//! δτ(h) = h ∘ τ⁻¹ between Horn definitions such that `h(I) = δτ(h)(τ(I))`.
//! For a *decomposition* this mapping is syntactically simple: every literal
//! over the decomposed relation `R(u)` is replaced by literals over the
//! parts, each projecting `u` onto the part's attributes — exactly the
//! rewriting the paper applies in the proofs of Lemmas 7.5–7.8.
//!
//! The composition direction requires recognizing joinable groups of
//! literals (and padding missing parts using the INDs); the experiments in
//! this repository only ever need the decomposition direction because every
//! dataset's ground-truth definition is authored over its most composed
//! schema variant and mapped "downwards" to the decomposed variants.

use crate::step::{RelationSpec, TransformStep};
use crate::transformation::Transformation;
use castor_logic::{Atom, Clause, Definition};

/// Maps a definition through one decomposition step (literal splitting).
/// Literals over relations other than the decomposed one are unchanged.
/// `Compose` steps are ignored (identity), consistent with the module-level
/// note above.
pub fn map_definition_through_step(def: &Definition, step: &TransformStep) -> Definition {
    let TransformStep::Decompose { source, parts } = step else {
        return def.clone();
    };
    let clauses = def
        .clauses
        .iter()
        .map(|c| map_clause(c, source, parts))
        .collect();
    Definition::new(def.target.clone(), clauses)
}

/// Maps a definition through every decomposition step of a transformation,
/// in order.
pub fn map_definition_through_decomposition(def: &Definition, tau: &Transformation) -> Definition {
    let mut current = def.clone();
    for step in tau.steps() {
        current = map_definition_through_step(&current, step);
    }
    current
}

fn map_clause(clause: &Clause, source: &RelationSpec, parts: &[RelationSpec]) -> Clause {
    let mut body = Vec::new();
    for atom in &clause.body {
        if atom.relation == source.name && atom.arity() == source.attrs.len() {
            for part in parts {
                let terms = part
                    .attrs
                    .iter()
                    .map(|a| {
                        let pos = source
                            .attrs
                            .iter()
                            .position(|x| x == a)
                            .expect("part attribute must exist in source");
                        atom.terms[pos].clone()
                    })
                    .collect();
                body.push(Atom::new(part.name.clone(), terms));
            }
        } else {
            body.push(atom.clone());
        }
    }
    Clause::new(clause.head.clone(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Term;
    use castor_relational::{RelationSymbol, Schema};

    fn schema_4nf() -> Schema {
        let mut s = Schema::new("uwcse-4nf");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s
    }

    fn decomposition(schema: &Schema) -> Transformation {
        Transformation::new(
            "to-original",
            vec![TransformStep::decompose(
                schema,
                "student",
                &[
                    ("student", &["stud"]),
                    ("inPhase", &["stud", "phase"]),
                    ("yearsInProgram", &["stud", "years"]),
                ],
            )],
        )
    }

    #[test]
    fn literal_over_decomposed_relation_is_split() {
        // hardWorking(x) ← student(x, prelim, 3)   (Example 6.5, 4NF form)
        let def = Definition::new(
            "hardWorking",
            vec![Clause::new(
                Atom::vars("hardWorking", &["x"]),
                vec![Atom::new(
                    "student",
                    vec![
                        Term::var("x"),
                        Term::constant("prelim"),
                        Term::constant("3"),
                    ],
                )],
            )],
        );
        let s = schema_4nf();
        let mapped = map_definition_through_decomposition(&def, &decomposition(&s));
        let body = &mapped.clauses[0].body;
        assert_eq!(body.len(), 3);
        assert_eq!(body[0], Atom::new("student", vec![Term::var("x")]));
        assert_eq!(
            body[1],
            Atom::new("inPhase", vec![Term::var("x"), Term::constant("prelim")])
        );
        assert_eq!(
            body[2],
            Atom::new("yearsInProgram", vec![Term::var("x"), Term::constant("3")])
        );
    }

    #[test]
    fn untouched_literals_are_preserved() {
        let def = Definition::new(
            "collaborated",
            vec![Clause::new(
                Atom::vars("collaborated", &["x", "y"]),
                vec![
                    Atom::vars("publication", &["p", "x"]),
                    Atom::vars("publication", &["p", "y"]),
                ],
            )],
        );
        let s = schema_4nf();
        let mapped = map_definition_through_decomposition(&def, &decomposition(&s));
        assert_eq!(mapped, def);
    }

    #[test]
    fn semantics_preserved_on_corresponding_instances() {
        use castor_logic::definition_results;
        use castor_relational::{DatabaseInstance, Tuple};
        // h(I) over the 4NF instance must equal δτ(h)(τ(I)).
        let s = schema_4nf();
        let tau = decomposition(&s);
        let mut db = DatabaseInstance::empty(&s);
        db.insert("student", Tuple::from_strs(&["alice", "prelim", "3"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bob", "post", "7"]))
            .unwrap();
        let def = Definition::new(
            "hardWorking",
            vec![Clause::new(
                Atom::vars("hardWorking", &["x"]),
                vec![Atom::new(
                    "student",
                    vec![
                        Term::var("x"),
                        Term::constant("prelim"),
                        Term::constant("3"),
                    ],
                )],
            )],
        );
        let mapped = map_definition_through_decomposition(&def, &tau);
        let transformed = tau.apply_instance(&db).unwrap();
        assert_eq!(
            definition_results(&def, &db),
            definition_results(&mapped, &transformed)
        );
    }

    #[test]
    fn compose_steps_are_identity_for_definitions() {
        let s = schema_4nf();
        let tau = decomposition(&s);
        let inverse = tau.invert();
        let def = Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::vars("publication", &["p", "x"])],
            )],
        );
        assert_eq!(map_definition_through_decomposition(&def, &inverse), def);
    }
}
