//! The definition mapping δτ for (de)composition steps.
//!
//! By Proposition 3.7 a bijective Horn transformation τ induces a mapping
//! δτ(h) = h ∘ τ⁻¹ between Horn definitions such that `h(I) = δτ(h)(τ(I))`.
//! Both directions are syntactic:
//!
//! * **Decomposition** — every literal over the decomposed relation `R(u)`
//!   is replaced by literals over the parts, each projecting `u` onto the
//!   part's attributes — exactly the rewriting the paper applies in the
//!   proofs of Lemmas 7.5–7.8.
//! * **Composition** — the inverse: maximal groups of part-literals that
//!   agree on their shared attributes are merged into one literal over the
//!   composed relation. Target attributes no group member constrains are
//!   padded with fresh (existential) variables; the INDs with equality a
//!   lossless decomposition declares between the parts (Definition 4.1)
//!   guarantee every part tuple extends to a full composed tuple, so the
//!   padding preserves the definition's results on corresponding instances.
//!
//! Grouping is greedy and deterministic: literals are scanned in body
//! order, and each part-literal joins the first open group whose already-
//! placed terms agree with it on every shared target position (and whose
//! slot for that part is still open), otherwise it opens a new group. On a
//! body produced by the matching decomposition split this regroups each
//! split exactly — compose ∘ decompose is the identity on clauses — which
//! is what lets α-equivalent clauses from different schema variants
//! collide on one canonical cache key (see [`crate::CanonicalSchema`]).

use crate::step::{RelationSpec, TransformStep};
use crate::transformation::Transformation;
use castor_logic::{Atom, Clause, Definition, Term};
use std::collections::HashSet;

/// Maps a definition through one transformation step, in either direction:
/// decomposition splits literals over the source relation, composition
/// merges joinable groups of part-literals (padding unconstrained target
/// attributes with fresh variables). Literals over other relations are
/// unchanged.
pub fn map_definition_through_step(def: &Definition, step: &TransformStep) -> Definition {
    let clauses = def
        .clauses
        .iter()
        .map(|c| map_clause_through_step(c, step))
        .collect();
    Definition::new(def.target.clone(), clauses)
}

/// Maps a definition through every step of a transformation, in order —
/// decomposition and composition steps alike.
pub fn map_definition_through(def: &Definition, tau: &Transformation) -> Definition {
    let mut current = def.clone();
    for step in tau.steps() {
        current = map_definition_through_step(&current, step);
    }
    current
}

/// Maps a definition through every step of a transformation, in order.
/// Historical name from when only the decomposition direction existed;
/// composition steps are mapped too (see [`map_definition_through`], which
/// this delegates to).
pub fn map_definition_through_decomposition(def: &Definition, tau: &Transformation) -> Definition {
    map_definition_through(def, tau)
}

/// Maps one clause through one transformation step (see
/// [`map_definition_through_step`]). Only the body is rewritten: the head
/// is over the learning target, which schema transformations never touch.
pub fn map_clause_through_step(clause: &Clause, step: &TransformStep) -> Clause {
    match step {
        TransformStep::Decompose { source, parts } => split_clause(clause, source, parts),
        TransformStep::Compose { sources, target } => merge_clause(clause, sources, target),
    }
}

/// The decomposition direction: one literal over `source` becomes one
/// literal per part, projecting the terms onto the part's attributes.
fn split_clause(clause: &Clause, source: &RelationSpec, parts: &[RelationSpec]) -> Clause {
    let mut body = Vec::new();
    for atom in &clause.body {
        if atom.relation == source.name && atom.arity() == source.attrs.len() {
            for part in parts {
                let terms = part
                    .attrs
                    .iter()
                    .map(|a| {
                        let pos = source
                            .attrs
                            .iter()
                            .position(|x| x == a)
                            .expect("part attribute must exist in source");
                        atom.terms[pos].clone()
                    })
                    .collect();
                body.push(Atom::new(part.name.clone(), terms));
            }
        } else {
            body.push(atom.clone());
        }
    }
    Clause::new(clause.head.clone(), body)
}

/// One group of part-literals being merged into a composed literal: the
/// target's term vector as far as placed members constrain it, plus which
/// source slots are already taken.
struct ComposeGroup {
    terms: Vec<Option<Term>>,
    filled: Vec<bool>,
}

impl ComposeGroup {
    /// Whether `atom` (known to match `sources[si]`) is consistent with
    /// this group: the slot is open and every target position the part
    /// constrains either is unplaced or already holds the same term.
    fn accepts(&self, si: usize, positions: &[usize], atom: &Atom) -> bool {
        !self.filled[si]
            && positions
                .iter()
                .zip(&atom.terms)
                .all(|(&p, t)| match &self.terms[p] {
                    Some(placed) => placed == t,
                    None => true,
                })
    }

    fn place(&mut self, si: usize, positions: &[usize], atom: &Atom) {
        self.filled[si] = true;
        for (&p, t) in positions.iter().zip(&atom.terms) {
            self.terms[p] = Some(t.clone());
        }
    }
}

/// The composition direction: greedy deterministic grouping of
/// part-literals into composed literals (module docs). Each composed
/// literal is emitted at the body position of its group's first member.
fn merge_clause(clause: &Clause, sources: &[RelationSpec], target: &RelationSpec) -> Clause {
    // Target position of each source attribute, per source. The compose
    // builder derives the target's attributes from the sources, so every
    // source attribute has a target position.
    let positions: Vec<Vec<usize>> = sources
        .iter()
        .map(|s| {
            s.attrs
                .iter()
                .map(|a| {
                    target
                        .attrs
                        .iter()
                        .position(|x| x == a)
                        .expect("source attribute must exist in compose target")
                })
                .collect()
        })
        .collect();

    // Body entries: pass-through atoms, group anchors (the first member's
    // position, where the composed literal lands), and consumed members.
    enum Slot {
        Keep(Atom),
        Group(usize),
        Consumed,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(clause.body.len());
    let mut groups: Vec<ComposeGroup> = Vec::new();
    for atom in &clause.body {
        let source_index = sources
            .iter()
            .position(|s| s.name == atom.relation && s.attrs.len() == atom.arity());
        let Some(si) = source_index else {
            slots.push(Slot::Keep(atom.clone()));
            continue;
        };
        match groups
            .iter()
            .position(|g| g.accepts(si, &positions[si], atom))
        {
            Some(gi) => {
                groups[gi].place(si, &positions[si], atom);
                slots.push(Slot::Consumed);
            }
            None => {
                let mut group = ComposeGroup {
                    terms: vec![None; target.attrs.len()],
                    filled: vec![false; sources.len()],
                };
                group.place(si, &positions[si], atom);
                groups.push(group);
                slots.push(Slot::Group(groups.len() - 1));
            }
        }
    }

    // Pad unconstrained target positions with fresh existential variables
    // (sound under the lossless decomposition's INDs with equality — every
    // part tuple extends to a composed tuple). Names avoid capture against
    // every variable of the clause.
    let used: HashSet<String> = clause.variables().into_iter().collect();
    let mut pad = 0usize;
    let mut fresh = || loop {
        let name = format!("_pad{pad}");
        pad += 1;
        if !used.contains(&name) {
            return Term::var(name);
        }
    };
    let composed: Vec<Atom> = groups
        .into_iter()
        .map(|g| {
            let terms = g
                .terms
                .into_iter()
                .map(|t| t.unwrap_or_else(&mut fresh))
                .collect();
            Atom::new(target.name.clone(), terms)
        })
        .collect();

    let body = slots
        .into_iter()
        .filter_map(|slot| match slot {
            Slot::Keep(atom) => Some(atom),
            Slot::Group(gi) => Some(composed[gi].clone()),
            Slot::Consumed => None,
        })
        .collect();
    Clause::new(clause.head.clone(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_logic::Term;
    use castor_relational::{RelationSymbol, Schema};

    fn schema_4nf() -> Schema {
        let mut s = Schema::new("uwcse-4nf");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s
    }

    fn decomposition(schema: &Schema) -> Transformation {
        Transformation::new(
            "to-original",
            vec![TransformStep::decompose(
                schema,
                "student",
                &[
                    ("student", &["stud"]),
                    ("inPhase", &["stud", "phase"]),
                    ("yearsInProgram", &["stud", "years"]),
                ],
            )],
        )
    }

    #[test]
    fn literal_over_decomposed_relation_is_split() {
        // hardWorking(x) ← student(x, prelim, 3)   (Example 6.5, 4NF form)
        let def = Definition::new(
            "hardWorking",
            vec![Clause::new(
                Atom::vars("hardWorking", &["x"]),
                vec![Atom::new(
                    "student",
                    vec![
                        Term::var("x"),
                        Term::constant("prelim"),
                        Term::constant("3"),
                    ],
                )],
            )],
        );
        let s = schema_4nf();
        let mapped = map_definition_through_decomposition(&def, &decomposition(&s));
        let body = &mapped.clauses[0].body;
        assert_eq!(body.len(), 3);
        assert_eq!(body[0], Atom::new("student", vec![Term::var("x")]));
        assert_eq!(
            body[1],
            Atom::new("inPhase", vec![Term::var("x"), Term::constant("prelim")])
        );
        assert_eq!(
            body[2],
            Atom::new("yearsInProgram", vec![Term::var("x"), Term::constant("3")])
        );
    }

    #[test]
    fn untouched_literals_are_preserved() {
        let def = Definition::new(
            "collaborated",
            vec![Clause::new(
                Atom::vars("collaborated", &["x", "y"]),
                vec![
                    Atom::vars("publication", &["p", "x"]),
                    Atom::vars("publication", &["p", "y"]),
                ],
            )],
        );
        let s = schema_4nf();
        let mapped = map_definition_through_decomposition(&def, &decomposition(&s));
        assert_eq!(mapped, def);
    }

    #[test]
    fn semantics_preserved_on_corresponding_instances() {
        use castor_logic::definition_results;
        use castor_relational::{DatabaseInstance, Tuple};
        // h(I) over the 4NF instance must equal δτ(h)(τ(I)).
        let s = schema_4nf();
        let tau = decomposition(&s);
        let mut db = DatabaseInstance::empty(&s);
        db.insert("student", Tuple::from_strs(&["alice", "prelim", "3"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bob", "post", "7"]))
            .unwrap();
        let def = Definition::new(
            "hardWorking",
            vec![Clause::new(
                Atom::vars("hardWorking", &["x"]),
                vec![Atom::new(
                    "student",
                    vec![
                        Term::var("x"),
                        Term::constant("prelim"),
                        Term::constant("3"),
                    ],
                )],
            )],
        );
        let mapped = map_definition_through_decomposition(&def, &tau);
        let transformed = tau.apply_instance(&db).unwrap();
        assert_eq!(
            definition_results(&def, &db),
            definition_results(&mapped, &transformed)
        );
    }

    #[test]
    fn compose_merges_split_literals_back_exactly() {
        // compose ∘ decompose is the identity on clauses: mapping through
        // τ then τ⁻¹ reproduces the original definition literal-for-literal.
        let s = schema_4nf();
        let tau = decomposition(&s);
        let def = Definition::new(
            "hardWorking",
            vec![Clause::new(
                Atom::vars("hardWorking", &["x"]),
                vec![
                    Atom::new(
                        "student",
                        vec![Term::var("x"), Term::constant("prelim"), Term::var("y")],
                    ),
                    Atom::vars("publication", &["p", "x"]),
                ],
            )],
        );
        let split = map_definition_through(&def, &tau);
        assert_eq!(split.clauses[0].body.len(), 4);
        let merged = map_definition_through(&split, &tau.invert());
        assert_eq!(merged, def);
    }

    #[test]
    fn compose_pads_missing_parts_with_fresh_variables() {
        // A clause constraining only inPhase: composing pads stud's other
        // attributes (years) with a fresh variable not used in the clause.
        let s = schema_4nf();
        let tau = decomposition(&s);
        let def = Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::new(
                    "inPhase",
                    vec![Term::var("x"), Term::constant("prelim")],
                )],
            )],
        );
        let merged = map_definition_through(&def, &tau.invert());
        let body = &merged.clauses[0].body;
        assert_eq!(body.len(), 1);
        assert_eq!(body[0].relation, "student");
        assert_eq!(body[0].terms[0], Term::var("x"));
        assert_eq!(body[0].terms[1], Term::constant("prelim"));
        let Term::Var(padded) = &body[0].terms[2] else {
            panic!("padded position must be a variable");
        };
        assert!(!merged.clauses[0].head.terms.contains(&body[0].terms[2]));
        assert_ne!(padded, "x");
    }

    #[test]
    fn compose_separates_literals_that_disagree_on_shared_attributes() {
        // Two inPhase literals over different students must not merge into
        // one composed literal.
        let s = schema_4nf();
        let tau = decomposition(&s);
        let def = Definition::new(
            "t",
            vec![Clause::new(
                Atom::vars("t", &["x", "y"]),
                vec![
                    Atom::vars("inPhase", &["x", "ph"]),
                    Atom::vars("inPhase", &["y", "ph"]),
                ],
            )],
        );
        let merged = map_definition_through(&def, &tau.invert());
        let body = &merged.clauses[0].body;
        assert_eq!(body.len(), 2);
        assert!(body.iter().all(|a| a.relation == "student"));
        assert_ne!(body[0].terms[0], body[1].terms[0]);
    }
}
