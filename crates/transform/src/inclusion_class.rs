//! Inclusion classes (Definition 7.1 of the paper).
//!
//! The inclusion class of a schema is a maximal set of relation symbols
//! connected by a chain of INDs whose attribute lists are exactly the shared
//! attributes of the adjacent relations. Castor walks inclusion classes
//! during bottom-clause construction to pull in every tuple that joins with
//! the tuple just added, which is what makes the produced bottom-clauses
//! equivalent across (de)compositions.

use castor_relational::{InclusionDependency, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// A maximal set of relation symbols connected by INDs (with equality by
/// default; the general-IND extension of Section 7.4 also admits subset
/// INDs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionClass {
    /// The relations in the class, sorted by name.
    pub relations: BTreeSet<String>,
    /// The INDs connecting members of the class.
    pub inds: Vec<InclusionDependency>,
}

impl InclusionClass {
    /// Whether the class contains the relation.
    pub fn contains(&self, relation: &str) -> bool {
        self.relations.contains(relation)
    }

    /// Number of member relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the class has no members.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The INDs of this class in which `relation` participates.
    pub fn inds_of(&self, relation: &str) -> Vec<&InclusionDependency> {
        self.inds.iter().filter(|i| i.mentions(relation)).collect()
    }
}

/// Computes the inclusion classes of a schema.
///
/// When `equality_only` is true (Castor's default, Definition 7.1) only INDs
/// with equality connect relations; otherwise subset INDs connect them too
/// (the general-IND extension of Section 7.4). Relations that participate in
/// no qualifying IND form singleton classes and are omitted from the result,
/// matching the paper's use of classes only for joined relations.
pub fn inclusion_classes(schema: &Schema, equality_only: bool) -> Vec<InclusionClass> {
    // The paper requires IND attribute lists to be exactly the shared
    // attributes of the two relations; we additionally accept any IND the
    // schema declares because the benchmark schemas already satisfy this.
    let qualifying: Vec<&InclusionDependency> = schema
        .inds()
        .filter(|i| !equality_only || i.with_equality)
        .filter(|i| i.lhs_relation != i.rhs_relation)
        .collect();

    // Union-find over relation names.
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    for r in schema.relations() {
        parent.insert(r.name().to_string(), r.name().to_string());
    }
    fn find(parent: &mut BTreeMap<String, String>, x: &str) -> String {
        let p = parent.get(x).cloned().unwrap_or_else(|| x.to_string());
        if p == x {
            return p;
        }
        let root = find(parent, &p);
        parent.insert(x.to_string(), root.clone());
        root
    }
    for ind in &qualifying {
        let a = find(&mut parent, &ind.lhs_relation);
        let b = find(&mut parent, &ind.rhs_relation);
        if a != b {
            parent.insert(a, b);
        }
    }

    let mut groups: BTreeMap<String, InclusionClass> = BTreeMap::new();
    let names: Vec<String> = parent.keys().cloned().collect();
    for name in names {
        let root = find(&mut parent, &name);
        groups
            .entry(root)
            .or_insert_with(|| InclusionClass {
                relations: BTreeSet::new(),
                inds: Vec::new(),
            })
            .relations
            .insert(name);
    }
    for ind in &qualifying {
        let root = find(&mut parent, &ind.lhs_relation);
        if let Some(class) = groups.get_mut(&root) {
            class.inds.push((*ind).clone());
        }
    }

    groups
        .into_values()
        .filter(|c| c.relations.len() > 1)
        .collect()
}

/// The inclusion class containing `relation`, if any.
pub fn class_of<'a>(classes: &'a [InclusionClass], relation: &str) -> Option<&'a InclusionClass> {
    classes.iter().find(|c| c.contains(relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::RelationSymbol;

    fn uwcse_original() -> Schema {
        let mut s = Schema::new("uwcse-original");
        for (name, attrs) in [
            ("student", vec!["stud"]),
            ("inPhase", vec!["stud", "phase"]),
            ("yearsInProgram", vec!["stud", "years"]),
            ("professor", vec!["prof"]),
            ("hasPosition", vec!["prof", "position"]),
            ("publication", vec!["title", "person"]),
        ] {
            s.add_relation(RelationSymbol::new(name, &attrs));
        }
        s.add_ind(InclusionDependency::equality(
            "student",
            &["stud"],
            "inPhase",
            &["stud"],
        ));
        s.add_ind(InclusionDependency::equality(
            "student",
            &["stud"],
            "yearsInProgram",
            &["stud"],
        ));
        s.add_ind(InclusionDependency::equality(
            "professor",
            &["prof"],
            "hasPosition",
            &["prof"],
        ));
        s.add_ind(InclusionDependency::subset(
            "publication",
            &["person"],
            "student",
            &["stud"],
        ));
        s
    }

    #[test]
    fn equality_classes_group_decomposed_relations() {
        let classes = inclusion_classes(&uwcse_original(), true);
        assert_eq!(classes.len(), 2);
        let student_class = class_of(&classes, "student").unwrap();
        assert!(student_class.contains("inPhase"));
        assert!(student_class.contains("yearsInProgram"));
        assert!(!student_class.contains("professor"));
        let prof_class = class_of(&classes, "professor").unwrap();
        assert_eq!(prof_class.len(), 2);
    }

    #[test]
    fn publication_is_not_in_any_equality_class() {
        let classes = inclusion_classes(&uwcse_original(), true);
        assert!(class_of(&classes, "publication").is_none());
    }

    #[test]
    fn general_inds_extend_classes() {
        let classes = inclusion_classes(&uwcse_original(), false);
        // With subset INDs allowed, publication joins the student class.
        let student_class = class_of(&classes, "student").unwrap();
        assert!(student_class.contains("publication"));
    }

    #[test]
    fn schema_without_inds_has_no_classes() {
        let mut s = Schema::new("flat");
        s.add_relation(RelationSymbol::new("a", &["x"]));
        s.add_relation(RelationSymbol::new("b", &["y"]));
        assert!(inclusion_classes(&s, true).is_empty());
    }

    #[test]
    fn inds_of_member_relation() {
        let classes = inclusion_classes(&uwcse_original(), true);
        let student_class = class_of(&classes, "student").unwrap();
        assert_eq!(student_class.inds_of("student").len(), 2);
        assert_eq!(student_class.inds_of("inPhase").len(), 1);
    }

    #[test]
    fn classes_are_maximal_each_relation_in_at_most_one() {
        let classes = inclusion_classes(&uwcse_original(), true);
        let mut seen = BTreeSet::new();
        for c in &classes {
            for r in &c.relations {
                assert!(
                    seen.insert(r.clone()),
                    "relation {r} appears in two classes"
                );
            }
        }
    }
}
