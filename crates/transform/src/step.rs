//! Single (de)composition steps over one relation (or one group of
//! relations) of a schema.

use castor_relational::{
    AttrName, Constraint, DatabaseInstance, FunctionalDependency, InclusionDependency,
    RelationSymbol, Schema, Sort,
};
use std::collections::BTreeSet;
use std::fmt;

/// A relation name together with the attribute list it carries in a
/// transformation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSpec {
    /// The relation name.
    pub name: String,
    /// The attributes of the relation, in positional order.
    pub attrs: Vec<AttrName>,
}

impl RelationSpec {
    /// Creates a relation spec.
    pub fn new<S: AsRef<str>>(name: impl Into<String>, attrs: &[S]) -> Self {
        RelationSpec {
            name: name.into(),
            attrs: attrs.iter().map(|a| AttrName::new(a.as_ref())).collect(),
        }
    }

    /// Builds the spec of an existing schema relation.
    pub fn from_schema(schema: &Schema, name: &str) -> Option<Self> {
        schema.relation(name).map(|r| RelationSpec {
            name: name.to_string(),
            attrs: r.sort().iter().cloned().collect(),
        })
    }

    fn sort(&self) -> Sort {
        Sort::new(self.attrs.iter().map(|a| a.as_str().to_string()))
    }

    fn symbol(&self) -> RelationSymbol {
        RelationSymbol::with_sort(self.name.clone(), self.sort())
    }
}

/// One vertical (de)composition step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformStep {
    /// Replace `source` by its projections onto `parts` (Definition 4.1).
    Decompose {
        /// The relation being decomposed.
        source: RelationSpec,
        /// The projections that replace it.
        parts: Vec<RelationSpec>,
    },
    /// Replace `sources` by their natural join `target` (the inverse of a
    /// decomposition).
    Compose {
        /// The relations being joined.
        sources: Vec<RelationSpec>,
        /// The composed relation that replaces them.
        target: RelationSpec,
    },
}

impl TransformStep {
    /// Builds a decomposition step for a relation of `schema`. Each part is
    /// a `(name, attributes)` pair; the union of the parts' attributes must
    /// equal the source's sort.
    pub fn decompose<S: AsRef<str>>(schema: &Schema, source: &str, parts: &[(&str, &[S])]) -> Self {
        let source_spec =
            RelationSpec::from_schema(schema, source).expect("source relation must exist");
        let parts: Vec<RelationSpec> = parts
            .iter()
            .map(|(name, attrs)| RelationSpec::new(*name, attrs))
            .collect();
        let covered: BTreeSet<&AttrName> = parts.iter().flat_map(|p| p.attrs.iter()).collect();
        let original: BTreeSet<&AttrName> = source_spec.attrs.iter().collect();
        assert_eq!(
            covered, original,
            "decomposition parts must cover exactly the source attributes"
        );
        TransformStep::Decompose {
            source: source_spec,
            parts,
        }
    }

    /// Builds a composition step joining existing relations of `schema`
    /// into `target`. The target's attribute order is the order attributes
    /// first appear across the sources.
    pub fn compose(schema: &Schema, sources: &[&str], target: &str) -> Self {
        let sources: Vec<RelationSpec> = sources
            .iter()
            .map(|s| RelationSpec::from_schema(schema, s).expect("source relation must exist"))
            .collect();
        let mut attrs: Vec<AttrName> = Vec::new();
        for s in &sources {
            for a in &s.attrs {
                if !attrs.contains(a) {
                    attrs.push(a.clone());
                }
            }
        }
        TransformStep::Compose {
            sources,
            target: RelationSpec {
                name: target.to_string(),
                attrs,
            },
        }
    }

    /// The inverse step: a decomposition inverts to the composition of its
    /// parts and vice versa.
    pub fn invert(&self) -> TransformStep {
        match self {
            TransformStep::Decompose { source, parts } => TransformStep::Compose {
                sources: parts.clone(),
                target: source.clone(),
            },
            TransformStep::Compose { sources, target } => TransformStep::Decompose {
                source: target.clone(),
                parts: sources.clone(),
            },
        }
    }

    /// Relations consumed (removed from the schema) by this step.
    pub fn consumed(&self) -> Vec<&str> {
        match self {
            TransformStep::Decompose { source, .. } => vec![source.name.as_str()],
            TransformStep::Compose { sources, .. } => {
                sources.iter().map(|s| s.name.as_str()).collect()
            }
        }
    }

    /// Relations produced (added to the schema) by this step.
    pub fn produced(&self) -> Vec<&RelationSpec> {
        match self {
            TransformStep::Decompose { parts, .. } => parts.iter().collect(),
            TransformStep::Compose { target, .. } => vec![target],
        }
    }

    /// Applies the step to a schema, producing the transformed schema.
    ///
    /// Constraints are rewritten conservatively:
    /// * FDs whose attributes all fall in a produced relation move to it;
    /// * INDs whose side's attributes all fall in a produced relation are
    ///   re-targeted to it; INDs that only connected consumed relations to
    ///   each other are dropped (their join condition becomes internal);
    /// * a decomposition additionally adds INDs with equality between every
    ///   pair of parts that share attributes, per Definition 4.1.
    pub fn apply_schema(&self, schema: &Schema) -> Schema {
        let mut out = Schema::new(schema.name());
        let consumed: BTreeSet<&str> = self.consumed().into_iter().collect();

        // Copy untouched relations.
        for r in schema.relations() {
            if !consumed.contains(r.name()) {
                out.add_relation(r.clone());
            }
        }
        // Add produced relations.
        for p in self.produced() {
            out.add_relation(p.symbol());
        }

        // Rewrite constraints.
        for c in schema.constraints() {
            match c {
                Constraint::Fd(fd) => {
                    if !consumed.contains(fd.relation.as_str()) {
                        out.add_fd(fd.clone());
                    } else if let Some(home) = self.produced().into_iter().find(|p| {
                        fd.lhs
                            .iter()
                            .chain(fd.rhs.iter())
                            .all(|a| p.attrs.contains(a))
                    }) {
                        out.add_fd(FunctionalDependency {
                            relation: home.name.clone(),
                            lhs: fd.lhs.clone(),
                            rhs: fd.rhs.clone(),
                        });
                    }
                }
                Constraint::Ind(ind) => {
                    let lhs_consumed = consumed.contains(ind.lhs_relation.as_str());
                    let rhs_consumed = consumed.contains(ind.rhs_relation.as_str());
                    if lhs_consumed && rhs_consumed {
                        continue; // internal join condition, now implicit
                    }
                    let mut rewritten = ind.clone();
                    if lhs_consumed {
                        match self
                            .produced()
                            .into_iter()
                            .find(|p| ind.lhs_attrs.iter().all(|a| p.attrs.contains(a)))
                        {
                            Some(home) => rewritten.lhs_relation = home.name.clone(),
                            None => continue,
                        }
                    }
                    if rhs_consumed {
                        match self
                            .produced()
                            .into_iter()
                            .find(|p| ind.rhs_attrs.iter().all(|a| p.attrs.contains(a)))
                        {
                            Some(home) => rewritten.rhs_relation = home.name.clone(),
                            None => continue,
                        }
                    }
                    out.add_ind(rewritten);
                }
            }
        }

        // A decomposition introduces INDs with equality between parts that
        // share attributes (second condition of Definition 4.1).
        if let TransformStep::Decompose { parts, .. } = self {
            for (i, a) in parts.iter().enumerate() {
                for b in parts.iter().skip(i + 1) {
                    let shared: Vec<&AttrName> =
                        a.attrs.iter().filter(|x| b.attrs.contains(x)).collect();
                    if !shared.is_empty() {
                        let attrs: Vec<&str> = shared.iter().map(|x| x.as_str()).collect();
                        out.add_ind(InclusionDependency::equality(
                            a.name.clone(),
                            &attrs,
                            b.name.clone(),
                            &attrs,
                        ));
                    }
                }
            }
        }
        out
    }

    /// Applies the step to a database instance of the source schema,
    /// producing an instance of `target_schema` (which must be the result of
    /// [`TransformStep::apply_schema`] on the instance's schema).
    pub fn apply_instance(
        &self,
        db: &DatabaseInstance,
        target_schema: &Schema,
    ) -> castor_relational::Result<DatabaseInstance> {
        let mut out = DatabaseInstance::empty(target_schema);
        let consumed: BTreeSet<&str> = self.consumed().into_iter().collect();

        // Copy untouched relations verbatim.
        for inst in db.relations() {
            if !consumed.contains(inst.name()) && target_schema.contains_relation(inst.name()) {
                for t in inst.iter() {
                    out.insert(inst.name(), t.clone())?;
                }
            }
        }

        match self {
            TransformStep::Decompose { source, parts } => {
                let src = db.require_relation(&source.name)?;
                for part in parts {
                    let positions: Vec<usize> = part
                        .attrs
                        .iter()
                        .map(|a| {
                            src.symbol()
                                .attr_position(a)
                                .expect("part attribute must exist in source")
                        })
                        .collect();
                    for t in src.iter() {
                        out.insert(&part.name, t.project(&positions))?;
                    }
                }
            }
            TransformStep::Compose { sources, target } => {
                let instances: Vec<&castor_relational::RelationInstance> = sources
                    .iter()
                    .map(|s| db.require_relation(&s.name))
                    .collect::<castor_relational::Result<Vec<_>>>()?;
                let joined = castor_relational::natural_join_all(&instances, &target.name)?;
                // Re-project onto the target's declared attribute order (the
                // join may produce a different column order when sources are
                // listed differently).
                let positions: Vec<usize> = target
                    .attrs
                    .iter()
                    .map(|a| {
                        joined
                            .symbol()
                            .attr_position(a)
                            .expect("target attribute must appear in join result")
                    })
                    .collect();
                for t in joined.iter() {
                    out.insert(&target.name, t.project(&positions))?;
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for TransformStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformStep::Decompose { source, parts } => {
                let names: Vec<&str> = parts.iter().map(|p| p.name.as_str()).collect();
                write!(f, "decompose {} -> {}", source.name, names.join(", "))
            }
            TransformStep::Compose { sources, target } => {
                let names: Vec<&str> = sources.iter().map(|p| p.name.as_str()).collect();
                write!(f, "compose {} -> {}", names.join(" ⋈ "), target.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castor_relational::Tuple;

    fn uwcse_4nf() -> Schema {
        let mut s = Schema::new("uwcse-4nf");
        s.add_relation(RelationSymbol::new("student", &["stud", "phase", "years"]));
        s.add_relation(RelationSymbol::new("publication", &["title", "person"]));
        s.add_fd(FunctionalDependency::new(
            "student",
            &["stud"],
            &["phase", "years"],
        ));
        s
    }

    fn decomposition_step(schema: &Schema) -> TransformStep {
        TransformStep::decompose(
            schema,
            "student",
            &[
                ("student", &["stud"]),
                ("inPhase", &["stud", "phase"]),
                ("yearsInProgram", &["stud", "years"]),
            ],
        )
    }

    #[test]
    fn decompose_schema_adds_parts_and_equality_inds() {
        let s = uwcse_4nf();
        let step = decomposition_step(&s);
        let out = step.apply_schema(&s);
        assert!(out.contains_relation("inPhase"));
        assert!(out.contains_relation("yearsInProgram"));
        assert!(out.contains_relation("publication"));
        assert_eq!(out.relation("student").unwrap().arity(), 1);
        // Equality INDs between the three parts sharing `stud`.
        assert_eq!(out.equality_inds().len(), 3);
        // The FD stud->phase lands in inPhase? The original FD covers phase
        // and years which no single part holds, so it is dropped.
        assert_eq!(out.fds().count(), 0);
    }

    #[test]
    fn decompose_instance_projects_tuples() {
        let s = uwcse_4nf();
        let step = decomposition_step(&s);
        let target = step.apply_schema(&s);
        let mut db = DatabaseInstance::empty(&s);
        db.insert("student", Tuple::from_strs(&["alice", "prelim", "3"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bob", "post", "7"]))
            .unwrap();
        db.insert("publication", Tuple::from_strs(&["p1", "alice"]))
            .unwrap();
        let out = step.apply_instance(&db, &target).unwrap();
        assert_eq!(out.relation("student").unwrap().len(), 2);
        assert!(out.contains("inPhase", &Tuple::from_strs(&["alice", "prelim"])));
        assert!(out.contains("yearsInProgram", &Tuple::from_strs(&["bob", "7"])));
        assert!(out.contains("publication", &Tuple::from_strs(&["p1", "alice"])));
        assert!(out.validate().is_ok());
    }

    #[test]
    fn compose_is_inverse_of_decompose_on_instances() {
        let s = uwcse_4nf();
        let step = decomposition_step(&s);
        let decomposed_schema = step.apply_schema(&s);
        let mut db = DatabaseInstance::empty(&s);
        db.insert("student", Tuple::from_strs(&["alice", "prelim", "3"]))
            .unwrap();
        db.insert("student", Tuple::from_strs(&["bob", "post", "7"]))
            .unwrap();
        let decomposed = step.apply_instance(&db, &decomposed_schema).unwrap();

        let inverse = step.invert();
        let recomposed_schema = inverse.apply_schema(&decomposed_schema);
        let recomposed = inverse
            .apply_instance(&decomposed, &recomposed_schema)
            .unwrap();
        assert_eq!(recomposed.relation("student").unwrap().len(), 2);
        assert!(recomposed.contains("student", &Tuple::from_strs(&["alice", "prelim", "3"])));
        assert!(recomposed.contains("student", &Tuple::from_strs(&["bob", "post", "7"])));
    }

    #[test]
    fn compose_step_from_schema_relations() {
        let s = uwcse_4nf();
        let step = decomposition_step(&s);
        let decomposed_schema = step.apply_schema(&s);
        let compose = TransformStep::compose(
            &decomposed_schema,
            &["student", "inPhase", "yearsInProgram"],
            "student",
        );
        let recomposed = compose.apply_schema(&decomposed_schema);
        assert_eq!(recomposed.relation("student").unwrap().arity(), 3);
        assert!(!recomposed.contains_relation("inPhase"));
    }

    #[test]
    #[should_panic(expected = "cover exactly")]
    fn decomposition_must_cover_all_attributes() {
        let s = uwcse_4nf();
        let _ = TransformStep::decompose(
            &s,
            "student",
            &[("student", &["stud"]), ("inPhase", &["stud", "phase"])],
        );
    }

    #[test]
    fn display_summarizes_step() {
        let s = uwcse_4nf();
        let step = decomposition_step(&s);
        assert!(step.to_string().starts_with("decompose student"));
        assert!(step.invert().to_string().starts_with("compose"));
    }

    #[test]
    fn ind_touching_composed_relation_is_rewritten() {
        // publication[person] ⊆ student[stud] must survive the decomposition
        // by re-targeting to the part that holds `stud`.
        let mut s = uwcse_4nf();
        s.add_ind(InclusionDependency::subset(
            "publication",
            &["person"],
            "student",
            &["stud"],
        ));
        let step = decomposition_step(&s);
        let out = step.apply_schema(&s);
        let rewritten: Vec<_> = out
            .inds()
            .filter(|i| i.lhs_relation == "publication")
            .collect();
        assert_eq!(rewritten.len(), 1);
        assert_eq!(rewritten[0].rhs_relation, "student");
    }
}
