//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the slice of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up, then timed over enough iterations to fill a measurement
//! window, and the mean wall-clock time per iteration is printed. There is
//! no statistical analysis or HTML report — just honest numbers on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for the warm-up phase.
const WARM_UP: Duration = Duration::from_millis(300);
/// Target wall-clock time for the measurement phase.
const MEASUREMENT: Duration = Duration::from_millis(1000);

/// Benchmark driver handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations as u32
        };
        println!(
            "{id:<55} time: {:>12} ({} iterations)",
            format_duration(mean),
            bencher.iterations
        );
        self
    }

    /// Accepted for API compatibility; measurement windows are fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Timing harness passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`, recording the total elapsed
    /// time and iteration count used for the mean-per-iteration report.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window has elapsed, measuring the
        // rough per-iteration cost to size the measurement batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target_iters = (MEASUREMENT.as_nanos() / per_iter.max(1)).clamp(10, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target_iters;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine never executed");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
