//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic per seed, which is all the synthetic dataset
//! generators need. It is *not* a drop-in statistical or security
//! replacement for the real crate.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types that can be drawn uniformly from an interval. The blanket
/// [`SampleRange`] impls below are generic over this trait so that the
/// range's element type drives inference (and integer literals fall back to
/// `i32`, as with the real rand crate).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi]` derived from one 64-bit word.
    fn from_word(lo: Self, hi_inclusive: Self, word: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_word(lo: Self, hi_inclusive: Self, word: u64) -> Self {
                let span = (hi_inclusive as i128 - lo as i128 + 1) as u128;
                debug_assert!(span > 0);
                lo.wrapping_add((u128::from(word) % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::from_word(self.start, self.end.minus_one(), rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::from_word(start, end, rng.next_u64())
    }
}

/// Decrement helper for converting exclusive bounds to inclusive ones.
pub trait One {
    /// `self - 1` (never called on a minimum value: empty ranges panic
    /// before reaching it).
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_one!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, exactly the resolution of an f64 in [0,1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's
    /// `StdRng`; same name so call sites compile unchanged).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extension mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..10usize);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(1..=3i32);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((600..1400).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
