//! Acceptance guard for PR 10's schema-invariant coverage: cross-variant
//! verdict reuse through the shared cache arena must be *invisible* in
//! results (covered sets bit-identical to isolated engines, in-process
//! and over RPC) while actually reusing work (`cross_variant_hits > 0`
//! for every variant after the first), and parallel ground-bottom-clause
//! construction must be bit-identical to sequential — with a measured
//! speedup where the hardware can show one. The speedup itself is
//! *measured* by `bench_fig2` (release mode, best-of-N); the wall-clock
//! assertion here is release-only and skips on hosts without enough
//! cores, the same anti-flake posture as the other speedup guards.

use castor_core::{ground_bottom_clauses, BottomClausePlan, CastorConfig};
use castor_datasets::uwcse::{self, UwCseConfig};
use castor_engine::WorkerPool;
use castor_eval::{run_uwcse_cross_variant_coverage, run_uwcse_independent_coverage, Transport};
use castor_relational::Tuple;
use std::sync::Arc;

fn reuse_family() -> castor_datasets::SchemaFamily {
    uwcse::generate(&UwCseConfig {
        students: 16,
        professors: 4,
        courses: 6,
        noise_fraction: 0.0,
        ..Default::default()
    })
}

fn task_examples(family: &castor_datasets::SchemaFamily) -> Vec<Tuple> {
    let task = &family.variants[0].task;
    task.positive
        .iter()
        .chain(task.negative.iter())
        .cloned()
        .collect()
}

/// The end-to-end reuse contract on both transports: registering the four
/// UW-CSE variants as one logical database changes *no* covered set
/// relative to four isolated engines, and every variant after the first
/// answers at least one probe from another variant's proven verdict.
#[test]
fn cross_variant_reuse_is_invisible_in_results_on_both_transports() {
    let family = reuse_family();
    let clauses = uwcse::ground_truth_original().clauses;
    let examples = task_examples(&family);
    let isolated = run_uwcse_independent_coverage(&family, &clauses, &examples, 1);
    for transport in [Transport::InProcess, Transport::Rpc] {
        let shared = run_uwcse_cross_variant_coverage(&family, &clauses, &examples, 1, transport);
        assert_eq!(shared.len(), 4);
        for (s, i) in shared.iter().zip(&isolated) {
            assert_eq!(s.variant, i.variant);
            assert_eq!(
                s.covered, i.covered,
                "{:?}/{}: shared-arena covered sets diverge from isolated engines",
                transport, s.variant
            );
        }
        assert_eq!(
            shared[0].report.cross_variant_hits, 0,
            "the first variant has nobody to reuse from"
        );
        for run in &shared[1..] {
            assert!(
                run.report.cross_variant_hits > 0,
                "{:?}/{}: no cross-variant reuse: {:?}",
                transport,
                run.variant,
                run.report
            );
        }
    }
}

/// Parallel saturation is a pure distribution change: the per-example
/// ground bottom clauses from a 4-thread pool equal the sequential ones
/// literal-for-literal (same deterministic merge order inside each
/// clause), on a workload large enough to exercise real stealing.
#[test]
fn parallel_bottom_clauses_are_bit_identical_to_sequential() {
    let family = uwcse::generate(&UwCseConfig {
        students: 60,
        professors: 10,
        courses: 20,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    let plan = BottomClausePlan::compile(variant.db.schema(), false);
    let config = CastorConfig::uwcse();
    let examples = task_examples(&family);

    let sequential = ground_bottom_clauses(
        &variant.db,
        &plan,
        "advisedBy",
        &examples,
        &config,
        &Arc::new(WorkerPool::new(1)),
    );
    let parallel = ground_bottom_clauses(
        &variant.db,
        &plan,
        "advisedBy",
        &examples,
        &config,
        &Arc::new(WorkerPool::new(4)),
    );
    assert!(!sequential.is_empty());
    assert_eq!(parallel.len(), sequential.len());
    for (example, clause) in &sequential {
        let other = parallel
            .get(example)
            .unwrap_or_else(|| panic!("parallel run lost example {example:?}"));
        assert_eq!(other.head, clause.head);
        assert_eq!(
            other.body, clause.body,
            "literal order diverges for {example:?}"
        );
    }
}

/// Release-only wall-clock floor: 4 worker threads saturate the example
/// list ≥1.3× faster than one. Needs real cores — on hosts with fewer
/// than four the assertion is physically unsatisfiable, so the guard
/// skips (the determinism contract above still ran).
#[cfg(not(debug_assertions))]
#[test]
fn parallel_bottom_clauses_beat_sequential_at_four_threads() {
    use std::time::Instant;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup floor: only {cores} core(s) available");
        return;
    }

    let family = uwcse::generate(&UwCseConfig {
        students: 300,
        professors: 50,
        courses: 100,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    let plan = BottomClausePlan::compile(variant.db.schema(), false);
    let config = CastorConfig::uwcse();
    let examples = task_examples(&family);

    let time_with = |threads: usize| {
        let pool = Arc::new(WorkerPool::new(threads));
        (0..3)
            .map(|_| {
                let start = Instant::now();
                let ground = ground_bottom_clauses(
                    &variant.db,
                    &plan,
                    "advisedBy",
                    &examples,
                    &config,
                    &pool,
                );
                assert!(!ground.is_empty());
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let sequential = time_with(1);
    let parallel = time_with(4);
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.3,
        "4-thread saturation must be ≥1.3x sequential, got {speedup:.2}x \
         ({sequential:?} vs {parallel:?})"
    );
}
