//! Acceptance guard for batched beam evaluation (shared join-prefix
//! execution). The ≥1.5× claim is *measured* by the Criterion bench
//! `engine_batched_beam_vs_sequential` in `castor-bench/benches/micro.rs`
//! (release mode, warm-up, sized iteration counts); this test pins the same
//! workload in CI with the acceptance floor plus counter-based assertions
//! that the speedup really comes from shared-prefix execution, and an exact
//! result-equivalence check between the two paths.

use castor_bench::beam_candidate_batch;
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_engine::{Engine, EngineConfig, Prior};
use castor_relational::Tuple;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn batched_beam_scoring_outpaces_sequential_scoring() {
    // A larger-than-default instance so one coverage pass costs what it
    // does in a real run; fixed per-call overhead is then noise.
    let family = generate(&UwCseConfig {
        students: 120,
        professors: 25,
        courses: 40,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    // One level of beam refinement: 24 siblings sharing the ground-truth
    // body as prefix (same workload as the Criterion bench).
    let beam = beam_candidate_batch(variant, 24);
    assert_eq!(beam.len(), 24, "workload generator under-produced");
    let examples: Vec<Tuple> = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();

    // Caches are disabled on both sides: the comparison is shared-prefix
    // execution against repeated per-clause prefix joins, not memoization.
    let config = EngineConfig::default().without_cache();

    // Each side is measured three times and the minimum kept: wall-clock
    // assertions in shared CI are vulnerable to scheduler jitter, and the
    // minimum is the standard de-noised estimate for a deterministic loop.
    const MEASUREMENTS: usize = 3;

    let batched_engine = Engine::from_arc(Arc::clone(&variant.db), config.clone());
    let mut batched_sets: Vec<HashSet<Tuple>> = Vec::new();
    let batched_time = (0..MEASUREMENTS)
        .map(|_| {
            let start = Instant::now();
            batched_sets = batched_engine.covered_sets_batch(&beam, &examples);
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");

    let sequential_engine = Engine::from_arc(Arc::clone(&variant.db), config);
    let mut sequential_sets: Vec<HashSet<Tuple>> = Vec::new();
    let sequential_time = (0..MEASUREMENTS)
        .map(|_| {
            let start = Instant::now();
            sequential_sets = beam
                .iter()
                .map(|clause| sequential_engine.covered_set(clause, &examples, Prior::None))
                .collect();
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");

    assert_eq!(
        batched_sets, sequential_sets,
        "batched and sequential scoring disagree"
    );
    let speedup = sequential_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.5,
        "batched beam scoring must beat one-clause-at-a-time by ≥1.5×, got {speedup:.2}× \
         (batched {batched_time:?}, sequential {sequential_time:?})"
    );

    // The win must come from sharing, not from skipping work: the trie path
    // ran, saved prefix probes, and forked per-candidate suffixes.
    let report = batched_engine.report();
    assert!(report.batches >= 1, "trie path not taken: {report}");
    assert!(
        report.batch_prefix_hits > 0,
        "no shared prefix probes: {report}"
    );
    assert!(
        report.batch_suffix_forks > 0,
        "no per-candidate suffix forks: {report}"
    );
    assert_eq!(report.budget_exhausted, 0, "budget too small for guard db");
}

/// `coverage_counts_batch` fuses the positive and negative passes into one
/// trie walk over the concatenated example list; this guard pins the fused
/// counts to the classic two-pass reference on the same beam workload.
#[test]
fn fused_scoring_counts_match_two_separate_passes() {
    let family = generate(&UwCseConfig {
        students: 60,
        professors: 12,
        courses: 20,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    let beam = beam_candidate_batch(variant, 12);
    let positive = variant.task.positive.clone();
    let negative = variant.task.negative.clone();

    let fused_engine = Engine::from_arc(
        Arc::clone(&variant.db),
        EngineConfig::default().without_cache(),
    );
    let fused = fused_engine.coverage_counts_batch(&beam, &positive, &negative);

    let two_pass_engine = Engine::from_arc(
        Arc::clone(&variant.db),
        EngineConfig::default().without_cache(),
    );
    let pos_sets = two_pass_engine.covered_sets_batch(&beam, &positive);
    let neg_sets = two_pass_engine.covered_sets_batch(&beam, &negative);

    for (i, ((counts, pos), neg)) in fused.iter().zip(&pos_sets).zip(&neg_sets).enumerate() {
        assert_eq!(
            (counts.positive, counts.negative),
            (pos.len(), neg.len()),
            "fused and two-pass counts diverged on clause {i}"
        );
    }
    // The fused pass submits the beam once; the reference submitted it
    // twice — and both walked the trie, so the fusion halved dispatches.
    assert_eq!(fused_engine.report().batch_clauses, beam.len());
    assert_eq!(two_pass_engine.report().batch_clauses, beam.len() * 2);
    assert!(fused_engine.report().batches >= 1);
}
