//! Property-style tests for the `castor-engine` subsystem: engine-based
//! coverage must agree with the direct database semantics
//! (`castor_logic::covers_example`) on randomly generated clauses and
//! example tuples, and the parallel worker-pool path must agree with the
//! sequential one.

use castor_datasets::synthetic::{random_definition, RandomDefinitionConfig};
use castor_datasets::uwcse;
use castor_engine::{CostModelKind, Engine, EngineConfig, Prior};
use castor_logic::{covers_example, Clause};
use castor_relational::{DatabaseInstance, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The Denormalized-2 UW-CSE schema: the widest relations, which makes the
/// random clauses join-heavy.
fn schema() -> Schema {
    let original = uwcse::original_schema();
    uwcse::to_denormalized2(&original).apply_schema(&original)
}

/// A random instance of `schema`: every relation gets `rows` tuples over a
/// small shared constant pool, so joins actually connect.
fn random_instance(schema: &Schema, rows: usize, rng: &mut StdRng) -> DatabaseInstance {
    let mut db = DatabaseInstance::empty(schema);
    let pool: Vec<String> = (0..12).map(|i| format!("c{i}")).collect();
    for relation in schema.relations() {
        for _ in 0..rows {
            let tuple = Tuple::new(
                (0..relation.arity())
                    .map(|_| Value::str(pool[rng.gen_range(0..pool.len())].clone()))
                    .collect::<Vec<_>>(),
            );
            db.insert(relation.name(), tuple).expect("schema relation");
        }
    }
    db
}

/// Random candidate example tuples for a clause head of the given arity.
fn random_examples(arity: usize, count: usize, rng: &mut StdRng) -> Vec<Tuple> {
    (0..count)
        .map(|_| {
            Tuple::new(
                (0..arity)
                    .map(|_| Value::str(format!("c{}", rng.gen_range(0..12))))
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Random clauses shaped like learner candidates, drawn through the
/// dataset crate's generator plus their ARMG-style prefixes.
fn random_clauses(schema: &Schema, seed: u64) -> Vec<Clause> {
    let mut out = Vec::new();
    for (i, vars) in (4..=7).enumerate() {
        let def = random_definition(
            schema,
            "target",
            &RandomDefinitionConfig {
                clauses: 2,
                variables_per_clause: vars,
                target_arity: 2,
                seed: seed + i as u64,
            },
        );
        for clause in def.clauses {
            for len in 1..=clause.body.len() {
                let mut prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
                prefix.remove_unconnected();
                out.push(prefix);
            }
        }
    }
    out
}

#[test]
fn engine_coverage_agrees_with_database_semantics() {
    let schema = schema();
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let db = random_instance(&schema, 25, &mut rng);
        let engine = Engine::new(&db, EngineConfig::default());
        let clauses = random_clauses(&schema, 7 * seed);
        let examples = random_examples(2, 20, &mut rng);
        for clause in &clauses {
            for example in &examples {
                assert_eq!(
                    engine.covers(clause, example),
                    covers_example(clause, &db, example),
                    "seed {seed}: engine disagrees with covers_example on \
                     clause `{clause}` and example {example}"
                );
            }
        }
        // The report must account for real work without budget exhaustion
        // (otherwise the equivalence above would be vacuous).
        let report = engine.report();
        assert!(report.coverage_tests > 0);
        assert_eq!(report.budget_exhausted, 0, "budget too small for test db");
    }
}

#[test]
fn histogram_cost_model_never_changes_coverage_results() {
    // The cost model only changes plan order and statistics — never
    // verdicts. Per-clause and batched scoring over seeded-random clauses
    // must agree exactly between the histogram default and the uniform
    // baseline (budgets generous enough that no side exhausts, which keeps
    // verdicts order-independent).
    let schema = schema();
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let db = random_instance(&schema, 25, &mut rng);
        let histogram = Engine::new(&db, EngineConfig::default());
        let uniform = Engine::new(&db, EngineConfig::default().with_uniform_costs());
        assert_eq!(histogram.config().cost_model, CostModelKind::Histogram);
        assert_eq!(uniform.config().cost_model, CostModelKind::Uniform);
        let clauses = random_clauses(&schema, 19 * seed);
        let examples = random_examples(2, 20, &mut rng);
        for clause in &clauses {
            assert_eq!(
                histogram.covered_set(clause, &examples, Prior::None),
                uniform.covered_set(clause, &examples, Prior::None),
                "seed {seed}: cost models disagree on `{clause}`"
            );
        }
        // The batched trie path agrees too (fresh engines so nothing is
        // answered from the memo cache).
        let hist_batch = Engine::new(&db, EngineConfig::default());
        let uni_batch = Engine::new(&db, EngineConfig::default().with_uniform_costs());
        assert_eq!(
            hist_batch.covered_sets_batch(&clauses, &examples),
            uni_batch.covered_sets_batch(&clauses, &examples),
            "seed {seed}: batched cost models disagree"
        );
        for engine in [&histogram, &uniform, &hist_batch, &uni_batch] {
            assert_eq!(
                engine.report().budget_exhausted,
                0,
                "budget too small for the equivalence to be meaningful"
            );
        }
    }
}

#[test]
fn parallel_and_sequential_engine_paths_agree() {
    let schema = schema();
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let db = random_instance(&schema, 25, &mut rng);
        let sequential = Engine::new(&db, EngineConfig::default());
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let clauses = random_clauses(&schema, 31 * seed);
        let examples = random_examples(2, 48, &mut rng);
        for clause in &clauses {
            let seq: HashSet<Tuple> = sequential.covered_set(clause, &examples, Prior::None);
            let par: HashSet<Tuple> = parallel.covered_set(clause, &examples, Prior::None);
            assert_eq!(
                seq, par,
                "seed {seed}: worker-pool path diverged on clause `{clause}`"
            );
        }
    }
}

#[test]
fn batched_beam_scoring_matches_per_clause_results() {
    // coverage_counts_batch / covered_sets_batch over seeded-random clause
    // beams must produce exactly the per-clause covered_set results. The
    // random clause list mixes prefixes of several definitions, so one
    // batch holds genuine sibling groups (shared prefixes) alongside
    // unrelated candidates — both trie sharing and the per-clause fallback
    // are exercised in the same call.
    let schema = schema();
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let db = random_instance(&schema, 25, &mut rng);
        let batched = Engine::new(&db, EngineConfig::default());
        let solo = Engine::new(&db, EngineConfig::default());
        let beam = random_clauses(&schema, 11 * seed);
        let examples = random_examples(2, 20, &mut rng);
        let sets = batched.covered_sets_batch(&beam, &examples);
        assert_eq!(sets.len(), beam.len());
        for (clause, set) in beam.iter().zip(&sets) {
            assert_eq!(
                set,
                &solo.covered_set(clause, &examples, Prior::None),
                "seed {seed}: batch diverged from per-clause scoring on `{clause}`"
            );
            // And against the direct database semantics.
            let reference: HashSet<Tuple> = examples
                .iter()
                .filter(|e| covers_example(clause, &db, e))
                .cloned()
                .collect();
            assert_eq!(
                set, &reference,
                "seed {seed}: batch diverged from covers_example on `{clause}`"
            );
        }
        let report = batched.report();
        assert_eq!(report.budget_exhausted, 0, "budget too small for test db");
        assert!(report.batches >= 1, "no trie group formed: {report}");
        // Batched and per-clause parallel paths agree too.
        let parallel = Engine::new(&db, EngineConfig::default().with_threads(4));
        let many: Vec<Tuple> = examples.iter().cycle().take(60).cloned().collect();
        assert_eq!(
            parallel.covered_sets_batch(&beam, &many),
            Engine::new(&db, EngineConfig::default()).covered_sets_batch(&beam, &many)
        );
    }
}

#[test]
fn batched_scoring_under_tight_budgets_stays_sound() {
    // Mixed budget/exhaustion outcomes: under any budget the batched path
    // may miss coverage (false negatives are the documented budget
    // semantics) but must never invent it, must count its exhaustions, and
    // with a zero budget must report every candidate as uncovered exactly
    // like the per-clause path does.
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(5000);
    let db = random_instance(&schema, 25, &mut rng);
    let beam = random_clauses(&schema, 13);
    let examples = random_examples(2, 16, &mut rng);
    let ample = Engine::new(&db, EngineConfig::default());
    let truth = ample.covered_sets_batch(&beam, &examples);
    assert_eq!(ample.report().budget_exhausted, 0);

    for budget in [0usize, 1, 8, 64] {
        let starved = Engine::new(&db, EngineConfig::default().with_eval_budget(budget));
        let sets = starved.covered_sets_batch(&beam, &examples);
        for ((clause, set), full) in beam.iter().zip(&sets).zip(&truth) {
            assert!(
                set.is_subset(full),
                "budget {budget}: batch invented coverage on `{clause}`"
            );
        }
        if budget == 0 {
            // With no nodes to spend, neither path explores a single tuple:
            // only empty-bodied candidates (head-binding decides) can be
            // covered, and the batched verdicts match per-clause verdicts
            // exactly.
            let solo = Engine::new(&db, EngineConfig::default().with_eval_budget(0));
            for (clause, set) in beam.iter().zip(&sets) {
                assert_eq!(
                    set,
                    &solo.covered_set(clause, &examples, Prior::None),
                    "zero-budget batch diverged on `{clause}`"
                );
                assert!(set.is_empty() || clause.body.is_empty());
            }
            assert!(
                starved.report().budget_exhausted > 0,
                "zero budget must be reported as exhaustion"
            );
        }
    }
}

#[test]
fn batched_priors_match_scoring_from_scratch() {
    // The generality order through the batched path: scoring children with
    // Prior::GeneralizationOf(parent) must equal scoring them from scratch
    // whenever the children really are more general (body prefixes).
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(6000);
    let db = random_instance(&schema, 25, &mut rng);
    let engine = Engine::new(&db, EngineConfig::default());
    let fresh = Engine::new(&db, EngineConfig::default());
    let examples = random_examples(2, 20, &mut rng);
    for clause in random_clauses(&schema, 17) {
        if clause.body.len() < 2 {
            continue;
        }
        let mut child = Clause::new(
            clause.head.clone(),
            clause.body[..clause.body.len() - 1].to_vec(),
        );
        child.remove_unconnected();
        engine.covered_set(&clause, &examples, Prior::None);
        let beam = vec![child.clone()];
        let priors = vec![Prior::GeneralizationOf(&clause)];
        let with_prior = engine.covered_sets_batch_with_priors(&beam, &priors, &examples);
        let from_scratch = fresh.covered_sets_batch(&beam, &examples);
        assert_eq!(
            with_prior, from_scratch,
            "batched prior changed semantics on `{child}`"
        );
    }
}

#[test]
fn generality_prior_never_invents_coverage() {
    // Soundness of the generality-order shortcut: a covered_set computed
    // with Prior::GeneralizationOf(parent) must equal the one computed from
    // scratch whenever the child really is more general (here: a prefix of
    // the parent's body, which can only cover more).
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(3000);
    let db = random_instance(&schema, 25, &mut rng);
    let engine = Engine::new(&db, EngineConfig::default());
    let fresh = Engine::new(&db, EngineConfig::default());
    let examples = random_examples(2, 20, &mut rng);
    for clause in random_clauses(&schema, 5) {
        if clause.body.len() < 2 {
            continue;
        }
        let mut child = Clause::new(
            clause.head.clone(),
            clause.body[..clause.body.len() - 1].to_vec(),
        );
        child.remove_unconnected();
        engine.covered_set(&clause, &examples, Prior::None);
        let with_prior = engine.covered_set(&child, &examples, Prior::GeneralizationOf(&clause));
        let from_scratch = fresh.covered_set(&child, &examples, Prior::None);
        assert_eq!(
            with_prior, from_scratch,
            "prior changed semantics on `{child}`"
        );
    }
}
