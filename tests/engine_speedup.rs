//! Acceptance guard for the engine's coverage cache and compiled plans.
//! The ≥5× claim is *measured* by the Criterion bench in
//! `castor-bench/benches/micro.rs` (release mode, warm-up, sized
//! iteration counts); this test pins the same workload in CI with a
//! deliberately generous wall-clock floor — shared runners jitter, and a
//! timing flake must not fail unrelated PRs — plus counter-based
//! assertions that the speedup really comes from the cache.

use castor_bench::coverage_candidate_sequence;
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_engine::{Engine, EngineConfig, Prior};
use castor_logic::covers_example;
use castor_relational::Tuple;
use std::time::Instant;

#[test]
fn cached_coverage_outpaces_uncached_baseline() {
    // A larger-than-default instance so one uncached coverage pass costs
    // what it does in a real run; the engine's fixed per-call overhead
    // (canonicalization + cache probe) is then noise.
    let family = generate(&UwCseConfig {
        students: 120,
        professors: 25,
        courses: 40,
        ..Default::default()
    });
    let variant = family.variant("Original").unwrap();
    // Same workload as the Criterion bench (shared helper).
    let candidates = coverage_candidate_sequence(variant);
    let examples: Vec<Tuple> = variant
        .task
        .positive
        .iter()
        .chain(variant.task.negative.iter())
        .cloned()
        .collect();

    const ROUNDS: usize = 12;
    // Each side is measured three times and the minimum kept: wall-clock
    // assertions in shared CI are vulnerable to scheduler jitter, and the
    // minimum is the standard de-noised estimate for a deterministic loop.
    const MEASUREMENTS: usize = 3;

    let engine = Engine::from_arc(std::sync::Arc::clone(&variant.db), EngineConfig::default());
    let mut engine_total = 0usize;
    let engine_time = (0..MEASUREMENTS)
        .map(|_| {
            engine_total = 0;
            let start = Instant::now();
            for _ in 0..ROUNDS {
                for clause in &candidates {
                    engine_total += engine.covered_set(clause, &examples, Prior::None).len();
                }
            }
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");

    let mut baseline_total = 0usize;
    let baseline_time = (0..MEASUREMENTS)
        .map(|_| {
            baseline_total = 0;
            let start = Instant::now();
            for _ in 0..ROUNDS {
                for clause in &candidates {
                    baseline_total += examples
                        .iter()
                        .filter(|e| covers_example(clause, &variant.db, e))
                        .count();
                }
            }
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");

    assert_eq!(engine_total, baseline_total, "engine and baseline disagree");
    // Locally this measures ≥5× (see the Criterion bench); the CI floor is
    // 2× so scheduler jitter on shared runners cannot flake the suite.
    let speedup = baseline_time.as_secs_f64() / engine_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "engine must clearly outpace the uncached baseline, got {speedup:.1}× \
         (engine {engine_time:?}, baseline {baseline_time:?})"
    );
    // The speedup must come from the cache actually being hit: after the
    // first round every (clause, example) pair is a hit, so hits dwarf
    // misses by an order of magnitude.
    let report = engine.report();
    assert!(
        report.cache_hits >= 10 * report.cache_misses.max(1),
        "cache behavior off: {report}"
    );
}
