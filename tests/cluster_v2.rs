//! Acceptance tests for protocol v2 (negotiation, streaming, flow
//! control) and the castor-cluster router (routing, metrics, trace
//! stitching across servers).

use castor::cluster::{ClusterConfig, Router};
use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
use castor::rpc::{
    ClientConfig, ErrorCode, Request, Response, RpcClient, RpcConfig, RpcError, RpcServer,
    StreamBody, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2,
};
use castor::service::{LearnAlgorithm, LearnJob, Server, ServerConfig};
use castor_learners::{LearnerParams, LearningTask};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn demo_rpc(config: RpcConfig) -> RpcServer {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    RpcServer::bind(service, "127.0.0.1:0", config).unwrap()
}

/// A database whose target needs two covering rounds: `q` explains half
/// the positives, `r` the other half, so any covering learner accepts
/// two clauses — and a v2 learn streams (at least) two progress frames.
fn two_round_db() -> DatabaseInstance {
    let mut schema = Schema::new("rounds");
    schema.add_relation(RelationSymbol::new("q", &["x"]));
    schema.add_relation(RelationSymbol::new("r", &["x"]));
    schema.add_relation(RelationSymbol::new("s", &["x"]));
    let mut db = DatabaseInstance::empty(&schema);
    for v in ["a1", "a2"] {
        db.insert("q", Tuple::from_strs(&[v])).unwrap();
    }
    for v in ["b1", "b2"] {
        db.insert("r", Tuple::from_strs(&[v])).unwrap();
    }
    db.insert("s", Tuple::from_strs(&["z1"])).unwrap();
    db
}

fn two_round_task() -> (LearningTask, LearnAlgorithm) {
    let task = LearningTask::new(
        "t",
        1,
        vec![
            Tuple::from_strs(&["a1"]),
            Tuple::from_strs(&["a2"]),
            Tuple::from_strs(&["b1"]),
            Tuple::from_strs(&["b2"]),
        ],
        vec![Tuple::from_strs(&["z1"])],
    );
    let algorithm = LearnAlgorithm::Progol(LearnerParams {
        allow_constants: false,
        ..LearnerParams::default()
    });
    (task, algorithm)
}

#[test]
fn v1_and_v2_negotiate_and_produce_identical_results() {
    let examples = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["ann", "carol"]),
        Tuple::from_strs(&["eve", "eve"]),
    ];
    // In-process reference.
    let reference = Server::new(ServerConfig::default());
    reference.register("demo", Arc::new(demo_db())).unwrap();
    let expected = reference
        .session("demo")
        .unwrap()
        .covered_sets(vec![collaborated()], examples.clone())
        .unwrap();

    // v2 server: a default client negotiates v2, a pinned client speaks
    // v1 — results identical either way.
    let v2_server = demo_rpc(RpcConfig::default());
    let mut negotiated = RpcClient::connect(v2_server.local_addr(), "demo").unwrap();
    assert_eq!(negotiated.protocol_version(), PROTOCOL_V2);
    assert_eq!(
        negotiated
            .covered_sets(vec![collaborated()], examples.clone())
            .unwrap(),
        expected
    );
    let mut v1_pinned = RpcClient::connect_config(
        v2_server.local_addr(),
        "demo",
        &ClientConfig::default().with_protocol_version(PROTOCOL_V1),
    )
    .unwrap();
    assert_eq!(v1_pinned.protocol_version(), PROTOCOL_V1);
    assert_eq!(
        v1_pinned
            .covered_sets(vec![collaborated()], examples.clone())
            .unwrap(),
        expected
    );

    // v1-only server (a pre-v2 deployment): a default client's first
    // attempt is refused with UnsupportedVersion and it falls back to v1
    // transparently.
    let v1_server = demo_rpc(RpcConfig::default().with_max_protocol_version(PROTOCOL_V1));
    let mut fallback = RpcClient::connect(v1_server.local_addr(), "demo").unwrap();
    assert_eq!(fallback.protocol_version(), PROTOCOL_V1);
    assert_eq!(
        fallback
            .covered_sets(vec![collaborated()], examples.clone())
            .unwrap(),
        expected
    );
    // A client *pinned* to v2 must get the typed refusal, not garbage.
    let err = RpcClient::connect_config(
        v1_server.local_addr(),
        "demo",
        &ClientConfig::default().with_protocol_version(PROTOCOL_V2),
    )
    .unwrap_err();
    assert!(
        matches!(
            &err,
            RpcError::Remote {
                code: ErrorCode::UnsupportedVersion,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn learn_over_v2_streams_progress_frames_before_the_result() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register("rounds", Arc::new(two_round_db()))
        .unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();
    let (task, algorithm) = two_round_task();

    // In-process reference definition.
    let expected = service
        .session("rounds")
        .unwrap()
        .learn(LearnJob::new(task.clone(), algorithm.clone()))
        .unwrap();
    assert!(expected.len() >= 2, "task must need two covering rounds");

    // v2: per-round progress frames stream ahead of the terminal result.
    let mut v2 = RpcClient::connect(rpc.local_addr(), "rounds").unwrap();
    let (definition, progress) = v2
        .learn_with_progress(task.clone(), algorithm.clone())
        .unwrap();
    assert_eq!(definition, expected);
    assert!(
        progress.len() >= 2,
        "expected >= 2 streamed progress frames, got {}",
        progress.len()
    );
    for (i, p) in progress.iter().enumerate() {
        assert_eq!(p.round, i, "progress rounds must arrive in order");
        assert!(p.covered_positive > 0);
        assert_eq!(&definition.clauses[i], &p.clause);
    }
    assert_eq!(progress.last().unwrap().uncovered_remaining, 0);

    // v1 carries no stream frames: same definition, empty progress.
    let mut v1 = RpcClient::connect_config(
        rpc.local_addr(),
        "rounds",
        &ClientConfig::default().with_protocol_version(PROTOCOL_V1),
    )
    .unwrap();
    let (v1_definition, v1_progress) = v1.learn_with_progress(task, algorithm).unwrap();
    assert_eq!(v1_definition, expected);
    assert!(v1_progress.is_empty());
}

/// A raw-TCP "server" that completes a v2 handshake and then answers the
/// first request with whatever frames `respond` writes. Used to aim
/// malformed stream chunks at the client decoder.
fn fake_v2_server(
    respond: impl FnOnce(&mut TcpStream, u64) + Send + 'static,
) -> std::net::SocketAddr {
    use castor::rpc::frame::{read_request_versioned, write_response_v};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let (hello_id, version, _) =
            read_request_versioned(&mut stream, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V2).unwrap();
        assert_eq!(version, PROTOCOL_V2);
        write_response_v(&mut stream, PROTOCOL_V2, hello_id, &Response::HelloOk).unwrap();
        let (request_id, _, _) = loop {
            let parsed =
                read_request_versioned(&mut stream, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_V2).unwrap();
            // Skip credit grants the client may interleave.
            if !matches!(parsed.2, Request::StreamCredit { .. }) {
                break parsed;
            }
        };
        respond(&mut stream, request_id);
        // Linger briefly so the client reads the frames before FIN.
        std::thread::sleep(Duration::from_millis(100));
    });
    addr
}

#[test]
fn malformed_stream_chunks_fail_typed_and_close_cleanly() {
    use castor::rpc::frame::write_response_v;

    // Out-of-order sequence number: typed Malformed error client-side.
    let addr = fake_v2_server(|stream, id| {
        write_response_v(
            stream,
            PROTOCOL_V2,
            id,
            &Response::Stream {
                seq: 5, // must start at 0
                last: false,
                body: StreamBody::CoveredChunk(vec![std::collections::HashSet::new()]),
            },
        )
        .unwrap();
    });
    let mut client = RpcClient::connect(addr, "demo").unwrap();
    let err = client
        .covered_sets(vec![collaborated()], vec![Tuple::from_strs(&["a", "b"])])
        .unwrap_err();
    assert!(
        matches!(&err, RpcError::Malformed(m) if m.contains("out of order")),
        "{err}"
    );

    // A progress frame claiming to be terminal: Malformed (progress
    // streams end with the job's Learned/Error frame, never `last`).
    let addr = fake_v2_server(|stream, id| {
        write_response_v(
            stream,
            PROTOCOL_V2,
            id,
            &Response::Stream {
                seq: 0,
                last: true,
                body: StreamBody::Progress(castor::engine::LearnProgress {
                    round: 0,
                    clause: collaborated(),
                    covered_positive: 1,
                    covered_negative: 0,
                    uncovered_remaining: 0,
                }),
            },
        )
        .unwrap();
    });
    let mut client = RpcClient::connect(addr, "demo").unwrap();
    let err = client
        .covered_sets(vec![collaborated()], vec![Tuple::from_strs(&["a", "b"])])
        .unwrap_err();
    assert!(matches!(&err, RpcError::Malformed(_)), "{err}");

    // A stream frame truncated mid-payload (length prefix promises more
    // than arrives before FIN): clean Io error, no hang.
    let addr = fake_v2_server(|stream, _| {
        use std::io::Write;
        stream.write_all(&64u32.to_le_bytes()).unwrap();
        stream.write_all(&[PROTOCOL_V2, 0x8a, 0, 0]).unwrap();
    });
    let mut client = RpcClient::connect(addr, "demo").unwrap();
    let err = client
        .covered_sets(vec![collaborated()], vec![Tuple::from_strs(&["a", "b"])])
        .unwrap_err();
    assert!(
        matches!(&err, RpcError::Io(_) | RpcError::Timeout(_)),
        "{err}"
    );
}

#[test]
fn zero_credit_client_never_starves_other_sessions() {
    let rpc = demo_rpc(RpcConfig::default());
    // Client A grants the server zero stream credit and never replenishes:
    // the server's writer for A blocks on the first covered chunk.
    let mut starved = RpcClient::connect_config(
        rpc.local_addr(),
        "demo",
        &ClientConfig::default().with_stream_credit(0),
    )
    .unwrap();
    assert_eq!(starved.protocol_version(), PROTOCOL_V2);
    let _stuck = starved
        .submit(Request::Coverage {
            clauses: vec![collaborated()],
            examples: vec![Tuple::from_strs(&["ann", "bob"])],
            deadline_ms: None,
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Flow control is per connection: client B is unaffected.
    let mut healthy = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let start = Instant::now();
    let sets = healthy
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap();
    assert_eq!(sets[0].len(), 1);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "another session's stalled stream blocked this one"
    );

    // Dropping the starved client unwedges its writer (credit closes on
    // teardown) and the session is reclaimed — nothing leaks.
    drop(starved);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if rpc.service().server_report().sessions_active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "starved session was never reclaimed after disconnect"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Builds `members` loopback servers all serving the same database names
/// (schema-registered, empty) and a router over them.
fn cluster(members: usize, databases: &[&str]) -> (Vec<RpcServer>, Router) {
    let schema = demo_db().schema().clone();
    let mut servers = Vec::with_capacity(members);
    let mut addrs = Vec::with_capacity(members);
    for i in 0..members {
        let service = Arc::new(Server::new(ServerConfig::default()));
        for db in databases {
            service
                .register(*db, Arc::new(DatabaseInstance::empty(&schema)))
                .unwrap();
        }
        let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
        addrs.push((format!("member-{i}"), rpc.local_addr()));
        servers.push(rpc);
    }
    let router = Router::new(addrs, ClusterConfig::default());
    for db in databases {
        router.register(db, &demo_db()).unwrap();
    }
    (servers, router)
}

#[test]
fn router_stitches_traces_across_two_servers() {
    // Enough databases that both members own at least one (placement is
    // deterministic, so this partition is stable across runs).
    let names: Vec<String> = (0..8).map(|i| format!("db-{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let (servers, router) = cluster(2, &name_refs);

    let mut seen_members = std::collections::HashSet::new();
    for db in &name_refs {
        let session = router.session(db).unwrap();
        let sets = session
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
        assert_eq!(sets[0].len(), 1);

        // The router minted a trace id for the request and forwarded it
        // as the frame request id; the owning server recorded its spans
        // under exactly that id.
        let trace = router.last_trace();
        assert_ne!(trace & (1 << 63), 0, "minted trace ids carry the high bit");
        let owner = session.owner().unwrap();
        let member_index: usize = owner.strip_prefix("member-").unwrap().parse().unwrap();
        let dump = servers[member_index].service().trace_json();
        let needle = format!("{trace:#x}");
        assert!(
            dump.contains(&needle),
            "server {owner} has no span under forwarded trace {needle}"
        );
        seen_members.insert(owner);
    }
    assert_eq!(
        seen_members.len(),
        2,
        "expected both members to own at least one database"
    );
}

#[test]
fn router_metrics_expose_requests_health_and_rebalances() {
    let names: Vec<String> = (0..8).map(|i| format!("db-{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    // Three servers up front; the router starts with two and later
    // adopts the third (its databases are already schema-registered).
    let schema = demo_db().schema().clone();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3 {
        let service = Arc::new(Server::new(ServerConfig::default()));
        for db in &name_refs {
            service
                .register(*db, Arc::new(DatabaseInstance::empty(&schema)))
                .unwrap();
        }
        let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
        addrs.push((format!("member-{i}"), rpc.local_addr()));
        servers.push(rpc);
    }
    let router = Router::new(addrs[..2].to_vec(), ClusterConfig::default());
    for db in &name_refs {
        router.register(db, &demo_db()).unwrap();
    }
    for db in &name_refs {
        router
            .session(db)
            .unwrap()
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
    }

    let before = router.metrics_text();
    assert!(
        before.contains("castor_router_requests_total{member=\"member-0\"}")
            || before.contains("castor_router_requests_total{member=\"member-1\"}"),
        "missing per-member request counters:\n{before}"
    );
    assert!(
        before.contains("castor_router_member_healthy"),
        "missing member health gauge:\n{before}"
    );
    assert!(
        before.contains("castor_router_rebalance_moves_total 0"),
        "rebalance counter should start at zero:\n{before}"
    );

    // Adopting member-2 moves roughly a third of the keyspace.
    let report = router.add_member("member-2", addrs[2].1).unwrap();
    assert!(report.moves > 0, "8 databases, no move: {report:?}");
    assert!(report.replayed_tuples >= report.moves * 5); // demo_db has 5 tuples
    let after = router.metrics_text();
    assert!(
        after.contains(&format!(
            "castor_router_rebalance_moves_total {}",
            report.moves
        )),
        "rebalance counter must match the report ({report:?}):\n{after}"
    );

    // Epoch advanced exactly once for the membership change.
    assert_eq!(router.epoch().load(std::sync::atomic::Ordering::SeqCst), 1);

    // Every database still answers identically after the move.
    for db in &name_refs {
        let sets = router
            .session(db)
            .unwrap()
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])],
            )
            .unwrap();
        assert_eq!(sets[0].len(), 1);
    }
    drop(servers);
}

/// The router's scrape endpoint speaks the member framing, so a stock
/// `RpcClient` fetches the router's own metrics and traces over the
/// wire — and job frames come back as typed `Protocol` errors instead
/// of hanging or corrupting the stream.
#[test]
fn router_scrape_endpoint_serves_member_frames() {
    let (servers, router) = cluster(2, &["demo"]);
    router
        .session("demo")
        .unwrap()
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap();

    let endpoint = router.bind_metrics("127.0.0.1:0").unwrap();
    // The database name in the Hello is ignored: the endpoint serves the
    // router itself, not a tenant.
    let mut scraper = RpcClient::connect(endpoint.local_addr(), "whatever").unwrap();

    let metrics = scraper.metrics().unwrap();
    assert!(
        metrics.contains("castor_router_requests_total"),
        "wire scrape must match Router::metrics_text content:\n{metrics}"
    );
    assert!(
        metrics.contains("castor_router_member_healthy"),
        "missing member health gauge in wire scrape:\n{metrics}"
    );

    // The wire trace dump is the router's own span ring rendered as
    // Chrome-trace JSON (the router mints trace ids for proxied work
    // but spans land on the member; its own ring holds router-local
    // spans only — possibly none).
    let dump = scraper.trace_dump().unwrap();
    assert_eq!(
        dump,
        router.obs().trace_json(),
        "wire trace dump must be the router's own span ring"
    );

    // Job frames are refused with a typed error; the connection closes
    // (poisoned framing on the scrape side), so the next call fails IO.
    let err = scraper
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap_err();
    match err {
        RpcError::Remote { code, message, .. } => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(message.contains("Metrics and TraceDump"), "{message}");
        }
        other => panic!("expected a typed Protocol error, got {other:?}"),
    }

    // Dropping the endpoint stops the acceptor: fresh connects are
    // refused or die on the handshake.
    let addr = endpoint.local_addr();
    drop(endpoint);
    assert!(
        RpcClient::connect(addr, "whatever").is_err(),
        "scrape endpoint still answering after drop"
    );
    drop(servers);
}
