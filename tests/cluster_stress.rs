//! Cluster stress acceptance test (run in release mode in CI): three
//! servers behind a router, concurrent mutations and coverage jobs, and
//! a membership change in the middle of the workload. Afterwards the
//! cluster must answer every query exactly like a single in-process
//! server over the router's mirror — which pins both routing
//! determinism and "no acknowledged mutation was lost".

use castor::cluster::{ClusterConfig, Router};
use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{RpcConfig, RpcServer};
use castor::service::{Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const DB: &str = "stress";
const WRITERS: usize = 2;
const READERS: usize = 2;
const ROUNDS: usize = 25;

fn schema() -> Schema {
    let mut schema = Schema::new(DB);
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    schema
}

fn initial_db() -> DatabaseInstance {
    let mut db = DatabaseInstance::empty(&schema());
    for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol")] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn member_server() -> RpcServer {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register(DB, Arc::new(DatabaseInstance::empty(&schema())))
        .unwrap();
    RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap()
}

#[test]
fn cluster_survives_concurrent_workload_with_a_membership_change() {
    // Three servers; the router starts on two and adopts the third while
    // writers and readers are hammering it.
    let servers: Vec<RpcServer> = (0..3).map(|_| member_server()).collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let router = Arc::new(Router::new(
        vec![
            ("member-0".to_string(), addrs[0]),
            ("member-1".to_string(), addrs[1]),
        ],
        ClusterConfig::default(),
    ));
    router.register(DB, &initial_db()).unwrap();

    let mut threads = Vec::new();
    for w in 0..WRITERS {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || {
            let session = router.session(DB).unwrap();
            for r in 0..ROUNDS {
                let title = format!("w{w}-r{r}");
                let batch = MutationBatch::new()
                    .insert("publication", Tuple::from_strs(&[&title, "ann"]))
                    .insert("publication", Tuple::from_strs(&[&title, "dan"]));
                let summary = session.apply(batch).expect("acknowledged apply");
                assert_eq!(summary.inserted, 2);
            }
        }));
    }
    for _ in 0..READERS {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || {
            let session = router.session(DB).unwrap();
            for _ in 0..ROUNDS {
                let sets = session
                    .covered_sets(
                        vec![collaborated()],
                        vec![
                            Tuple::from_strs(&["ann", "bob"]),
                            Tuple::from_strs(&["ann", "dan"]),
                        ],
                    )
                    .expect("coverage routes through the current owner");
                // ann/bob collaborate in the seed data; results only grow.
                assert!(!sets[0].is_empty());
            }
        }));
    }

    // Membership change mid-run: adopt member-2 while jobs are in flight.
    std::thread::sleep(Duration::from_millis(50));
    let report = router
        .add_member("member-2", addrs[2])
        .expect("rebalance during live traffic");
    let epoch_after = router.epoch().load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(epoch_after, 1, "one membership change, one epoch bump");

    for t in threads {
        t.join().expect("workload thread panicked");
    }

    // Routing stayed deterministic: the owner after the dust settles is
    // what a fresh ring over {member-0,1,2} computes, and asking twice
    // gives the same answer.
    let owner = router.owner_of(DB).expect("registered database");
    assert_eq!(router.owner_of(DB).unwrap(), owner);
    if report.moves > 0 {
        assert_eq!(report.moves, 1, "only one database exists to move");
        assert!(report.replayed_tuples > 0);
    }

    // No acknowledged mutation lost: the mirror holds the seed plus every
    // acknowledged insert...
    let mirror = router.mirror(DB).unwrap();
    assert_eq!(
        mirror.total_tuples(),
        3 + WRITERS * ROUNDS * 2,
        "mirror is missing acknowledged mutations"
    );

    // ...and the live cluster answers exactly like a single in-process
    // server over that mirror, so the owner's replayed/mutated content
    // matches the acknowledged history tuple-for-tuple.
    let single = Server::new(ServerConfig::default());
    single.register(DB, Arc::new(mirror)).unwrap();
    let reference = single.session(DB).unwrap();
    let session = router.session(DB).unwrap();
    let queries = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["ann", "dan"]),
        Tuple::from_strs(&["dan", "ann"]),
        Tuple::from_strs(&["carol", "dan"]),
        Tuple::from_strs(&["eve", "eve"]),
    ];
    let over_cluster = session
        .covered_sets(vec![collaborated()], queries.clone())
        .unwrap();
    let over_mirror = reference
        .covered_sets(vec![collaborated()], queries)
        .unwrap();
    assert_eq!(
        over_cluster, over_mirror,
        "cluster diverged from the single-server mirror after the membership change"
    );
}
