//! Acceptance guards for histogram-backed adaptive costing. The ≥1.3×
//! claim is *measured* by the Criterion bench `engine_adaptive_recosting`
//! in `castor-bench/benches/micro.rs` (release mode, warm-up, sized
//! iteration counts); this suite pins the same workload in CI:
//!
//! 1. on skewed data where the uniform selectivity estimate mis-orders the
//!    shared join prefix, the histogram cost model must beat the uniform
//!    baseline by the acceptance floor with *identical* coverage results;
//! 2. consecutive beam rounds must reuse the compiled shared-prefix trie
//!    (`batch_plan_cache_hits > 0`) and mutations must invalidate stale
//!    tries through their epoch stamps;
//! 3. feedback re-planning must rescue even the uniform model: observed
//!    candidate rows recost the plan (`plans_recosted`), with unchanged
//!    verdicts.

use castor_bench::skewed_costing_workload;
use castor_engine::{CostModelKind, Engine, EngineConfig, Prior};
use castor_relational::{MutationBatch, Tuple};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn histogram_costing_outpaces_uniform_on_skewed_data() {
    let workload = skewed_costing_workload();

    // Coverage caches off on both sides: the comparison is join ordering,
    // not memoization. The baseline also runs without feedback re-planning
    // — it is the pre-histogram engine.
    let histogram = Engine::from_arc(
        Arc::clone(&workload.db),
        EngineConfig::default().without_cache(),
    );
    let uniform = Engine::from_arc(
        Arc::clone(&workload.db),
        EngineConfig::default()
            .with_uniform_costs()
            .without_feedback_replanning()
            .without_cache(),
    );
    assert_eq!(histogram.config().cost_model, CostModelKind::Histogram);

    // Each side measured three times, minimum kept (standard de-noised
    // estimate for a deterministic loop on shared CI runners).
    const MEASUREMENTS: usize = 3;
    let mut hist_sets: Vec<HashSet<Tuple>> = Vec::new();
    let hist_time = (0..MEASUREMENTS)
        .map(|_| {
            let start = Instant::now();
            hist_sets = histogram.covered_sets_batch(&workload.beam, &workload.examples);
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");
    let mut uni_sets: Vec<HashSet<Tuple>> = Vec::new();
    let uni_time = (0..MEASUREMENTS)
        .map(|_| {
            let start = Instant::now();
            uni_sets = uniform.covered_sets_batch(&workload.beam, &workload.examples);
            start.elapsed()
        })
        .min()
        .expect("at least one measurement");

    // Identical coverage: the cost model only changes plan order/stats.
    assert_eq!(hist_sets, uni_sets, "cost models disagree on coverage");
    // Neither side exhausted a budget (exhaustion would make verdicts
    // order-dependent and the comparison vacuous).
    assert_eq!(histogram.report().budget_exhausted, 0);
    assert_eq!(uniform.report().budget_exhausted, 0);

    let speedup = uni_time.as_secs_f64() / hist_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.3,
        "histogram costing must beat uniform by ≥1.3× on skewed data, got {speedup:.2}× \
         (histogram {hist_time:?}, uniform {uni_time:?})"
    );
}

#[test]
fn consecutive_beam_rounds_reuse_tries_until_mutated() {
    let workload = skewed_costing_workload();
    let engine = Engine::from_arc(
        Arc::clone(&workload.db),
        EngineConfig::default().without_cache(),
    );

    // Round 1 compiles the trie.
    let round1_sets = engine.covered_sets_batch(&workload.beam, &workload.examples);
    let round1 = engine.report();
    assert!(
        round1.batch_plans_compiled >= 1,
        "no trie compiled: {round1}"
    );
    assert_eq!(round1.batch_plan_cache_hits, 0);

    // Round 2: the next beam round re-submits the surviving siblings (in
    // reversed order, as beam re-ranking does) — the trie is reused.
    let mut survivors = workload.beam.clone();
    survivors.reverse();
    let round2_sets = engine.covered_sets_batch(&survivors, &workload.examples);
    let round2 = engine.report();
    assert!(
        round2.batch_plan_cache_hits > 0,
        "consecutive rounds must hit the trie cache: {round2}"
    );
    assert_eq!(
        round2.batch_plans_compiled, round1.batch_plans_compiled,
        "round 2 recompiled a cached trie: {round2}"
    );
    // Slot mapping survived the reordering.
    let mut expected = round1_sets.clone();
    expected.reverse();
    assert_eq!(round2_sets, expected, "reused trie returned wrong slots");

    // A mutation of a relation the trie reads invalidates it via the
    // epoch stamps; the next round recompiles against fresh statistics.
    engine
        .apply(&MutationBatch::new().insert("mid", Tuple::from_strs(&["h0", "fresh"])))
        .unwrap();
    let round3_sets = engine.covered_sets_batch(&workload.beam, &workload.examples);
    let round3 = engine.report();
    assert!(
        round3.batch_plans_invalidated >= 1,
        "mutation did not invalidate the cached trie: {round3}"
    );
    assert!(round3.batch_plans_compiled > round2.batch_plans_compiled);
    // The recompiled trie agrees with a fresh engine on the mutated data.
    let fresh = Engine::from_arc(engine.snapshot(), EngineConfig::default());
    for (clause, set) in workload.beam.iter().zip(&round3_sets) {
        assert_eq!(
            set,
            &fresh.covered_set(clause, &workload.examples, Prior::None),
            "post-mutation trie diverged on `{clause}`"
        );
    }
}

#[test]
fn cached_tries_recost_from_observed_rows() {
    // Regression: cached `BatchPlan` tries used to recompile only on epoch
    // invalidation — a uniform-model mis-ordering survived every round.
    // Batch execution now records per-trie-node observed rows, and the
    // `BatchPlanCache` fetch recosts a diverging trie with the observed
    // numbers (counted in `plans_recosted`, like clause plans).
    let workload = skewed_costing_workload();
    let engine = Engine::from_arc(
        Arc::clone(&workload.db),
        EngineConfig::default().with_uniform_costs().without_cache(),
    );
    let reference = Engine::from_arc(Arc::clone(&workload.db), EngineConfig::default());

    // Round 1 compiles the (mis-ordered) trie and records feedback while
    // executing it.
    let round1 = engine.covered_sets_batch(&workload.beam, &workload.examples);
    let after1 = engine.report();
    assert!(
        after1.batch_plans_compiled >= 1,
        "no trie compiled: {after1}"
    );
    assert_eq!(after1.plans_recosted, 0, "nothing to recost yet: {after1}");

    // Round 2 fetches the cached trie, sees the observed rows diverge from
    // the uniform estimates, and recosts it before executing.
    let round2 = engine.covered_sets_batch(&workload.beam, &workload.examples);
    let after2 = engine.report();
    assert!(
        after2.batch_plan_cache_hits >= 1,
        "round 2 must hit the trie cache: {after2}"
    );
    assert!(
        after2.plans_recosted >= 1,
        "cached trie was never recosted from feedback: {after2}"
    );
    assert_eq!(round2, round1, "recosting changed trie verdicts");

    // The recosted trie starts fresh feedback; its observed-row estimates
    // hold, so a third round reuses it without recosting again.
    let round3 = engine.covered_sets_batch(&workload.beam, &workload.examples);
    let after3 = engine.report();
    assert_eq!(round3, round1);
    assert_eq!(
        after3.plans_recosted, after2.plans_recosted,
        "recosted trie must not thrash: {after3}"
    );
    assert_eq!(after3.budget_exhausted, 0);

    // Verdicts agree with an untouched reference engine throughout.
    for (clause, set) in workload.beam.iter().zip(&round3) {
        assert_eq!(
            set,
            &reference.covered_set(clause, &workload.examples, Prior::None),
            "trie recosting diverged on `{clause}`"
        );
    }
}

#[test]
fn feedback_replanning_rescues_uniform_misordering() {
    let workload = skewed_costing_workload();
    // Uniform model, feedback ON (default), cache off so every score
    // executes: the observed candidate rows must recost the bad plan.
    let engine = Engine::from_arc(
        Arc::clone(&workload.db),
        EngineConfig::default().with_uniform_costs().without_cache(),
    );
    let clause = &workload.beam[0];
    let reference = Engine::from_arc(Arc::clone(&workload.db), EngineConfig::default());
    for _ in 0..engine.config().recost_after + 2 {
        let covered = engine.covered_set(clause, &workload.examples, Prior::None);
        assert_eq!(
            covered,
            reference.covered_set(clause, &workload.examples, Prior::None),
            "feedback re-planning changed coverage"
        );
    }
    let report = engine.report();
    assert!(
        report.plans_recosted >= 1,
        "uniform mis-ordering was never recosted: {report}"
    );
    assert_eq!(report.budget_exhausted, 0);
}
