//! Concurrency stress test for the serving layer: N sessions on one
//! `Server` interleave coverage jobs with mutation batches from their own
//! OS threads. Each session works a disjoint group of relations, so its
//! results are deterministic regardless of how the server interleaves the
//! sessions' jobs; the test asserts per-session determinism, that no lock
//! is poisoned (the server keeps serving afterwards), and that the
//! per-session `EngineReport` deltas sum exactly to the server total.
//!
//! CI runs this test in release mode as well (see the workflow), where the
//! tighter timings shake out races the dev profile can mask.

use castor_engine::EngineReport;
use castor_logic::{covers_example, Atom, Clause};
use castor_relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor_service::{Server, ServerConfig};
use std::collections::HashSet;
use std::sync::Arc;

const SESSIONS: usize = 4;
const ROUNDS: usize = 8;

fn pub_name(i: usize) -> String {
    format!("pub{i}")
}

fn stress_schema() -> Schema {
    let mut schema = Schema::new("stress");
    for i in 0..SESSIONS {
        schema.add_relation(RelationSymbol::new(pub_name(i), &["title", "person"]));
    }
    schema
}

/// collaborated_i(x, y) ← pub_i(p, x), pub_i(p, y)
fn collab_clause(i: usize) -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars(pub_name(i), &["p", "x"]),
            Atom::vars(pub_name(i), &["p", "y"]),
        ],
    )
}

#[test]
fn concurrent_sessions_with_interleaved_mutations_stay_deterministic() {
    let server = Arc::new(Server::new(ServerConfig::default().with_threads(4)));
    server
        .register(
            "stress",
            Arc::new(DatabaseInstance::empty(&stress_schema())),
        )
        .unwrap();

    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || -> EngineReport {
                let session = server.session("stress").unwrap();
                let relation = pub_name(i);
                // A private mirror of this session's relation group, used
                // to compute the expected answer independently.
                let mut mirror = DatabaseInstance::empty(&stress_schema());
                for round in 0..ROUNDS {
                    let title = Tuple::from_strs(&[
                        &format!("s{i}p{round}"),
                        &format!("s{i}author{round}"),
                    ]);
                    let partner = Tuple::from_strs(&[
                        &format!("s{i}p{round}"),
                        &format!("s{i}partner{round}"),
                    ]);
                    let batch = MutationBatch::new()
                        .insert(&relation, title.clone())
                        .insert(&relation, partner.clone());
                    // Occasionally remove an earlier round's tuple, so the
                    // sequence exercises both maintenance directions.
                    let batch = if round % 3 == 2 {
                        batch.remove(
                            &relation,
                            Tuple::from_strs(&[
                                &format!("s{i}p{}", round - 1),
                                &format!("s{i}partner{}", round - 1),
                            ]),
                        )
                    } else {
                        batch
                    };
                    mirror.apply_batch(&batch).unwrap();
                    session.apply(batch).unwrap();

                    // Every pair seen so far: the live session must agree
                    // with reference semantics over the mirror, no matter
                    // what the other sessions are doing concurrently.
                    let clause = collab_clause(i);
                    let examples: Vec<Tuple> = (0..=round)
                        .flat_map(|r| {
                            [
                                Tuple::from_strs(&[
                                    &format!("s{i}author{r}"),
                                    &format!("s{i}partner{r}"),
                                ]),
                                Tuple::from_strs(&[
                                    &format!("s{i}author{r}"),
                                    &format!("s{i}author{}", (r + 1) % ROUNDS),
                                ]),
                            ]
                        })
                        .collect();
                    let got = session
                        .covered_sets(vec![clause.clone()], examples.clone())
                        .unwrap();
                    let expected: HashSet<Tuple> = examples
                        .iter()
                        .filter(|e| covers_example(&clause, &mirror, e))
                        .cloned()
                        .collect();
                    assert_eq!(
                        got[0], expected,
                        "session {i} diverged from its mirror in round {round}"
                    );
                }
                session.report()
            })
        })
        .collect();

    let session_reports: Vec<EngineReport> = workers
        .into_iter()
        .map(|w| w.join().expect("session thread must not panic"))
        .collect();

    // Per-session deltas sum exactly to the server total: every counter
    // bump happened inside some session's job window, and jobs of one
    // database never overlap.
    let summed = session_reports
        .iter()
        .fold(EngineReport::default(), |acc, r| acc.combined(r));
    let total = server.report("stress").unwrap();
    assert_eq!(
        summed, total,
        "session deltas do not sum to the server total"
    );
    assert_eq!(total.mutation_batches, SESSIONS * ROUNDS);
    assert!(total.coverage_tests > 0);

    // No poisoned locks anywhere: the server keeps serving new sessions.
    let post = server.session("stress").unwrap();
    let sets = post
        .covered_sets(
            vec![collab_clause(0)],
            vec![Tuple::from_strs(&["s0author0", "s0partner0"])],
        )
        .unwrap();
    assert_eq!(sets[0].len(), 1);
}
