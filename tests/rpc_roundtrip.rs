//! End-to-end acceptance tests for the castor-rpc wire protocol: every
//! job kind over a real TCP socket against `RpcServer`, with results
//! pinned to the in-process `Session` API; plus the protocol's failure
//! modes — malformed/truncated/oversized frames, admission-control
//! rejections, and client disconnect mid-job (cancellation and session
//! reclamation).

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{
    ErrorCode, FrameError, Request, Response, RpcClient, RpcConfig, RpcError, RpcServer,
};
use castor::service::{LearnAlgorithm, LearnJob, Server, ServerConfig};
use castor_learners::{LearnerParams, LearningTask};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn demo_rpc(config: ServerConfig) -> RpcServer {
    let service = Arc::new(Server::new(config));
    service.register("demo", Arc::new(demo_db())).unwrap();
    RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap()
}

/// A complete bipartite graph: it contains no odd cycle, so the
/// odd-cycle queries below can never succeed — they explore their search
/// space (or their node budget) to the end, deterministically.
fn bipartite_db(left: usize, right: usize) -> DatabaseInstance {
    let mut schema = Schema::new("bulk");
    schema.add_relation(RelationSymbol::new("pair", &["a", "b"]));
    let mut db = DatabaseInstance::empty(&schema);
    for i in 0..left {
        for j in 0..right {
            let (l, r) = (format!("l{i}"), format!("r{j}"));
            db.insert("pair", Tuple::from_strs(&[&l, &r])).unwrap();
            db.insert("pair", Tuple::from_strs(&[&r, &l])).unwrap();
        }
    }
    db
}

/// pair-triangle: unsatisfiable over a bipartite graph (~2M nodes on the
/// 100×100 instance — a deterministic tens-of-milliseconds job).
fn triangle() -> Clause {
    Clause::new(
        Atom::vars("t", &["x"]),
        vec![
            Atom::vars("pair", &["a", "b"]),
            Atom::vars("pair", &["b", "c"]),
            Atom::vars("pair", &["c", "a"]),
        ],
    )
}

/// pair-5-cycle: unsatisfiable over a bipartite graph with a ~10^10-node
/// search space — it cannot finish on its own within any test timeout,
/// so observing it end proves the cancellation token fired.
fn five_cycle() -> Clause {
    Clause::new(
        Atom::vars("t", &["x"]),
        vec![
            Atom::vars("pair", &["a", "b"]),
            Atom::vars("pair", &["b", "c"]),
            Atom::vars("pair", &["c", "d"]),
            Atom::vars("pair", &["d", "e"]),
            Atom::vars("pair", &["e", "a"]),
        ],
    )
}

#[test]
fn every_job_kind_matches_the_in_process_session_over_tcp() {
    let rpc = demo_rpc(ServerConfig::default());
    // An independent in-process server over an identical database is the
    // reference for every result below.
    let reference = Server::new(ServerConfig::default());
    reference.register("demo", Arc::new(demo_db())).unwrap();
    let session = reference.session("demo").unwrap();

    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let examples = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["ann", "carol"]),
        Tuple::from_strs(&["eve", "eve"]),
    ];

    // CoverageJob.
    let over_tcp = client
        .covered_sets(vec![collaborated()], examples.clone())
        .unwrap();
    let in_process = session
        .covered_sets(vec![collaborated()], examples.clone())
        .unwrap();
    assert_eq!(over_tcp, in_process);

    // ScoreJob (fused pass).
    let positive = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["carol", "dan"]),
    ];
    let negative = vec![Tuple::from_strs(&["ann", "carol"])];
    let tcp_counts = client
        .score(vec![collaborated()], positive.clone(), negative.clone())
        .unwrap();
    let ref_counts = session
        .score(vec![collaborated()], positive.clone(), negative.clone())
        .unwrap();
    assert_eq!(tcp_counts, ref_counts);
    assert_eq!((tcp_counts[0].positive, tcp_counts[0].negative), (2, 0));

    // MutationBatch: applied over TCP, visible to later jobs.
    let summary = client
        .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
        .unwrap();
    assert_eq!(summary.inserted, 1);
    let ref_summary = session
        .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
        .unwrap();
    assert_eq!(summary, ref_summary);
    let after = client
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "eve"])],
        )
        .unwrap();
    assert_eq!(after[0].len(), 1);

    // LearnJob.
    let task = LearningTask::new(
        "collaborated",
        2,
        vec![
            Tuple::from_strs(&["ann", "bob"]),
            Tuple::from_strs(&["carol", "dan"]),
        ],
        vec![Tuple::from_strs(&["ann", "carol"])],
    );
    let algorithm = LearnAlgorithm::Progol(LearnerParams {
        allow_constants: false,
        ..LearnerParams::default()
    });
    let tcp_definition = client.learn(task.clone(), algorithm.clone()).unwrap();
    let ref_definition = session.learn(LearnJob::new(task, algorithm)).unwrap();
    assert_eq!(tcp_definition, ref_definition);
    assert!(!tcp_definition.is_empty());

    // The session report travels the wire and reflects the activity.
    let report = client.report().unwrap();
    assert!(report.coverage_tests > 0);
    assert_eq!(report.mutation_batches, 1);
    // Engine totals + serving counters in one round trip.
    let (engine_totals, server_report) = client.server_report().unwrap();
    assert!(engine_totals.coverage_tests >= report.coverage_tests);
    assert_eq!(server_report.sessions_active, 1);
    assert!(server_report.jobs_submitted >= 5);
}

#[test]
fn pipelined_requests_multiplex_on_one_connection() {
    let rpc = demo_rpc(ServerConfig::default());
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let examples = vec![Tuple::from_strs(&["ann", "bob"])];
    // Several requests in flight before the first join.
    let coverage = (0..4)
        .map(|_| {
            client
                .submit(Request::Coverage {
                    clauses: vec![collaborated()],
                    examples: examples.clone(),
                    deadline_ms: None,
                })
                .unwrap()
        })
        .collect::<Vec<_>>();
    let report = client.submit(Request::Report).unwrap();
    // Joined out of submission order: the id-keyed buffering sorts it out.
    // The report was pipelined *after* the coverage jobs, so — like an
    // in-process `Session::report()` called after joining them — it must
    // include their counter deltas (reports are snapshotted in response
    // order on the server, not at decode time).
    match client.join(report).unwrap() {
        Response::Report(r) => assert!(
            r.coverage_tests + r.cache_hits > 0,
            "pipelined report missed the deltas of earlier in-flight jobs: {r}"
        ),
        other => panic!("unexpected response {other:?}"),
    }
    for handle in coverage.into_iter().rev() {
        match client.join(handle).unwrap() {
            Response::Covered(sets) => assert_eq!(sets[0].len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
    }
}

#[test]
fn unknown_database_and_bad_first_frame_fail_with_typed_errors() {
    let rpc = demo_rpc(ServerConfig::default());
    // Unknown database in Hello.
    let err = RpcClient::connect(rpc.local_addr(), "missing").unwrap_err();
    assert!(
        matches!(
            &err,
            RpcError::Remote {
                code: ErrorCode::UnknownDatabase,
                ..
            }
        ),
        "{err}"
    );
    // A request before Hello is a protocol error.
    let stream = TcpStream::connect(rpc.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    castor::rpc::frame::write_request(&mut writer, 5, &Request::Report).unwrap();
    let (id, response) = castor::rpc::frame::read_response(
        &mut stream.try_clone().unwrap(),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    assert_eq!(id, 5);
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::Protocol,
            ..
        }
    ));
    // The server is still healthy for well-behaved clients.
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    assert!(client.report().is_ok());
}

#[test]
fn malformed_truncated_and_oversized_frames_close_the_connection_cleanly() {
    let rpc = demo_rpc(ServerConfig::default());

    // Wrong protocol version: typed error frame, then close.
    let stream = TcpStream::connect(rpc.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut frame = castor::rpc::frame::request_to_bytes(
        1,
        &Request::Hello {
            database: "demo".into(),
            eval_budget: None,
            stream_credit: None,
        },
    );
    frame[4] = 99; // version byte
    writer.write_all(&frame).unwrap();
    let (_, response) = castor::rpc::frame::read_response(
        &mut stream.try_clone().unwrap(),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));
    assert!(matches!(
        castor::rpc::frame::read_response(
            &mut stream.try_clone().unwrap(),
            castor::rpc::DEFAULT_MAX_FRAME_BYTES,
        ),
        Err(FrameError::Closed)
    ));

    // A truncated frame (connection dropped mid-frame) must not wedge or
    // crash the server.
    let stream = TcpStream::connect(rpc.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(&frame[..7]).unwrap();
    drop(writer);
    drop(stream);

    // An oversized length prefix is rejected with a typed frame before
    // any allocation.
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    let small = RpcServer::bind(
        service,
        "127.0.0.1:0",
        RpcConfig::default().with_max_frame_bytes(256),
    )
    .unwrap();
    let stream = TcpStream::connect(small.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(&(1u32 << 28).to_le_bytes()).unwrap();
    let (_, response) = castor::rpc::frame::read_response(
        &mut stream.try_clone().unwrap(),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    match response {
        Response::Error {
            code: ErrorCode::FrameTooLarge,
            limit,
            ..
        } => assert_eq!(limit, 256),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // Malformed payload bytes inside a well-formed frame: typed error.
    let stream = TcpStream::connect(rpc.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut garbage = Vec::new();
    garbage.extend_from_slice(&14u32.to_le_bytes()); // header + 4 bytes
    garbage.push(castor::rpc::PROTOCOL_VERSION);
    garbage.push(0x02); // Coverage kind
    garbage.extend_from_slice(&3u64.to_le_bytes());
    garbage.extend_from_slice(&[0xff, 0xff, 0xff, 0xff]); // bogus varint lengths
    writer.write_all(&garbage).unwrap();
    let (id, response) = castor::rpc::frame::read_response(
        &mut stream.try_clone().unwrap(),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    // The frame header parsed, so the typed error echoes the request id.
    assert_eq!(id, 3);
    assert!(matches!(
        response,
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));

    // After all that abuse the server still serves.
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    assert_eq!(
        client
            .covered_sets(
                vec![collaborated()],
                vec![Tuple::from_strs(&["ann", "bob"])]
            )
            .unwrap()[0]
            .len(),
        1
    );
}

#[test]
fn session_cap_rejects_connections_with_a_typed_frame() {
    let rpc = demo_rpc(ServerConfig::default().with_max_sessions(2));
    let _a = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let _b = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let err = RpcClient::connect(rpc.local_addr(), "demo").unwrap_err();
    match &err {
        RpcError::Remote {
            code: ErrorCode::SessionLimit,
            limit,
            ..
        } => assert_eq!(*limit, 2),
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    assert!(err.is_admission_rejection());
    let report = rpc.service().server_report();
    assert_eq!(report.sessions_active, 2);
    assert_eq!(report.sessions_rejected, 1);
    // Dropping a client frees its slot (poll: reclamation is async).
    drop(_a);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if RpcClient::connect(rpc.local_addr(), "demo").is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dropped connection never released its session slot"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn inflight_cap_rejects_jobs_but_keeps_the_connection() {
    let service = Arc::new(Server::new(ServerConfig::default().with_max_inflight(2)));
    service
        .register("bulk", Arc::new(bipartite_db(100, 100)))
        .unwrap();
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
    let mut client = RpcClient::connect_with(
        rpc.local_addr(),
        "bulk",
        Some(2_000_000),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    let slow = Request::Coverage {
        clauses: vec![triangle()],
        examples: vec![Tuple::from_strs(&["x"])],
        deadline_ms: None,
    };
    let blocker = client.submit(slow.clone()).unwrap();
    let queued = client.submit(slow.clone()).unwrap();
    let rejected = client.submit(slow.clone()).unwrap();
    let err = client.join(rejected).unwrap_err();
    match &err {
        RpcError::Remote {
            code: ErrorCode::Rejected,
            limit,
            ..
        } => assert_eq!(*limit, 2),
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(err.is_admission_rejection());
    // The connection survives the rejection: earlier jobs complete and
    // later ones are accepted once the queue drains.
    assert!(matches!(
        client.join(blocker).unwrap(),
        Response::Covered(_)
    ));
    assert!(matches!(client.join(queued).unwrap(), Response::Covered(_)));
    assert!(client
        .covered_sets(vec![triangle()], vec![Tuple::from_strs(&["x"])])
        .is_ok());
    assert!(rpc.service().server_report().jobs_rejected >= 1);
}

#[test]
fn disconnect_mid_learn_cancels_and_reclaims_the_session() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register("bulk", Arc::new(bipartite_db(100, 100)))
        .unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();

    // Effectively unbounded budget: the five-cycle coverage search would
    // run for hours if nothing cancelled it.
    let mut client = RpcClient::connect_with(
        rpc.local_addr(),
        "bulk",
        Some(usize::MAX),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    let _running = client
        .submit(Request::Coverage {
            clauses: vec![five_cycle()],
            examples: vec![Tuple::from_strs(&["x"])],
            deadline_ms: None,
        })
        .unwrap();
    // A LearnJob queued behind it is mid-flight when the client vanishes.
    let _learn = client
        .submit(Request::Learn {
            task: LearningTask::new("t", 1, vec![Tuple::from_strs(&["l0"])], vec![]),
            algorithm: LearnAlgorithm::Foil(LearnerParams::default()),
            deadline_ms: None,
        })
        .unwrap();
    // Give the runner a moment to actually start the five-cycle search.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(service.server_report().sessions_active, 1);

    // Disconnect without joining anything.
    drop(client);

    // The disconnect must fire the session's cancel token: the running
    // search aborts within one candidate tuple, the queued learn job
    // fails fast, and the session (admission slot included) is reclaimed.
    // None of that can happen by natural completion inside this timeout —
    // the search space is ~10^10 nodes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let report = service.server_report();
        let queue = service.queue_report("bulk").unwrap();
        if report.sessions_active == 0 && queue.inflight == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect did not cancel/reclaim: {report}, inflight={}",
            queue.inflight
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The server keeps serving new clients afterwards.
    let mut fresh = RpcClient::connect(rpc.local_addr(), "bulk").unwrap();
    assert!(fresh.report().is_ok());
}

#[test]
fn round_robin_keeps_a_light_client_ahead_of_a_flooder() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register("bulk", Arc::new(bipartite_db(60, 60)))
        .unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();

    // The flooder pipelines a deep backlog of budget-bound triangle
    // searches (each a few milliseconds). Each submission uses a
    // distinct example constant — the head variable is unconnected to
    // the body, so the value never changes the search cost, but it does
    // key the engine's exhaustion cache: identical jobs would be served
    // from that cache near-instantly from the second one on, draining
    // the backlog before fairness can be observed.
    let mut flooder = RpcClient::connect_with(
        rpc.local_addr(),
        "bulk",
        Some(500_000),
        castor::rpc::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    const BACKLOG: usize = 60;
    let flood_handles: Vec<_> = (0..BACKLOG)
        .map(|i| {
            flooder
                .submit(Request::Coverage {
                    clauses: vec![triangle()],
                    examples: vec![Tuple::from_strs(&[&format!("x{i}")])],
                    deadline_ms: None,
                })
                .unwrap()
        })
        .collect();

    // The light client submits one trivial job after the whole backlog.
    let mut light = RpcClient::connect(rpc.local_addr(), "bulk").unwrap();
    let sets = light
        .covered_sets(
            vec![Clause::new(
                Atom::vars("t", &["x"]),
                vec![Atom::vars("pair", &["x", "y"])],
            )],
            vec![Tuple::from_strs(&["l0"])],
        )
        .unwrap();
    assert_eq!(sets[0].len(), 1);

    // Round-robin: the light job ran on the flooder's second turn, so
    // most of the backlog is still queued when it completes. Under the
    // old single-FIFO scheduling the light job would have waited for the
    // entire backlog and `inflight` would be ~0 here.
    let inflight = service.queue_report("bulk").unwrap().inflight;
    assert!(
        inflight > BACKLOG / 2,
        "light client was starved behind the flooder: {inflight} of {BACKLOG} still queued"
    );

    for handle in flood_handles {
        assert!(matches!(
            flooder.join(handle).unwrap(),
            Response::Covered(_)
        ));
    }
}
