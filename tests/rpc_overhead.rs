//! Acceptance guard for the wire-transport overhead budget on the
//! event-loop server: the shared `rpc_roundtrip_workload` score job
//! (coverage evaluation over both example lists, a few dozen bytes of
//! counts back) over loopback TCP must stay within 1.2× of the same
//! job on an in-process `Session`. The score shape is the transport
//! bound: evaluation-dominated, fixed-size response — so the ratio
//! measures the loop's wake/dispatch/flush path, and any pathology (a
//! poll timeout on the response path, Nagle-style delays, per-roundtrip
//! syscall storms) blows it immediately. The covered-sets shape is
//! additionally pinned at a looser bound: its response re-materializes
//! every covered tuple on the client (encode + decode + re-hash), so
//! its wire cost is payload-bound by construction — the bound catches
//! gross regressions, not loop latency. The `bench_rpc` runner writes
//! the same pair of ratios to `BENCH_rpc.json` for tracking.
//!
//! Release-only: a debug build's evaluation cost (and timing noise)
//! drowns the transport share and makes the ratio meaningless.
#![cfg(not(debug_assertions))]

use castor::bench::rpc_roundtrip_workload;
use castor::rpc::{RpcClient, RpcConfig, RpcServer};
use castor::service::{Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 30;

/// Interleaved best-of-N: alternate sides within each round and keep
/// the per-side minimum — drift on a shared box hits both sides
/// equally, and the minimum is the standard de-noised estimate for a
/// deterministic job.
fn best_pair(
    mut a: impl FnMut() -> Duration,
    mut b: impl FnMut() -> Duration,
) -> (Duration, Duration) {
    // Warm-up both sides (plan compilation, first-touch indexes, socket
    // buffers).
    for _ in 0..5 {
        a();
        b();
    }
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..ROUNDS {
        best_a = best_a.min(a());
        best_b = best_b.min(b());
    }
    (best_a, best_b)
}

#[test]
fn tcp_loopback_stays_within_budget_of_in_process() {
    let workload = rpc_roundtrip_workload();

    let in_process = Server::new(ServerConfig::default());
    in_process
        .register("bench", Arc::clone(&workload.db))
        .unwrap();
    let session = in_process.session("bench").unwrap();

    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("bench", Arc::clone(&workload.db)).unwrap();
    let rpc = RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap();
    let client = std::sync::Mutex::new(RpcClient::connect(rpc.local_addr(), "bench").unwrap());

    // The transport must not change what the job computes.
    let counts_session = session
        .score(
            workload.beam.clone(),
            workload.positive.clone(),
            workload.negative.clone(),
        )
        .unwrap();
    let counts_tcp = client
        .lock()
        .unwrap()
        .score(
            workload.beam.clone(),
            workload.positive.clone(),
            workload.negative.clone(),
        )
        .unwrap();
    assert_eq!(counts_session, counts_tcp);

    // The pinned bound: score roundtrips, ≤1.2× with a small absolute
    // allowance (two loopback hops cost a fixed few tens of
    // microseconds no matter the job; a fast baseline must not turn
    // that constant into a ratio failure).
    let (best_session, best_tcp) = best_pair(
        || {
            let start = Instant::now();
            session
                .score(
                    workload.beam.clone(),
                    workload.positive.clone(),
                    workload.negative.clone(),
                )
                .unwrap();
            start.elapsed()
        },
        || {
            let start = Instant::now();
            client
                .lock()
                .unwrap()
                .score(
                    workload.beam.clone(),
                    workload.positive.clone(),
                    workload.negative.clone(),
                )
                .unwrap();
            start.elapsed()
        },
    );
    let ceiling = best_session.mul_f64(1.2) + Duration::from_micros(100);
    assert!(
        best_tcp <= ceiling,
        "tcp loopback score roundtrip over budget: {best_tcp:?} vs in-process {best_session:?} \
         ({:.2}x, ceiling {ceiling:?})",
        best_tcp.as_secs_f64() / best_session.as_secs_f64().max(1e-9)
    );

    // The payload-bound shape: covered sets re-materialize every covered
    // tuple on the client, so the honest budget is looser — this catches
    // a gross regression (an extra copy, a stalled flush), not loop
    // latency.
    let (covered_session, covered_tcp) = best_pair(
        || {
            let start = Instant::now();
            session
                .covered_sets(workload.beam.clone(), workload.positive.clone())
                .unwrap();
            start.elapsed()
        },
        || {
            let start = Instant::now();
            client
                .lock()
                .unwrap()
                .covered_sets(workload.beam.clone(), workload.positive.clone())
                .unwrap();
            start.elapsed()
        },
    );
    let covered_ceiling = covered_session.mul_f64(2.2) + Duration::from_micros(100);
    assert!(
        covered_tcp <= covered_ceiling,
        "tcp loopback covered-sets roundtrip over budget: {covered_tcp:?} vs in-process \
         {covered_session:?} ({:.2}x, ceiling {covered_ceiling:?})",
        covered_tcp.as_secs_f64() / covered_session.as_secs_f64().max(1e-9)
    );
}
