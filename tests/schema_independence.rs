//! Cross-crate integration tests: the end-to-end schema-independence
//! property on the synthetic UW-CSE family, exercised through the public
//! APIs of `castor-datasets`, `castor-core`, `castor-learners`,
//! `castor-transform`, and `castor-eval` together.

use castor_core::{Castor, CastorConfig};
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_datasets::SchemaFamily;
use castor_eval::{evaluate_definition, schema_independent, EvaluationResult};
use castor_learners::LearnerParams;
use castor_transform::verify_information_equivalence;

fn tiny_family() -> SchemaFamily {
    generate(&UwCseConfig {
        students: 12,
        professors: 4,
        courses: 5,
        noise_fraction: 0.0,
        seed: 21,
        ..Default::default()
    })
}

#[test]
fn uwcse_variants_are_information_equivalent() {
    // The 4NF variant is obtained from the Original instance through the
    // composition; round-tripping through the transformation and back must
    // reproduce the instance (bijectivity on this instance).
    let family = tiny_family();
    let original = family.variant("Original").unwrap();
    let schema = castor_datasets::uwcse::original_schema();
    for tau in [
        castor_datasets::uwcse::to_4nf(&schema),
        castor_datasets::uwcse::to_denormalized1(&schema),
        castor_datasets::uwcse::to_denormalized2(&schema),
    ] {
        let report = verify_information_equivalence(&tau, &original.db).unwrap();
        assert!(
            report.is_equivalent(),
            "transformation {} must be information preserving",
            tau.name()
        );
    }
}

#[test]
fn castor_is_schema_independent_end_to_end() {
    let family = tiny_family();
    let mut evaluations: Vec<EvaluationResult> = Vec::new();
    for variant in &family.variants {
        let mut config = CastorConfig::uwcse();
        config.params = LearnerParams {
            constant_positions: variant.constant_positions.clone(),
            ..LearnerParams::uwcse()
        };
        let outcome = Castor::new(config).learn(&variant.db, &variant.task);
        let eval = evaluate_definition(
            &outcome.definition,
            &variant.db,
            &variant.task.positive,
            &variant.task.negative,
        );
        evaluations.push(eval);
    }
    assert!(
        schema_independent(&evaluations, 1e-9),
        "Castor must deliver equal precision/recall across schema variants: {:?}",
        evaluations
            .iter()
            .map(|e| (e.precision(), e.recall()))
            .collect::<Vec<_>>()
    );
    assert!(evaluations[0].recall() > 0.5);
}

#[test]
fn ground_truth_definitions_agree_across_variants() {
    let family = tiny_family();
    let reference = {
        let v = family.variant("Original").unwrap();
        castor_logic::definition_results(v.ground_truth.as_ref().unwrap(), &v.db)
    };
    for variant in &family.variants {
        let results =
            castor_logic::definition_results(variant.ground_truth.as_ref().unwrap(), &variant.db);
        assert_eq!(results, reference, "variant {} diverges", variant.name);
    }
}
