//! Cross-crate integration tests: the end-to-end schema-independence
//! property on the synthetic UW-CSE family, exercised through the public
//! APIs of `castor-datasets`, `castor-core`, `castor-learners`,
//! `castor-transform`, and `castor-eval` together.

use castor_core::{Castor, CastorConfig};
use castor_datasets::uwcse::{generate, UwCseConfig};
use castor_datasets::SchemaFamily;
use castor_eval::{evaluate_definition, schema_independent, EvaluationResult};
use castor_learners::LearnerParams;
use castor_logic::{Atom, Clause, Term};
use castor_relational::{RelationSymbol, Schema};
use castor_transform::{
    map_clause_through_step, verify_information_equivalence, CanonicalSchema, TransformStep,
    Transformation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_family() -> SchemaFamily {
    generate(&UwCseConfig {
        students: 12,
        professors: 4,
        courses: 5,
        noise_fraction: 0.0,
        seed: 21,
        ..Default::default()
    })
}

#[test]
fn uwcse_variants_are_information_equivalent() {
    // The 4NF variant is obtained from the Original instance through the
    // composition; round-tripping through the transformation and back must
    // reproduce the instance (bijectivity on this instance).
    let family = tiny_family();
    let original = family.variant("Original").unwrap();
    let schema = castor_datasets::uwcse::original_schema();
    for tau in [
        castor_datasets::uwcse::to_4nf(&schema),
        castor_datasets::uwcse::to_denormalized1(&schema),
        castor_datasets::uwcse::to_denormalized2(&schema),
    ] {
        let report = verify_information_equivalence(&tau, &original.db).unwrap();
        assert!(
            report.is_equivalent(),
            "transformation {} must be information preserving",
            tau.name()
        );
    }
}

#[test]
fn castor_is_schema_independent_end_to_end() {
    let family = tiny_family();
    let mut evaluations: Vec<EvaluationResult> = Vec::new();
    for variant in &family.variants {
        let mut config = CastorConfig::uwcse();
        config.params = LearnerParams {
            constant_positions: variant.constant_positions.clone(),
            ..LearnerParams::uwcse()
        };
        let outcome = Castor::new(config).learn(&variant.db, &variant.task);
        let eval = evaluate_definition(
            &outcome.definition,
            &variant.db,
            &variant.task.positive,
            &variant.task.negative,
        );
        evaluations.push(eval);
    }
    assert!(
        schema_independent(&evaluations, 1e-9),
        "Castor must deliver equal precision/recall across schema variants: {:?}",
        evaluations
            .iter()
            .map(|e| (e.precision(), e.recall()))
            .collect::<Vec<_>>()
    );
    assert!(evaluations[0].recall() > 0.5);
}

/// A random lossless star decomposition of one wide relation: every part
/// carries the key attributes, the non-key attributes are scattered over
/// the parts, and no part is empty.
fn random_decomposition(rng: &mut StdRng) -> (Schema, TransformStep, usize) {
    let arity = rng.gen_range(3..=6);
    let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    let mut schema = Schema::new("random");
    schema.add_relation(RelationSymbol::new("wide", &attrs));
    schema.add_relation(RelationSymbol::new("aux", &["l", "r"]));

    let key_len = rng.gen_range(1..=2);
    let key: Vec<String> = attrs[..key_len].to_vec();
    let rest: Vec<String> = attrs[key_len..].to_vec();
    let n_parts = rng.gen_range(2..=rest.len().clamp(2, 3));
    let mut part_attrs: Vec<Vec<String>> = vec![key.clone(); n_parts];
    for (i, attr) in rest.iter().enumerate() {
        // The first `n_parts` non-key attributes seed one part each so
        // every part constrains something beyond the key.
        let p = if i < n_parts {
            i
        } else {
            rng.gen_range(0..n_parts)
        };
        part_attrs[p].push(attr.clone());
    }
    let names: Vec<String> = (0..n_parts).map(|i| format!("part{i}")).collect();
    let parts: Vec<(&str, &[String])> = names
        .iter()
        .zip(&part_attrs)
        .map(|(n, a)| (n.as_str(), a.as_slice()))
        .collect();
    let step = TransformStep::decompose(&schema, "wide", &parts);
    (schema, step, arity)
}

/// A random clause over the `wide`/`aux` schema: joins, repeated
/// relations, constants, and shared variables in arbitrary positions.
fn random_clause(rng: &mut StdRng, arity: usize) -> Clause {
    let mut pool: Vec<String> = vec!["x".into(), "y".into()];
    let mut fresh = 0usize;
    let mut term = |rng: &mut StdRng, pool: &mut Vec<String>| -> Term {
        let roll = rng.gen_range(0..100u32);
        if roll < 15 {
            Term::constant(format!("c{}", rng.gen_range(0..3)))
        } else if roll < 55 && !pool.is_empty() {
            Term::var(pool[rng.gen_range(0..pool.len())].clone())
        } else {
            fresh += 1;
            let name = format!("v{fresh}");
            pool.push(name.clone());
            Term::var(name)
        }
    };
    let mut body = Vec::new();
    for _ in 0..rng.gen_range(1..=3) {
        let terms: Vec<Term> = (0..arity).map(|_| term(rng, &mut pool)).collect();
        body.push(Atom::new("wide", terms));
    }
    for _ in 0..rng.gen_range(0..=2) {
        let terms: Vec<Term> = (0..2).map(|_| term(rng, &mut pool)).collect();
        body.push(Atom::new("aux", terms));
    }
    Clause::new(Atom::vars("t", &["x", "y"]), body)
}

/// Property: composition is the exact inverse of decomposition on clauses
/// — mapping any clause through a random lossless decomposition and back
/// through its inverse composition reproduces the clause literal-for-
/// literal, whatever joins, constants, and repeated literals it contains.
/// This is the identity `CanonicalSchema` cache keying stands on.
#[test]
fn compose_after_decompose_is_the_identity_on_random_clauses() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, step, arity) = random_decomposition(&mut rng);
        let tau = Transformation::new("random-split", vec![step]);
        for _ in 0..5 {
            let clause = random_clause(&mut rng, arity);
            let mut split = clause.clone();
            for step in tau.steps() {
                split = map_clause_through_step(&split, step);
            }
            let mut merged = split.clone();
            for step in tau.invert().steps() {
                merged = map_clause_through_step(&merged, step);
            }
            assert_eq!(
                merged, clause,
                "seed {seed}: compose ∘ decompose must be the identity\n\
                 split through {tau:?} gave {split:?}"
            );
        }
    }
}

/// Property: the δτ images of a clause in every UW-CSE variant are
/// θ-equivalent once pulled through the variant's canonical lens — the
/// exact condition under which the shared coverage cache may serve one
/// variant's verdict to another.
#[test]
fn variant_images_collapse_to_theta_equivalent_canonical_clauses() {
    use castor_logic::subsumption::theta_equivalent;

    let original = castor_datasets::uwcse::original_schema();
    let canonical = CanonicalSchema::anchor(
        &original,
        castor_datasets::uwcse::to_denormalized2(&original),
    );
    let taus = [
        Transformation::identity("original-to-original"),
        castor_datasets::uwcse::to_4nf(&original),
        castor_datasets::uwcse::to_denormalized1(&original),
        castor_datasets::uwcse::to_denormalized2(&original),
    ];
    let clauses = castor_datasets::uwcse::ground_truth_original().clauses;
    assert!(!clauses.is_empty());
    for clause in &clauses {
        let reference = canonical.lens_for(&taus[0]).map_clause(clause);
        for tau in &taus[1..] {
            // The clause a tenant of this variant would submit: the δτ
            // image of the Original-schema clause.
            let mut image = clause.clone();
            for step in tau.steps() {
                image = map_clause_through_step(&image, step);
            }
            let through_lens = canonical.lens_for(tau).map_clause(&image);
            assert!(
                theta_equivalent(&through_lens, &reference),
                "{}: canonical image diverges for {clause:?}:\n\
                 reference {reference:?}\nthrough lens {through_lens:?}",
                tau.name()
            );
        }
    }
}

#[test]
fn ground_truth_definitions_agree_across_variants() {
    let family = tiny_family();
    let reference = {
        let v = family.variant("Original").unwrap();
        castor_logic::definition_results(v.ground_truth.as_ref().unwrap(), &v.db)
    };
    for variant in &family.variants {
        let results =
            castor_logic::definition_results(variant.ground_truth.as_ref().unwrap(), &variant.db);
        assert_eq!(results, reference, "variant {} diverges", variant.name);
    }
}
