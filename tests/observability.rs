//! End-to-end acceptance tests for the observability layer: one wire
//! job's spans share a single trace id across client and server over a
//! real TCP socket, and the `Request::Metrics` exposition is consistent
//! with the wire-fetched `ServerReport` totals.

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{Request, Response, RpcClient, RpcConfig, RpcServer};
use castor::service::{Server, ServerConfig};
use std::sync::Arc;

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn demo_rpc() -> RpcServer {
    let service = Arc::new(Server::new(ServerConfig::default().with_threads(2)));
    service.register("demo", Arc::new(demo_db())).unwrap();
    RpcServer::bind(service, "127.0.0.1:0", RpcConfig::default()).unwrap()
}

/// The value of an unlabeled metric in a Prometheus text exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    let line = text
        .lines()
        .find(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .unwrap_or_else(|| panic!("metric {name} not exposed:\n{text}"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

/// One RPC job's spans — client-side frame encode, server-side queue
/// wait, engine evaluation, and reply write — all carry the frame
/// request id as their trace id, end to end over a real TCP socket.
#[test]
fn rpc_job_spans_share_one_trace_id_across_processes() {
    let rpc = demo_rpc();
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();

    let handle = client
        .submit(Request::Coverage {
            clauses: vec![collaborated()],
            examples: vec![Tuple::from_strs(&["ann", "bob"])],
            deadline_ms: None,
        })
        .unwrap();
    let trace = handle.id();
    match client.join(handle).unwrap() {
        Response::Covered(sets) => assert_eq!(sets[0].len(), 1),
        other => panic!("expected covered sets, got {other:?}"),
    }

    // The wire request id is not a locally minted trace (high bit clear).
    assert_eq!(trace & (1 << 63), 0);

    // The client recorded its encode span under the request id.
    let client_spans = client.obs().spans().snapshot();
    assert!(
        client_spans
            .iter()
            .any(|s| s.name == "rpc.client.encode" && s.trace == trace),
        "client spans: {client_spans:?}"
    );

    // Fetching the trace dump over the wire serializes behind the reply
    // on the writer thread, so by the time it is produced the coverage
    // job's rpc.server.reply span is in the ring.
    let dump = client.trace_dump().unwrap();
    assert!(dump.contains("service.queue_wait"), "dump: {dump}");

    // The server recorded the job's whole path under the same id.
    let server_spans = rpc.service().obs().spans().snapshot();
    for name in [
        "service.queue_wait",
        "engine.batch_eval",
        "rpc.server.reply",
    ] {
        assert!(
            server_spans
                .iter()
                .any(|s| s.name == name && s.trace == trace),
            "no {name} span with trace {trace:#x}; server spans: {server_spans:?}"
        );
    }
}

/// The wire-served `Request::Metrics` exposition parses, its histogram
/// counts agree with each other, and the job totals equal the
/// wire-fetched `ServerReport` counters — both views read the same
/// atomics.
#[test]
fn wire_metrics_agree_with_the_server_report() {
    let rpc = demo_rpc();
    let mut client = RpcClient::connect(rpc.local_addr(), "demo").unwrap();

    let examples = vec![
        Tuple::from_strs(&["ann", "bob"]),
        Tuple::from_strs(&["ann", "eve"]),
    ];
    client
        .covered_sets(vec![collaborated()], examples.clone())
        .unwrap();
    client
        .apply(MutationBatch::new().insert("publication", Tuple::from_strs(&["p3", "ann"])))
        .unwrap();
    client.covered_sets(vec![collaborated()], examples).unwrap();

    // Every response above was joined, so every job was popped off the
    // queue and fully accounted before the scrape below.
    let metrics = client.metrics().unwrap();
    let (_, server) = client.server_report().unwrap();

    // The serving-layer latency histograms are labelled by database, so
    // the demo tenant reads out as its own series.
    let queue_wait = metric_value(&metrics, "castor_queue_wait_ns_count{db=\"demo\"}");
    let job_run = metric_value(&metrics, "castor_job_run_ns_count{db=\"demo\"}");
    assert_eq!(queue_wait, 3, "3 jobs were submitted and drained");
    assert_eq!(queue_wait, job_run, "every pop records both histograms");
    assert_eq!(queue_wait, server.queue_drains as u64);
    assert_eq!(job_run, server.jobs_submitted as u64);

    // The engine's evaluation histogram saw both coverage batches and is
    // labelled with the database it belongs to (engines registered
    // through the server get per-database series); the histogram's own
    // bookkeeping is internally consistent: the +Inf bucket closes at
    // the total count.
    let evals = metric_value(&metrics, "castor_engine_batch_eval_ns_count{db=\"demo\"}");
    assert!(evals >= 2, "two coverage jobs evaluated, saw {evals}");
    let inf_line = metrics
        .lines()
        .find(|l| l.starts_with("castor_queue_wait_ns_bucket{db=\"demo\",le=\"+Inf\"}"))
        .expect("+Inf bucket closes the histogram");
    let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(inf, queue_wait);

    // The serving-layer counters exposed in the same scrape match the
    // report fetched over its own frame (single-sourced atomics).
    assert_eq!(
        metric_value(&metrics, "castor_jobs_submitted_total"),
        server.jobs_submitted as u64
    );
    assert_eq!(
        metric_value(&metrics, "castor_sessions_accepted_total"),
        server.sessions_accepted as u64
    );

    // The event loop attributes its time to per-phase series. Every
    // request above was read off the socket and dispatched, and every
    // reply was encoded and flushed back, so all four phases have
    // samples by scrape time (the scrape itself is at least one more
    // read).
    for phase in ["read", "dispatch", "encode", "flush"] {
        let count = metric_value(
            &metrics,
            &format!("castor_rpc_loop_phase_ns_count{{phase=\"{phase}\"}}"),
        );
        assert!(count > 0, "no {phase}-phase samples in:\n{metrics}");
    }
}
