//! Property tests for incremental index/statistics maintenance and the
//! versioned-engine guarantees behind the serving layer:
//!
//! 1. after a seeded-random sequence of insert/remove batches, the
//!    incrementally-maintained instance answers every index query and
//!    statistics read exactly like a from-scratch rebuild;
//! 2. a live [`castor_service::Session`] over a database mutated *after*
//!    `Server` start returns exactly the coverage results of a fresh
//!    snapshot engine on the mutated database, with plan re-compilations
//!    and cache invalidations observable in the engine counters.

use castor_datasets::synthetic::{random_definition, RandomDefinitionConfig};
use castor_datasets::uwcse;
use castor_engine::{Engine, EngineConfig, Prior};
use castor_logic::Clause;
use castor_relational::{DatabaseInstance, MutationBatch, Schema, Tuple, Value};
use castor_service::{Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema() -> Schema {
    uwcse::original_schema()
}

fn random_tuple(arity: usize, rng: &mut StdRng) -> Tuple {
    Tuple::new(
        (0..arity)
            .map(|_| Value::str(format!("c{}", rng.gen_range(0..10))))
            .collect::<Vec<_>>(),
    )
}

fn random_instance(schema: &Schema, rows: usize, rng: &mut StdRng) -> DatabaseInstance {
    let mut db = DatabaseInstance::empty(schema);
    for relation in schema.relations() {
        let arity = relation.arity();
        for _ in 0..rows {
            db.insert(relation.name(), random_tuple(arity, rng))
                .expect("schema relation");
        }
    }
    db
}

/// A random batch over every relation: at least one insert of a fresh
/// random tuple per relation (so every relation's epoch provably advances)
/// plus removes of randomly chosen *existing* tuples (so removes actually
/// hit).
fn random_batch(db: &DatabaseInstance, rng: &mut StdRng) -> MutationBatch {
    let mut batch = MutationBatch::new();
    for relation in db.relations() {
        let name = relation.name().to_string();
        let arity = relation.symbol().arity();
        for i in 0..rng.gen_range(1..3) {
            // A fresh constant outside the shared pool guarantees the
            // first insert per relation is never a duplicate no-op.
            let mut tuple = random_tuple(arity, rng);
            if i == 0 {
                tuple = Tuple::new(
                    std::iter::once(Value::str(format!("fresh{}", rng.gen_range(0..1_000_000))))
                        .chain(tuple.iter().skip(1).cloned())
                        .collect::<Vec<_>>(),
                );
            }
            batch = batch.insert(&name, tuple);
        }
        let tuples = relation.tuples();
        if !tuples.is_empty() {
            for _ in 0..rng.gen_range(0..3) {
                let victim = tuples[rng.gen_range(0..tuples.len())].clone();
                batch = batch.remove(&name, victim);
            }
        }
    }
    batch
}

/// Rebuilds an instance from scratch out of the maintained instance's
/// current tuples.
fn rebuild(db: &DatabaseInstance) -> DatabaseInstance {
    let mut fresh = DatabaseInstance::empty(db.schema());
    for relation in db.relations() {
        fresh
            .insert_all(relation.name(), relation.tuples().iter().cloned())
            .expect("same schema");
    }
    fresh
}

/// Asserts the maintained instance and a from-scratch rebuild are
/// observationally identical: same tuple sets, same statistics, and the
/// same result for every single-column index probe over the active domain.
fn assert_equivalent_to_rebuild(maintained: &DatabaseInstance) {
    let fresh = rebuild(maintained);
    for relation in maintained.relations() {
        let name = relation.name();
        let rebuilt = fresh.relation(name).expect("same schema");
        // Column-level first for a readable failure: the incrementally
        // maintained MCV lists and equi-depth histograms must be
        // bit-identical to a from-scratch rebuild's.
        let maintained_stats = relation.statistics();
        let rebuilt_stats = rebuilt.statistics();
        for (pos, (m, r)) in maintained_stats
            .columns
            .iter()
            .zip(&rebuilt_stats.columns)
            .enumerate()
        {
            assert_eq!(
                m.most_common, r.most_common,
                "MCV list diverged from rebuild on `{name}` position {pos}"
            );
            assert_eq!(
                m.histogram, r.histogram,
                "histogram diverged from rebuild on `{name}` position {pos}"
            );
            assert_eq!(
                m.sum_squared_counts, r.sum_squared_counts,
                "Σcount² diverged from rebuild on `{name}` position {pos}"
            );
        }
        assert_eq!(
            maintained_stats, rebuilt_stats,
            "statistics diverged from rebuild on `{name}`"
        );
        let maintained_tuples: std::collections::HashSet<&Tuple> =
            relation.tuples().iter().collect();
        let rebuilt_tuples: std::collections::HashSet<&Tuple> = rebuilt.tuples().iter().collect();
        assert_eq!(maintained_tuples, rebuilt_tuples, "tuple sets on `{name}`");
        for pos in 0..relation.symbol().arity() {
            for value in relation.active_domain_at(pos) {
                let got: std::collections::HashSet<&Tuple> =
                    relation.select_eq(pos, &value).into_iter().collect();
                let want: std::collections::HashSet<&Tuple> =
                    rebuilt.select_eq(pos, &value).into_iter().collect();
                assert_eq!(got, want, "index probe ({name}, {pos}, {value}) diverged");
            }
        }
    }
}

#[test]
fn incremental_maintenance_matches_from_scratch_rebuild() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xCA57 + seed);
        let schema = schema();
        let mut db = random_instance(&schema, 10, &mut rng);
        for _round in 0..6 {
            let batch = random_batch(&db, &mut rng);
            db.apply_batch(&batch).expect("valid batch");
            assert_equivalent_to_rebuild(&db);
        }
        // Epochs moved with the mutations (monotonic per relation).
        assert!(db.epochs().values().all(|&e| e >= 10));
    }
}

/// Histogram/MCV maintenance under *skew*: a hub-heavy instance churned by
/// seeded-random batches must keep its frequency statistics identical to a
/// from-scratch rebuild — the hub must stay visible in the MCV list, and
/// the weighted estimate must keep pricing it above the uniform average.
#[test]
fn skewed_histograms_survive_random_churn() {
    let mut schema = Schema::new("skewed");
    schema.add_relation(castor_relational::RelationSymbol::new("link", &["a", "b"]));
    let mut db = DatabaseInstance::empty(&schema);
    for j in 0..200 {
        db.insert("link", Tuple::from_strs(&["hub", &format!("v{j}")]))
            .unwrap();
    }
    for f in 0..150 {
        db.insert(
            "link",
            Tuple::from_strs(&[&format!("f{f}"), &format!("g{f}")]),
        )
        .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..8 {
        let batch = random_batch(&db, &mut rng);
        db.apply_batch(&batch).expect("valid batch");
        assert_equivalent_to_rebuild(&db);
        let stats = db.relation("link").unwrap().statistics();
        let col = stats.column(0).expect("position 0");
        let hub_count = col.mcv_count(&Value::str("hub"));
        assert!(
            hub_count.is_some_and(|c| c > 100),
            "round {round}: hub fell out of the MCV list: {hub_count:?}"
        );
        assert!(
            col.expected_matches_weighted(stats.cardinality) > 2.0 * stats.expected_matches(0),
            "round {round}: weighted estimate no longer sees the skew"
        );
    }
}

/// Random candidate clauses shaped like learner candidates over the UW-CSE
/// schema, including their connected prefixes.
fn random_clauses(schema: &Schema, seed: u64) -> Vec<Clause> {
    let mut out = Vec::new();
    for (i, vars) in (4..=6).enumerate() {
        let def = random_definition(
            schema,
            "target",
            &RandomDefinitionConfig {
                clauses: 2,
                variables_per_clause: vars,
                target_arity: 2,
                seed: seed + i as u64,
            },
        );
        for clause in def.clauses {
            for len in 1..=clause.body.len() {
                let mut prefix = Clause::new(clause.head.clone(), clause.body[..len].to_vec());
                prefix.remove_unconnected();
                out.push(prefix);
            }
        }
    }
    out
}

#[test]
fn live_session_equals_fresh_engine_after_every_mutation_round() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let schema = schema();
    let db = random_instance(&schema, 10, &mut rng);

    let server = Server::new(ServerConfig::default());
    server.register("uwcse", Arc::new(db)).unwrap();
    let session = server.session("uwcse").unwrap();

    let clauses = random_clauses(&schema, 7);
    let examples: Vec<Tuple> = (0..12).map(|_| random_tuple(2, &mut rng)).collect();
    // The singleton probe must actually read relations: an empty-bodied
    // clause compiles to an epoch-free plan that never goes stale.
    let probe = clauses
        .iter()
        .max_by_key(|c| c.body.len())
        .expect("non-empty clause set")
        .clone();

    // Warm the session's plans and coverage cache pre-mutation. The
    // singleton batch takes the per-clause compiled-plan path, so a plan
    // enters the plan cache and must survive epoch checks from here on.
    session
        .covered_sets(vec![probe.clone()], examples.clone())
        .unwrap();
    session
        .covered_sets(clauses.clone(), examples.clone())
        .unwrap();

    for round in 0..5u64 {
        let snapshot = session.snapshot();
        let batch = random_batch(&snapshot, &mut rng);
        session.apply(batch).expect("valid batch");
        let fresh = Engine::from_arc(session.snapshot(), EngineConfig::default());

        // Singleton first: its cached plan is now stale (every relation
        // mutated), so this fetch must detect staleness and re-plan — and
        // still agree with the fresh engine.
        let single = session
            .covered_sets(vec![probe.clone()], examples.clone())
            .unwrap();
        assert_eq!(
            single[0],
            fresh.covered_set(&probe, &examples, Prior::None),
            "singleton path diverged in round {round}"
        );

        // The live session (stale plans re-planned lazily, cache
        // invalidated per relation) must agree clause-for-clause with a
        // fresh snapshot engine built over the mutated database.
        let live = session
            .covered_sets(clauses.clone(), examples.clone())
            .unwrap();
        for (i, (clause, live_set)) in clauses.iter().zip(&live).enumerate() {
            let expected = fresh.covered_set(clause, &examples, Prior::None);
            assert_eq!(
                live_set, &expected,
                "live session diverged from fresh engine on clause {i} in round {round}"
            );
        }
    }

    // The invalidation machinery demonstrably did the work: mutation
    // batches were applied, cached plans failed their epoch checks and
    // were recompiled, and cached coverage was dropped per relation.
    let report = server.report("uwcse").unwrap();
    assert_eq!(report.mutation_batches, 5);
    assert!(
        report.plans_invalidated > 0,
        "no plan was ever invalidated: {report}"
    );
    assert!(
        report.cache_clauses_invalidated > 0,
        "no cached coverage was ever invalidated: {report}"
    );
}

/// The epoch check runs on *every* plan fetch: a clause scored before a
/// mutation of a relation it reads is re-planned on the very next score,
/// and the counts match a fresh engine exactly.
#[test]
fn stale_plan_reuse_is_impossible_by_construction() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let schema = schema();
    let db = random_instance(&schema, 10, &mut rng);
    let engine = Engine::new(&db, EngineConfig::default());

    let clauses = random_clauses(&schema, 11);
    let examples: Vec<Tuple> = (0..8).map(|_| random_tuple(2, &mut rng)).collect();
    for clause in &clauses {
        engine.covered_set(clause, &examples, Prior::None);
    }
    let plans_before = engine.report().plans_compiled;
    assert!(plans_before > 0);

    // Mutate every relation: every compiled plan is now stale.
    let snapshot = engine.snapshot();
    let mut batch = MutationBatch::new();
    for relation in snapshot.relations() {
        batch = batch.insert(
            relation.name(),
            random_tuple(relation.symbol().arity(), &mut rng),
        );
    }
    engine.apply(&batch).unwrap();

    for clause in &clauses {
        let live = engine.covered_set(clause, &examples, Prior::None);
        let fresh = Engine::from_arc(engine.snapshot(), EngineConfig::default());
        assert_eq!(live, fresh.covered_set(clause, &examples, Prior::None));
    }
    let report = engine.report();
    assert!(
        report.plans_invalidated > 0,
        "stale plans were silently reused: {report}"
    );
}
