//! Cross-crate integration tests for the full learning pipeline on the IMDb
//! family (exact target) and for the query-based learning stack.

use castor_core::{Castor, CastorConfig};
use castor_datasets::imdb::{generate, ImdbConfig};
use castor_datasets::synthetic::{random_definition, RandomDefinitionConfig};
use castor_datasets::uwcse;
use castor_eval::evaluate_definition;
use castor_learners::{LearnerParams, LogAnH, Oracle};
use castor_transform::map_definition_through_decomposition;

#[test]
fn castor_pipeline_runs_on_every_imdb_variant() {
    // NOTE: the paper's Table 11 reports P = R = 1 for Castor on IMDb. The
    // reproduction's coverage tests are budget-bounded approximations, and at
    // the reduced synthetic scale the exact definition is not always
    // recovered; EXPERIMENTS.md records the measured quality. This test
    // checks the end-to-end pipeline (IND-aware bottom clauses, ARMG,
    // reduction, coverage engine) runs on every variant.
    let family = generate(&ImdbConfig {
        movies: 30,
        directors: 10,
        actors: 15,
        seed: 9,
    });
    for variant in &family.variants {
        let mut config = CastorConfig::large_dataset();
        config.params = LearnerParams {
            constant_positions: variant.constant_positions.clone(),
            // Genre/color/company/director entities are all reachable through
            // the IND closure of a movie link, so one iteration suffices and
            // keeps bottom clauses small.
            max_iterations: 1,
            ..LearnerParams::large_dataset()
        };
        let outcome = Castor::new(config).learn(&variant.db, &variant.task);
        let eval = evaluate_definition(
            &outcome.definition,
            &variant.db,
            &variant.task.positive,
            &variant.task.negative,
        );
        assert!(
            outcome.coverage_tests > 0,
            "variant {}: pipeline did not run any coverage tests",
            variant.name
        );
        assert!(eval.precision() <= 1.0 && eval.recall() <= 1.0);
    }
}

#[test]
fn query_based_learner_costs_more_on_decomposed_schema() {
    // Figure 3's qualitative claim: the same target needs more membership
    // queries over the Original (most decomposed) schema than over
    // Denormalized-2.
    let original = uwcse::original_schema();
    let to_d2 = uwcse::to_denormalized2(&original);
    let denorm2 = to_d2.apply_schema(&original);
    let mut mq_d2_total = 0;
    let mut mq_orig_total = 0;
    for seed in 0..3u64 {
        let config = RandomDefinitionConfig {
            clauses: 1,
            variables_per_clause: 6,
            target_arity: 2,
            seed,
        };
        let target_d2 = random_definition(&denorm2, "target", &config);
        let target_orig = map_definition_through_decomposition(&target_d2, &to_d2.invert());
        let mut oracle_d2 = Oracle::new(denorm2.clone(), target_d2);
        let mut oracle_orig = Oracle::new(original.clone(), target_orig);
        let (_, stats_d2) = LogAnH::new().learn(&mut oracle_d2, "target");
        let (_, stats_orig) = LogAnH::new().learn(&mut oracle_orig, "target");
        mq_d2_total += stats_d2.membership_queries;
        mq_orig_total += stats_orig.membership_queries;
    }
    assert!(
        mq_orig_total >= mq_d2_total,
        "decomposed schema should need at least as many MQs ({mq_orig_total} vs {mq_d2_total})"
    );
}
