//! Deadline propagation and retry semantics, end to end:
//!
//! * a job whose deadline has already passed when its runner pops it is
//!   **shed** — typed `DeadlineExceeded`, engine never touched;
//! * a deadline firing **mid-run** aborts the evaluation at the next
//!   budget check (one candidate tuple) and answers `DeadlineExceeded`
//!   over the wire, instead of holding the queue for hours;
//! * a retrying client replays an idempotent coverage request across an
//!   injected disconnect and gets the bit-identical no-fault answer;
//! * the same scenario around a **mutation** refuses to replay: the
//!   client reports `Ambiguous`, and the server shows the batch applied
//!   at most once.

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::fault::{FaultAction, FaultKind};
use castor::rpc::{
    ClientConfig, ErrorCode, FaultPlan, RetryClient, RetryPolicy, RpcClient, RpcConfig, RpcError,
    RpcServer,
};
use castor::service::{CoverageJob, Deadline, Job, JobError, LearnAlgorithm, Server, ServerConfig};
use castor_learners::{LearnerParams, LearningTask};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol")] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

fn bipartite_db(left: usize, right: usize) -> DatabaseInstance {
    let mut schema = Schema::new("bulk");
    schema.add_relation(RelationSymbol::new("pair", &["a", "b"]));
    let mut db = DatabaseInstance::empty(&schema);
    for i in 0..left {
        for j in 0..right {
            let (l, r) = (format!("l{i}"), format!("r{j}"));
            db.insert("pair", Tuple::from_strs(&[&l, &r])).unwrap();
            db.insert("pair", Tuple::from_strs(&[&r, &l])).unwrap();
        }
    }
    db
}

/// Unsatisfiable over a bipartite graph: a deterministic few-milliseconds
/// blocker under a node budget.
fn triangle() -> Clause {
    Clause::new(
        Atom::vars("t", &["x"]),
        vec![
            Atom::vars("pair", &["a", "b"]),
            Atom::vars("pair", &["b", "c"]),
            Atom::vars("pair", &["c", "a"]),
        ],
    )
}

/// ~10^10 search nodes over the bipartite instance: can never finish
/// inside a test timeout, so returning at all proves the abort fired.
fn five_cycle() -> Clause {
    Clause::new(
        Atom::vars("t", &["x"]),
        vec![
            Atom::vars("pair", &["a", "b"]),
            Atom::vars("pair", &["b", "c"]),
            Atom::vars("pair", &["c", "d"]),
            Atom::vars("pair", &["d", "e"]),
            Atom::vars("pair", &["e", "a"]),
        ],
    )
}

#[test]
fn expired_queued_jobs_are_shed_without_touching_the_engine() {
    let server = Server::new(ServerConfig::default());
    server
        .register("bulk", Arc::new(bipartite_db(60, 60)))
        .unwrap();
    let session = server.session("bulk").unwrap().with_eval_budget(2_000_000);

    // The blocker holds the runner; the deadline job queues behind it
    // with a deadline that is already over, so by the time the runner
    // pops it, shedding is the only legal outcome.
    let blocker = session.submit(Job::Coverage(CoverageJob::new(
        vec![triangle()],
        vec![Tuple::from_strs(&["b"])],
    )));
    let doomed = session.submit(Job::Coverage(
        CoverageJob::new(vec![triangle()], vec![Tuple::from_strs(&["d"])])
            .with_deadline(Deadline::within(Duration::ZERO)),
    ));

    blocker.join().unwrap();
    let after_blocker = session.report();
    assert!(matches!(doomed.join(), Err(JobError::DeadlineExceeded)));

    // Shedding happens at pop time, before any engine involvement: the
    // session's engine deltas are exactly what the blocker alone caused.
    assert_eq!(
        session.report(),
        after_blocker,
        "a shed job must never touch the engine"
    );
    // And the queue accounting still balances (count == drains). The
    // handle completes just before the runner's drain bookkeeping, so
    // give that final store a moment.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let queue = server.queue_report("bulk").unwrap();
        if queue.inflight == 0 && queue.drains == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "queue accounting never balanced: {queue:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let exposition = server.obs().registry().expose();
    assert!(
        exposition.contains("castor_deadline_shed_total 1"),
        "shed counter missing:\n{exposition}"
    );
}

#[test]
fn a_deadline_firing_mid_run_aborts_and_answers_over_the_wire() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register("bulk", Arc::new(bipartite_db(100, 100)))
        .unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();

    // Effectively unbounded budget: only the deadline can stop this job.
    let mut client = RpcClient::connect_config(
        rpc.local_addr(),
        "bulk",
        &ClientConfig::default().with_eval_budget(usize::MAX),
    )
    .unwrap();

    let started = Instant::now();
    let err = client
        .covered_sets_deadline(
            vec![five_cycle()],
            vec![Tuple::from_strs(&["x"])],
            Some(250),
        )
        .unwrap_err();
    let elapsed = started.elapsed();

    assert!(
        matches!(
            &err,
            RpcError::Remote {
                code: ErrorCode::DeadlineExceeded,
                ..
            }
        ),
        "expected DeadlineExceeded over the wire, got {err:?}"
    );
    assert!(err.is_deadline_exceeded());
    // The search space is ~10^10 nodes (hours); finishing in test time at
    // all proves the watchdog aborted it within one candidate tuple of
    // the 250ms mark.
    assert!(
        elapsed < Duration::from_secs(30),
        "abort took {elapsed:?} — the deadline token did not fire"
    );
    let exposition = service.obs().registry().expose();
    assert!(
        exposition.contains("castor_deadline_aborted_total 1"),
        "mid-run abort counter missing:\n{exposition}"
    );

    // The session and queue are healthy afterwards: the same connection
    // keeps serving.
    assert!(client.report().is_ok());
}

#[test]
fn a_learn_with_an_expired_deadline_is_shed_over_the_wire() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service
        .register("bulk", Arc::new(bipartite_db(20, 20)))
        .unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();
    let mut client = RpcClient::connect(rpc.local_addr(), "bulk").unwrap();

    let err = client
        .learn_deadline(
            LearningTask::new("t", 1, vec![Tuple::from_strs(&["l0"])], vec![]),
            LearnAlgorithm::Foil(LearnerParams::default()),
            Some(0),
        )
        .unwrap_err();
    assert!(err.is_deadline_exceeded(), "got {err:?}");
    // Shed before running: the session's engine deltas stay zero.
    assert_eq!(client.report().unwrap(), Default::default());
}

/// The injected plan for the retry tests: the first connection's read
/// side drops dead mid-request — after the handshake, before the first
/// job's request frame is fully read.
fn drop_after_handshake() -> FaultPlan {
    FaultPlan::from_schedule(vec![vec![FaultAction {
        kind: FaultKind::DropRead,
        after_bytes: 40,
        delay_ms: 0,
    }]])
}

#[test]
fn idempotent_coverage_retries_to_the_exact_no_fault_answer() {
    // Reference: the same database served with no faults.
    let reference_service = Arc::new(Server::new(ServerConfig::default()));
    reference_service
        .register("demo", Arc::new(demo_db()))
        .unwrap();
    let reference_rpc = RpcServer::bind(
        Arc::clone(&reference_service),
        "127.0.0.1:0",
        RpcConfig::default(),
    )
    .unwrap();
    let expected = RpcClient::connect(reference_rpc.local_addr(), "demo")
        .unwrap()
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap();

    // Faulted server: connection 0 dies mid-first-request; connection 1
    // (the retry) runs clean.
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    let rpc = RpcServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        RpcConfig::default().with_fault_plan(drop_after_handshake()),
    )
    .unwrap();

    let mut client = RetryClient::with_config(
        rpc.local_addr(),
        "demo",
        ClientConfig::default().with_read_timeout(Duration::from_secs(2)),
        RetryPolicy::default().with_base_backoff(Duration::from_millis(1)),
    )
    .unwrap()
    .with_jitter_seed(11);

    let sets = client
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .expect("the retry must recover transparently");
    assert_eq!(sets, expected, "retried answer differs from no-fault run");

    // The recovery is visible in the client's own accounting: at least
    // one replay, exactly one reconnect, nothing ambiguous.
    assert!(rpc.fault_stats().total() >= 1, "the fault never fired");
    let obs = client.obs().registry().expose();
    assert!(obs.contains("castor_client_reconnects_total 1"), "{obs}");
    assert!(obs.contains("castor_client_ambiguous_total 0"), "{obs}");
}

#[test]
fn a_mutation_over_a_dying_connection_is_ambiguous_and_applied_at_most_once() {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    // The server *answers* through a tearing write: the handshake reply
    // (14 bytes) passes, the mutation's response frame tears — the batch
    // may or may not have been applied from the client's point of view.
    let rpc = RpcServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        RpcConfig::default().with_fault_plan(FaultPlan::from_schedule(vec![vec![FaultAction {
            kind: FaultKind::TearWrite,
            after_bytes: 20,
            delay_ms: 0,
        }]])),
    )
    .unwrap();

    let mut client = RetryClient::with_config(
        rpc.local_addr(),
        "demo",
        ClientConfig::default().with_read_timeout(Duration::from_secs(2)),
        RetryPolicy::default().with_base_backoff(Duration::from_millis(1)),
    )
    .unwrap()
    .with_jitter_seed(13);

    let batch = MutationBatch::new().insert("publication", Tuple::from_strs(&["p9", "zed"]));
    let err = client.apply(batch).unwrap_err();
    assert!(
        matches!(&err, RpcError::Ambiguous { .. }),
        "a post-send transport failure on a mutation must be Ambiguous, got {err:?}"
    );
    let obs = client.obs().registry().expose();
    assert!(obs.contains("castor_client_ambiguous_total 1"), "{obs}");

    // Reconciliation, as the docs prescribe: a fresh connection reads the
    // authoritative state. The batch was applied exactly once server-side
    // (the tear hit the *reply*, not the application) — and `Ambiguous`
    // is precisely the client refusing to guess that.
    let mut verify = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let (engine, _) = verify.server_report().unwrap();
    assert_eq!(
        engine.mutation_batches, 1,
        "the batch must be applied at most once — never replayed"
    );
    let covered = verify
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["zed", "zed"])],
        )
        .unwrap();
    assert_eq!(covered[0].len(), 1, "the single application is visible");
}
