//! Idle-session scaling: the event-loop server must hold thousands of
//! concurrent idle sessions (the whole point of replacing two threads
//! per connection) while one live client's roundtrip latency stays
//! bounded.
//!
//! The idle client sockets are held by a helper *subprocess* (this same
//! test binary re-executed against the `idle_session_holder` entry): the
//! container's hard `RLIMIT_NOFILE` is far too small for one process to
//! hold both ends of 10k connections, and splitting the ends across
//! processes is also the realistic shape — real clients are elsewhere.
//! The holder completes every Hello handshake in bounded batches (so the
//! listener backlog never overflows), prints a ready marker, and parks
//! until the parent closes its stdin.
#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
use castor::rpc::frame::{read_response, request_to_bytes};
use castor::rpc::{Request, Response, RpcClient, RpcConfig, RpcServer, DEFAULT_MAX_FRAME_BYTES};
use castor::service::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Full scale in release; debug builds (tier-1 `cargo test -q`) hold a
/// smaller herd so the suite stays fast unoptimized. CI's release step
/// runs the full 10k.
const SESSIONS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    10_000
};
const BATCH: usize = 128;

const HOLDER_ENV_ADDR: &str = "CASTOR_IDLE_HOLDER_ADDR";
const HOLDER_ENV_COUNT: &str = "CASTOR_IDLE_HOLDER_COUNT";
const READY_MARKER: &str = "HOLDER-READY";

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [("p1", "ann"), ("p1", "bob"), ("p2", "carol")] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

/// The helper entry: a no-op under a normal test run, the socket holder
/// when re-executed by `event_loop_sustains_idle_sessions` with the
/// holder environment set.
#[test]
fn idle_session_holder() {
    let Ok(addr) = std::env::var(HOLDER_ENV_ADDR) else {
        return;
    };
    let count: usize = std::env::var(HOLDER_ENV_COUNT)
        .expect("holder count env")
        .parse()
        .expect("holder count parses");
    castor::rpc::sys::raise_nofile_limit();

    let hello = request_to_bytes(
        1,
        &Request::Hello {
            database: "demo".to_string(),
            eval_budget: None,
            stream_credit: None,
        },
    );
    let mut held: Vec<TcpStream> = Vec::with_capacity(count);
    // Bounded batches: every connection in a batch finishes its Hello
    // before the next batch connects, so the listener backlog (and the
    // server's accept burst) stays small at any instant.
    while held.len() < count {
        let batch = BATCH.min(count - held.len());
        let mut fresh: Vec<TcpStream> = (0..batch)
            .map(|_| {
                let stream = TcpStream::connect(&addr).expect("holder connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
            })
            .collect();
        for stream in &mut fresh {
            stream.write_all(&hello).expect("hello write");
        }
        for stream in &mut fresh {
            let (_, response) =
                read_response(stream, DEFAULT_MAX_FRAME_BYTES).expect("hello response");
            assert!(
                matches!(response, Response::HelloOk),
                "holder handshake rejected: {response:?}"
            );
        }
        held.append(&mut fresh);
    }

    println!("{READY_MARKER} {}", held.len());
    // Park until the parent closes our stdin; the sockets stay open (and
    // idle) the whole time.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    drop(held);
}

#[test]
fn event_loop_sustains_idle_sessions() {
    castor::rpc::sys::raise_nofile_limit();
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    let rpc = RpcServer::bind(Arc::clone(&service), "127.0.0.1:0", RpcConfig::default()).unwrap();
    let addr = rpc.local_addr();

    // Baseline: one live client's roundtrip with an empty server.
    let mut live = RpcClient::connect(addr, "demo").unwrap();
    let examples = vec![Tuple::from_strs(&["ann", "bob"])];
    let roundtrip = |client: &mut RpcClient| {
        let start = Instant::now();
        let sets = client
            .covered_sets(vec![collaborated()], examples.clone())
            .unwrap();
        assert_eq!(sets[0].len(), 1);
        start.elapsed()
    };
    let baseline = median_of(20, || roundtrip(&mut live));

    // Spawn the holder: this test binary re-executed against the
    // `idle_session_holder` entry with the holder environment set.
    let exe = std::env::current_exe().expect("current exe");
    let mut holder = std::process::Command::new(exe)
        .args(["--exact", "idle_session_holder", "--nocapture"])
        .env(HOLDER_ENV_ADDR, addr.to_string())
        .env(HOLDER_ENV_COUNT, SESSIONS.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn holder");
    let mut holder_out = BufReader::new(holder.stdout.take().expect("holder stdout"));

    // Wait for the herd (the marker line carries the held count).
    let mut line = String::new();
    loop {
        line.clear();
        let n = holder_out.read_line(&mut line).expect("holder output");
        assert!(n > 0, "holder exited before reporting ready");
        if line.contains(READY_MARKER) {
            assert!(
                line.contains(&SESSIONS.to_string()),
                "holder held fewer sockets than asked: {line}"
            );
            break;
        }
    }

    // Every idle connection is a live admitted session server-side.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let active = service.server_report().sessions_active;
        if active == SESSIONS + 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sessions_active stuck at {active}, want {}",
            SESSIONS + 1
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The live client's latency must stay bounded with the herd parked:
    // idle connections produce no readiness events, so the loop's work
    // per roundtrip is unchanged. The bound is deliberately loose —
    // shared CI boxes jitter — but catches any O(connections) scan.
    let loaded = median_of(20, || roundtrip(&mut live));
    let ceiling = (baseline * 20).max(Duration::from_millis(250));
    assert!(
        loaded <= ceiling,
        "roundtrip degraded under {SESSIONS} idle sessions: {loaded:?} (baseline {baseline:?})"
    );

    // Closing the holder's stdin releases the herd; every admission slot
    // must come back.
    drop(holder.stdin.take());
    let status = holder.wait().expect("holder exit");
    assert!(status.success(), "holder failed: {status:?}");
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.server_report().sessions_active != 1 {
        assert!(
            Instant::now() < deadline,
            "idle sessions not reclaimed after holder exit: {} active",
            service.server_report().sessions_active
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the live client still works.
    roundtrip(&mut live);
}

fn median_of(n: usize, mut sample: impl FnMut() -> Duration) -> Duration {
    let mut samples: Vec<Duration> = (0..n).map(|_| sample()).collect();
    samples.sort();
    samples[samples.len() / 2]
}
