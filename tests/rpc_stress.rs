//! Multi-client concurrency stress for the RPC front end — the TCP
//! mirror of `tests/service_stress.rs`: N clients on their own OS
//! threads, each over its own connection, interleave mutation batches
//! with coverage jobs against one `RpcServer`. Each client works a
//! disjoint relation group, so its results are deterministic regardless
//! of interleaving; the test asserts per-client determinism against a
//! local mirror, that per-session report deltas (fetched over the wire)
//! sum exactly to the server's engine totals, and that the serving-layer
//! counters add up.
//!
//! CI runs this test in release mode as well (see the workflow), where
//! tighter timings shake out races the dev profile can mask.

use castor::logic::{covers_example, Atom, Clause};
use castor::relational::{DatabaseInstance, MutationBatch, RelationSymbol, Schema, Tuple};
use castor::rpc::{RpcClient, RpcConfig, RpcServer, ServerCore};
use castor::service::{Server, ServerConfig};
use castor_engine::EngineReport;
use std::collections::HashSet;
use std::sync::Arc;

const CLIENTS: usize = 4;
const ROUNDS: usize = 8;

fn pub_name(i: usize) -> String {
    format!("pub{i}")
}

fn stress_schema() -> Schema {
    let mut schema = Schema::new("stress");
    for i in 0..CLIENTS {
        schema.add_relation(RelationSymbol::new(pub_name(i), &["title", "person"]));
    }
    schema
}

/// collaborated_i(x, y) ← pub_i(p, x), pub_i(p, y)
fn collab_clause(i: usize) -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars(pub_name(i), &["p", "x"]),
            Atom::vars(pub_name(i), &["p", "y"]),
        ],
    )
}

#[test]
fn concurrent_tcp_clients_stay_deterministic_and_counters_sum() {
    stress_round(ServerCore::EventLoop);
}

/// The same storm against the threaded core: both transports must keep
/// the determinism and accounting invariants.
#[test]
fn concurrent_tcp_clients_hold_on_the_threaded_core() {
    stress_round(ServerCore::Threaded);
}

fn stress_round(core: ServerCore) {
    let service = Arc::new(Server::new(ServerConfig::default().with_threads(4)));
    service
        .register(
            "stress",
            Arc::new(DatabaseInstance::empty(&stress_schema())),
        )
        .unwrap();
    let rpc = RpcServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        RpcConfig::default().with_core(core),
    )
    .unwrap();
    let addr = rpc.local_addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || -> EngineReport {
                let mut client = RpcClient::connect(addr, "stress").unwrap();
                let relation = pub_name(i);
                // A private mirror of this client's relation group computes
                // the expected answers independently.
                let mut mirror = DatabaseInstance::empty(&stress_schema());
                for round in 0..ROUNDS {
                    let title = Tuple::from_strs(&[
                        &format!("s{i}p{round}"),
                        &format!("s{i}author{round}"),
                    ]);
                    let partner = Tuple::from_strs(&[
                        &format!("s{i}p{round}"),
                        &format!("s{i}partner{round}"),
                    ]);
                    let batch = MutationBatch::new()
                        .insert(&relation, title.clone())
                        .insert(&relation, partner.clone());
                    // Exercise both maintenance directions.
                    let batch = if round % 3 == 2 {
                        batch.remove(
                            &relation,
                            Tuple::from_strs(&[
                                &format!("s{i}p{}", round - 1),
                                &format!("s{i}partner{}", round - 1),
                            ]),
                        )
                    } else {
                        batch
                    };
                    mirror.apply_batch(&batch).unwrap();
                    client.apply(batch).unwrap();

                    // The live server must agree with reference semantics
                    // over the mirror, whatever the other clients do.
                    let clause = collab_clause(i);
                    let examples: Vec<Tuple> = (0..=round)
                        .flat_map(|r| {
                            [
                                Tuple::from_strs(&[
                                    &format!("s{i}author{r}"),
                                    &format!("s{i}partner{r}"),
                                ]),
                                Tuple::from_strs(&[
                                    &format!("s{i}author{r}"),
                                    &format!("s{i}author{}", (r + 1) % ROUNDS),
                                ]),
                            ]
                        })
                        .collect();
                    let got = client
                        .covered_sets(vec![clause.clone()], examples.clone())
                        .unwrap();
                    let expected: HashSet<Tuple> = examples
                        .iter()
                        .filter(|e| covers_example(&clause, &mirror, e))
                        .cloned()
                        .collect();
                    assert_eq!(
                        got[0], expected,
                        "client {i} diverged from its mirror in round {round}"
                    );
                }
                // The per-session delta, fetched over the wire.
                client.report().unwrap()
            })
        })
        .collect();

    let session_reports: Vec<EngineReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread must not panic"))
        .collect();

    // Per-session deltas sum exactly to the server's engine totals: every
    // counter bump happened inside some session's job window, and jobs of
    // one database never overlap — true over TCP exactly as in-process.
    let summed = session_reports
        .iter()
        .fold(EngineReport::default(), |acc, r| acc.combined(r));
    let mut inspector = RpcClient::connect(addr, "stress").unwrap();
    let (total, server_report) = inspector.server_report().unwrap();
    assert_eq!(
        summed, total,
        "session deltas over TCP do not sum to the server total"
    );
    assert_eq!(total.mutation_batches, CLIENTS * ROUNDS);
    assert!(total.coverage_tests > 0);

    // Serving-layer counters add up: every worker connection (the
    // inspector included) was admitted, every job drained.
    assert_eq!(server_report.sessions_accepted, CLIENTS + 1);
    assert_eq!(server_report.sessions_rejected, 0);
    assert_eq!(server_report.jobs_submitted, CLIENTS * ROUNDS * 2);
    assert_eq!(
        service.queue_report("stress").unwrap().drains,
        CLIENTS * ROUNDS * 2
    );

    // No wedged locks or leaked sessions: a fresh client still gets
    // served after the storm.
    let sets = inspector
        .covered_sets(
            vec![collab_clause(0)],
            vec![Tuple::from_strs(&["s0author0", "s0partner0"])],
        )
        .unwrap();
    assert_eq!(sets[0].len(), 1);
}
