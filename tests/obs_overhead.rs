//! Acceptance guard for the observability overhead budget: the batched
//! coverage path with the default (enabled) `Obs` handle must stay
//! within 5% of the same path under `ObsConfig::disabled()`. The
//! Criterion bench `obs_overhead` in `castor-bench/benches/` measures
//! the same workload with warm-up and sized iteration counts; this test
//! pins the bound in CI with interleaved best-of-N timing (alternating
//! sides each round, keeping the minimum, so drift in shared CI hits
//! both sides equally) plus a result-equivalence check.

use castor_bench::obs_overhead_workload;
use castor_engine::{Engine, EngineConfig, WorkerPool};
use castor_obs::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn default_instrumentation_stays_within_five_percent() {
    let workload = obs_overhead_workload();
    // Caches off so every pass re-runs the joins — the comparison is
    // instrumented evaluation against bare evaluation, not cache probes.
    // Inline execution (one thread) keeps the loop deterministic: worker
    // scheduling jitter on shared CI machines swings multi-threaded
    // passes by ±8%, far above the bound under test.
    let config = EngineConfig::default().without_cache().with_threads(1);

    let build = |obs: Arc<Obs>| {
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine::with_observability(Arc::clone(&workload.db), config.clone(), pool, obs)
    };
    let enabled = build(Obs::enabled_default());
    let disabled = build(Obs::disabled());
    assert!(enabled.obs().enabled(), "default handle must instrument");
    assert!(!disabled.obs().enabled());

    let run = |engine: &Engine| {
        let start = Instant::now();
        let sets = engine.covered_sets_batch(&workload.beam, &workload.examples);
        (start.elapsed(), sets)
    };

    // Warm-up pass on each side (first-touch page faults, lazily built
    // relation indexes), with the results pinned equal.
    let (_, warm_enabled) = run(&enabled);
    let (_, warm_disabled) = run(&disabled);
    assert_eq!(
        warm_enabled, warm_disabled,
        "instrumentation must not change results"
    );

    // Interleaved best-of-7: alternate sides within each round and keep
    // the per-side minimum, the standard de-noised estimate for a
    // deterministic loop.
    const ROUNDS: usize = 7;
    let mut best_enabled = Duration::MAX;
    let mut best_disabled = Duration::MAX;
    for _ in 0..ROUNDS {
        best_enabled = best_enabled.min(run(&enabled).0);
        best_disabled = best_disabled.min(run(&disabled).0);
    }

    // The workload must be big enough that per-batch instrumentation
    // (nanoseconds) could only show up through a real regression.
    assert!(
        best_disabled >= Duration::from_millis(5),
        "workload too small to bound overhead meaningfully: {best_disabled:?}"
    );

    let ratio = best_enabled.as_secs_f64() / best_disabled.as_secs_f64().max(1e-9);
    assert!(
        ratio <= 1.05,
        "enabled-by-default instrumentation must cost ≤5% on the coverage path, got \
         {:.1}% (enabled {best_enabled:?}, disabled {best_disabled:?})",
        (ratio - 1.0) * 100.0
    );

    // The instrumented side actually recorded what it claims to: batch
    // evaluation latencies and spans exist on the enabled handle only.
    let exposition = enabled.obs().expose();
    let evals = exposition
        .lines()
        .find(|l| l.starts_with("castor_engine_batch_eval_ns_count"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("enabled handle exposes the batch-eval histogram");
    assert!(
        evals >= (ROUNDS + 1) as u64,
        "batch evals recorded: {evals}"
    );
    assert!(!enabled.obs().spans().snapshot().is_empty());
    assert!(disabled.obs().spans().snapshot().is_empty());
}
