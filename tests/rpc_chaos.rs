//! Seeded chaos suite for the serving stack: deterministic transport
//! faults (torn writes, dropped/delayed reads, byte-exact socket closes,
//! stalled writers) injected into `RpcServer` via [`FaultPlan`], with the
//! same invariants asserted for every schedule:
//!
//! * the faulted client sees typed errors or clean closes — never a hang
//!   and never a wrong answer;
//! * other sessions keep being served bit-exact results;
//! * every admission slot is reclaimed (`sessions_active` returns to 0);
//! * the fault counters in the metric exposition match the injected
//!   plan's trigger-time ground truth exactly.
//!
//! Every schedule is derived from a printed seed: a failure report names
//! the seed, and re-running with that seed replays the identical byte
//! schedule.

use castor::logic::{Atom, Clause};
use castor::relational::{DatabaseInstance, RelationSymbol, Schema, Tuple};
use castor::rpc::{ClientConfig, FaultPlan, RpcClient, RpcConfig, RpcServer, ServerCore};
use castor::service::{Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_db() -> DatabaseInstance {
    let mut schema = Schema::new("demo");
    schema.add_relation(RelationSymbol::new("publication", &["title", "person"]));
    let mut db = DatabaseInstance::empty(&schema);
    for (t, p) in [
        ("p1", "ann"),
        ("p1", "bob"),
        ("p2", "carol"),
        ("p2", "dan"),
        ("p3", "eve"),
    ] {
        db.insert("publication", Tuple::from_strs(&[t, p])).unwrap();
    }
    db
}

fn collaborated() -> Clause {
    Clause::new(
        Atom::vars("collaborated", &["x", "y"]),
        vec![
            Atom::vars("publication", &["p", "x"]),
            Atom::vars("publication", &["p", "y"]),
        ],
    )
}

/// Polls `condition` until it holds or `what` is reported as stuck.
fn wait_until(condition: impl Fn() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One seeded chaos round against the given connection core. Returns
/// how many faults actually fired.
fn chaos_round(seed: u64, core: ServerCore) -> u64 {
    let service = Arc::new(Server::new(ServerConfig::default()));
    service.register("demo", Arc::new(demo_db())).unwrap();
    let rpc = RpcServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        RpcConfig::default()
            .with_fault_plan(FaultPlan::seeded(seed))
            .with_core(core),
    )
    .unwrap();

    // The victim is the first accepted connection — the one the plan
    // targets. Socket timeouts turn any stall the injector could cause
    // into a typed error instead of a wedged test.
    let victim_config = ClientConfig::default()
        .with_connect_timeout(Duration::from_secs(5))
        .with_read_timeout(Duration::from_secs(1))
        .with_write_timeout(Duration::from_secs(1));
    // A connect error means the fault hit the handshake — a typed error
    // is a valid outcome there too.
    if let Ok(mut victim) = RpcClient::connect_config(rpc.local_addr(), "demo", &victim_config) {
        // Push enough bytes through the connection to cross the plan's
        // thresholds; any call may die with a typed error, and the first
        // error poisons the byte-positional framing, so the script stops
        // there.
        for round in 0..4u32 {
            let examples = vec![Tuple::from_strs(&["ann", "bob"])];
            match victim.covered_sets(vec![collaborated()], examples) {
                // A result that does arrive must be the right one, faults
                // or not.
                Ok(sets) => assert_eq!(sets[0].len(), 1, "wrong result on faulted conn"),
                Err(_) => break,
            }
            if round == 1 && victim.report().is_err() {
                break;
            }
        }
    }

    // Dropping the victim (or its earlier death) must wind down its
    // server-side threads and release the admission slot.
    wait_until(
        || service.server_report().sessions_active == 0,
        "victim session reclaimed",
    );

    // A later connection runs clean by construction (the plan only arms
    // the first), and must be served exact results.
    let mut observer = RpcClient::connect(rpc.local_addr(), "demo").unwrap();
    let sets = observer
        .covered_sets(
            vec![collaborated()],
            vec![Tuple::from_strs(&["ann", "bob"])],
        )
        .unwrap();
    assert_eq!(sets[0].len(), 1, "observer served a wrong result");

    // Exact fault accounting: the wire-scraped exposition and the
    // trigger-time stats are two views of the same events. The victim's
    // threads are gone (sessions_active hit 0 above), so the counts are
    // final by now.
    let metrics = observer.metrics().unwrap();
    for (kind, count) in rpc.fault_stats().snapshot() {
        let needle = format!("castor_fault_injected_total{{kind=\"{kind}\"}} {count}");
        assert!(
            metrics.contains(&needle),
            "exposition disagrees with injected plan: missing `{needle}`\n{metrics}"
        );
    }

    drop(observer);
    wait_until(
        || service.server_report().sessions_active == 0,
        "observer session reclaimed",
    );
    rpc.fault_stats().total()
}

/// Runs the full seeded sweep against one core; the failing seed (and
/// core) is printed so the exact schedule replays locally.
fn seeded_sweep(core: ServerCore) {
    const SEEDS: u64 = 200;
    let mut injected = 0u64;
    for seed in 0..SEEDS {
        match std::panic::catch_unwind(|| chaos_round(seed, core)) {
            Ok(fired) => injected += fired,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                panic!("chaos round failed under seed {seed} ({core:?} core): {msg}");
            }
        }
    }
    // The harness must actually be injecting: across 200 schedules a
    // substantial number of faults fire (each victim moves a few hundred
    // transport bytes past thresholds drawn from 0..192).
    assert!(
        injected >= SEEDS / 2,
        "only {injected} faults fired across {SEEDS} seeds — the injector is not engaging"
    );
}

/// 200+ seeded fault schedules across every fault kind, on the
/// event-loop core (the default).
#[test]
fn seeded_fault_schedules_never_hang_leak_or_corrupt() {
    seeded_sweep(ServerCore::EventLoop);
}

/// The same sweep against the threaded core: both transports must absorb
/// the identical byte-exact schedules.
#[test]
fn seeded_fault_schedules_hold_on_the_threaded_core() {
    seeded_sweep(ServerCore::Threaded);
}

/// Satellite: admission accounting under reconnect churn. Clients
/// connect, submit work, and vanish mid-job over and over; afterwards
/// `sessions_active` is exactly zero and a full complement of new
/// sessions is admitted — no slot leaked, no wrongful `SessionLimit`.
#[test]
fn reconnect_churn_reclaims_every_admission_slot() {
    churn_round(ServerCore::EventLoop);
}

/// The same churn against the threaded core.
#[test]
fn reconnect_churn_reclaims_every_admission_slot_threaded() {
    churn_round(ServerCore::Threaded);
}

fn churn_round(core: ServerCore) {
    let service = Arc::new(Server::new(ServerConfig::default().with_max_sessions(4)));
    service.register("demo", Arc::new(demo_db())).unwrap();
    let rpc = RpcServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        RpcConfig::default().with_core(core),
    )
    .unwrap();
    let addr = rpc.local_addr();

    let churners: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..6u32 {
                    // Session-capped connects can race each other to a
                    // SessionLimit rejection — that is the admission
                    // control working, not a failure.
                    let Ok(mut client) = RpcClient::connect(addr, "demo") else {
                        continue;
                    };
                    let examples = vec![Tuple::from_strs(&[&format!("churn-{t}-{i}"), "bob"])];
                    // Submit without joining, then vanish mid-job.
                    let _ = client.submit(castor::rpc::Request::Coverage {
                        clauses: vec![collaborated()],
                        examples,
                        deadline_ms: None,
                    });
                    drop(client);
                }
            })
        })
        .collect();
    for churner in churners {
        churner.join().unwrap();
    }

    wait_until(
        || {
            let report = service.server_report();
            report.sessions_active == 0 && service.queue_report("demo").unwrap().inflight == 0
        },
        "churned sessions reclaimed",
    );

    // Every one of the 4 admission slots is usable again, concurrently.
    let mut fresh: Vec<RpcClient> = (0..4)
        .map(|_| RpcClient::connect(addr, "demo").expect("reclaimed slot refused a session"))
        .collect();
    for client in &mut fresh {
        assert!(client.report().is_ok());
    }
}
